//! Offline shim for the [`serde`](https://docs.rs/serde) crate.
//!
//! The build environment has no crates.io access, and the workspace only uses
//! serde in derive position. This facade mirrors serde's public layout —
//! `Serialize`/`Deserialize` exist both as traits and as derive macros under
//! the same names — but the derives expand to nothing, so no type actually
//! implements the traits. Point `[workspace.dependencies] serde` back at
//! crates.io (with the `derive` feature) to restore real serialization; no
//! source changes are required anywhere else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The no-op derive never implements it; it exists so `use serde::Serialize`
/// resolves in both the type and macro namespaces, as with real serde.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Mirror of serde's `de` module, for `serde::de::DeserializeOwned` paths.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of serde's `ser` module.
pub mod ser {
    pub use crate::Serialize;
}
