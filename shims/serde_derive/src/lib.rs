//! Offline shim for the [`serde_derive`](https://docs.rs/serde_derive) crate.
//!
//! The workspace only uses `serde` in derive position (`#[derive(Serialize,
//! Deserialize)]`) — no code actually serializes anything yet — so these
//! derives expand to nothing. That keeps every `#[derive(...)]` attribute in
//! the source compiling verbatim, ready for the real `serde` when the build
//! environment gains registry access.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
