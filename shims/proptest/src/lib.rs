//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of proptest's API that the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` and `boxed`, range/tuple/[`any`] and
//! [`collection::vec`] strategies, [`prop_oneof!`], the [`proptest!`] test
//! macro, `prop_assert!`/`prop_assert_eq!`, and [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim.
//! * **Deterministic generation.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce exactly across runs and machines.
//!
//! The test sources themselves are written against the real proptest API, so
//! restoring the crates.io dependency requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// The RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a deterministic RNG from an arbitrary byte string (the runner
    /// passes the test's name, so every test gets its own stream).
    #[must_use]
    pub fn deterministic(context: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in context.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw from `[0, n)`.
    #[must_use]
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`, mirroring `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type, mirroring `boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always produces a clone of one value, mirroring `Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies, used by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Creates a union over `options`, each chosen with equal probability.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical whole-domain strategy, mirroring `Arbitrary`.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_ints {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Configuration for a [`proptest!`] block, mirroring `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion, carried out of the test body by
/// `prop_assert!`-family macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a property test usually imports, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the generated
/// inputs on failure instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left
            )));
        }
    }};
}

/// Uniform choice between strategies with a common value type, mirroring
/// `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests, mirroring proptest's `proptest!` macro.
///
/// Supports the `#![proptest_config(...)]` header and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    &$config,
                    ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                    |__rng| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                        let __inputs = || {
                            let mut s = ::std::string::String::new();
                            $(
                                s.push_str(::core::stringify!($arg));
                                s.push_str(" = ");
                                s.push_str(&::std::format!("{:?}", &$arg));
                                s.push('\n');
                            )+
                            s
                        };
                        let __rendered = __inputs();
                        let __result: ::core::result::Result<(), $crate::TestCaseError> =
                            (move || {
                                $body
                                ::core::result::Result::Ok(())
                            })();
                        __result.map_err(|e| (e, __rendered))
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Drives one property test: runs `case` for each configured case and panics
/// with the offending inputs on the first failure.
///
/// This is an implementation detail of the [`proptest!`] macro.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    let mut rng = TestRng::deterministic(name);
    for index in 0..config.cases {
        if let Err((error, inputs)) = case(&mut rng) {
            panic!(
                "proptest case {index} of {} failed for {name}: {error}\ninputs:\n{inputs}",
                config.cases
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[derive(Debug, Clone, PartialEq)]
    enum Coin {
        Heads,
        Tails(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(v in 3u64..10, w in 0u32..4) {
            prop_assert!((3..10).contains(&v));
            prop_assert!(w < 4);
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a, b))) {
            prop_assert!(pair.0 < 4, "bad pair {:?}", pair);
        }

        #[test]
        fn oneof_and_vec(coins in crate::collection::vec(prop_oneof![
            (0u8..3).prop_map(Coin::Tails),
            (0u8..1).prop_map(|_| Coin::Heads),
        ], 0..8)) {
            prop_assert!(coins.len() < 8);
            for c in coins {
                match c {
                    Coin::Heads => {}
                    Coin::Tails(n) => prop_assert!(n < 3),
                }
            }
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(&ProptestConfig::with_cases(10), "failing", |rng| {
                let v = Strategy::generate(&(0u64..4), rng);
                let rendered = format!("v = {v:?}\n");
                if v >= 2 {
                    return Err((TestCaseError::fail("too big".to_string()), rendered));
                }
                Ok(())
            });
        });
        let payload = result.expect_err("must fail");
        let message = payload.downcast_ref::<String>().expect("string panic");
        assert!(message.contains("too big"), "unexpected message: {message}");
        assert!(message.contains("v = "), "inputs missing: {message}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = (0u64..1000, 0u64..1000);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
