//! Collection strategies, mirroring `proptest::collection`.

use std::fmt;
use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + if span == 0 { 0 } else { rng.below(span) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `Vec`s of values from `element`, with a length drawn
/// uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "collection::vec size range must be non-empty"
    );
    VecStrategy { element, size }
}
