//! Offline shim for the [`serde_json`](https://docs.rs/serde_json) crate.
//!
//! The build environment has no crates.io access. Unlike the sibling `serde`
//! shim (whose derives expand to nothing), this shim is **functional**: it
//! implements the [`Value`] tree, [`to_string`] / [`to_string_pretty`]
//! writers and a [`from_str`] parser, which is everything the workspace's
//! machine-readable reports (`BENCH_*.json`) need. Numbers round-trip
//! exactly: like real serde_json, [`Number`] stores integers as `u64`/`i64`
//! (the full 64-bit range, not just the 2^53 floats can hold) and floats
//! with Rust's shortest-representation formatting, whose parse is its exact
//! inverse.
//!
//! Differences from real serde_json, by design:
//!
//! * No generic `Serialize`/`Deserialize` driving — only the explicit
//!   `Value` tree API (real serde_json's `Value` also offers it; code written
//!   against the tree API needs no changes when the crates.io dependency is
//!   restored).
//! * Objects preserve insertion order (like serde_json with its
//!   `preserve_order` feature) and are backed by a plain pair vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON number, mirroring `serde_json::Number`: integers are kept exact in
/// the full `u64`/`i64` range, everything else is an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(Repr);

#[derive(Debug, Clone, Copy, PartialEq)]
enum Repr {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy above 2^53, as in real serde_json).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            Repr::PosInt(n) => n as f64,
            Repr::NegInt(n) => n as f64,
            Repr::Float(n) => n,
        })
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::PosInt(n) => Some(n),
            Repr::NegInt(_) => None,
            // Integral floats in the exactly-representable range qualify,
            // matching the accessor's behaviour on real serde_json documents
            // that carried a trailing `.0`.
            Repr::Float(n) if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 => {
                Some(n as u64)
            }
            Repr::Float(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::PosInt(n) => i64::try_from(n).ok(),
            Repr::NegInt(n) => Some(n),
            Repr::Float(_) => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self.0 {
            Repr::PosInt(n) => out.push_str(&n.to_string()),
            Repr::NegInt(n) => out.push_str(&n.to_string()),
            Repr::Float(n) if n.is_finite() => {
                // Rust's Display for f64 prints the shortest string that
                // parses back to the same value, so floats round-trip
                // exactly. Keep a float marker so the parser re-reads an
                // integral float as a float.
                let text = n.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            // JSON has no NaN/inf; real serde_json writes null here too.
            Repr::Float(_) => out.push_str("null"),
        }
    }
}

impl From<u64> for Number {
    fn from(n: u64) -> Number {
        Number(Repr::PosInt(n))
    }
}

impl From<i64> for Number {
    fn from(n: i64) -> Number {
        if n >= 0 {
            Number(Repr::PosInt(n as u64))
        } else {
            Number(Repr::NegInt(n))
        }
    }
}

impl From<f64> for Number {
    fn from(n: f64) -> Number {
        Number(Repr::Float(n))
    }
}

/// A JSON value, mirroring `serde_json::Value` for the tree API.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member access: `value.get("field")` on objects, `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a `Number`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integral
    /// `Number`. Exact over the whole `u64` range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an integral `Number` in
    /// range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector, if this is an `Array`.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The pair vector, if this is an `Object`.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => n.write(out),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Value::Object(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                write_string(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, ind);
            }),
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|level| level + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        item(out, i, inner);
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::from(n))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(Number::from(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(Number::from(n))
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(Number::from(u64::from(n)))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(Number::from(n as u64))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

/// A JSON syntax error: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
#[must_use]
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, None);
    out
}

/// Serializes `value` as two-space-indented JSON.
#[must_use]
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, Some(0));
    out
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] with the byte offset of the first syntax problem,
/// including trailing non-whitespace after the document.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates are not paired (the writer never
                            // emits them); map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        // Integer literals parse exactly into the integer representations
        // (falling back to f64 only when they overflow 64 bits).
        if integral {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Number(Number(Repr::NegInt(n))));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number(Repr::PosInt(n))));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number(Repr::Float(n))))
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn compact_and_pretty_round_trip() {
        let value = obj(vec![
            ("version", Value::from(1u32)),
            ("name", Value::from("smoke")),
            ("ok", Value::from(true)),
            ("nothing", Value::Null),
            (
                "rows",
                Value::from(vec![
                    obj(vec![
                        ("tps", Value::from(12345.678)),
                        ("spec", Value::from("sharded?shards=8&inner=mvtil-early")),
                    ]),
                    Value::from(Vec::new()),
                ]),
            ),
        ]);
        for rendered in [to_string(&value), to_string_pretty(&value)] {
            assert_eq!(from_str(&rendered).unwrap(), value, "{rendered}");
        }
    }

    #[test]
    fn integers_round_trip_exactly_across_the_u64_range() {
        for n in [0u64, 1, 2_u64.pow(53) + 1, u64::MAX] {
            let rendered = to_string(&Value::from(n));
            assert_eq!(rendered, n.to_string());
            assert_eq!(from_str(&rendered).unwrap().as_u64(), Some(n), "{rendered}");
        }
        for n in [-1i64, i64::MIN] {
            let rendered = to_string(&Value::from(n));
            assert_eq!(from_str(&rendered).unwrap().as_i64(), Some(n), "{rendered}");
            assert_eq!(from_str(&rendered).unwrap().as_u64(), None);
        }
        // Integral floats keep their float-ness through a round trip.
        let rendered = to_string(&Value::from(3.0f64));
        assert_eq!(rendered, "3.0");
        assert_eq!(from_str(&rendered).unwrap(), Value::from(3.0f64));
        assert_eq!(from_str("3.0").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for n in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            123_456.789_012_345,
        ] {
            let rendered = to_string(&Value::from(n));
            let parsed = from_str(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), n.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "a\"b\\c\nd\te\u{0001}f — ünïcode";
        let rendered = to_string(&Value::from(tricky));
        assert_eq!(from_str(&rendered).unwrap().as_str().unwrap(), tricky);
        assert_eq!(from_str(r#""A\/""#).unwrap().as_str().unwrap(), "A/");
    }

    #[test]
    fn accessors_work() {
        let value = obj(vec![
            ("n", Value::from(7u64)),
            ("s", Value::from("x")),
            ("a", Value::from(vec![Value::from(false)])),
        ]);
        assert_eq!(value.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(value.get("n").and_then(Value::as_i64), Some(7));
        assert_eq!(value.get("n").and_then(Value::as_f64), Some(7.0));
        assert_eq!(value.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(
            value.get("a").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[0].as_bool(),
            Some(false)
        );
        assert_eq!(value.get("missing"), None);
        assert_eq!(Value::Null.get("n"), None);
        assert_eq!(Value::from(1.5).as_u64(), None);
        assert_eq!(Value::from(-1.0).as_u64(), None);
        assert!(value.as_object().is_some());
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for bad in ["", "{", "[1,]", "\"unterminated", "nul", "{\"a\" 1}", "1 2"] {
            let err = from_str(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?}");
        }
        // Numbers: bare minus sign fails.
        assert!(from_str("-").is_err());
        assert!(from_str("1e309").is_ok(), "overflow parses to infinity");
        // Integers beyond u64 fall back to floats rather than failing.
        assert!(from_str("18446744073709551616").unwrap().as_u64().is_none());
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let parsed = from_str(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(
            parsed,
            obj(vec![(
                "a",
                Value::from(vec![Value::from(1u64), obj(vec![("b", Value::Null)])])
            )])
        );
    }
}
