//! Offline shim for the [`rand`](https://docs.rs/rand) crate (0.8 API).
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of the rand 0.8 surface the workspace uses: the [`Rng`] extension
//! trait (`gen`, `gen_range` over integer and float ranges, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — deterministic, fast,
//! and statistically far better than the simulation and workload generators
//! need. It does **not** match the stream of the real `StdRng` (ChaCha12), so
//! seeds produce different (but still deterministic) workloads than they would
//! with real rand. Nothing in the workspace depends on the exact stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator seedable from a `u64`, mirroring
/// `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a uniformly distributed value in `range`.
    ///
    /// Supports `a..b` and `a..=b` over the primitive integers and floats,
    /// like rand 0.8's `SampleRange`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (which must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniformly distributed sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from their whole domain (the
/// `Standard` distribution of rand 0.8, recast as a trait).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform draw from `[0, span)` without modulo bias worth caring about for
/// simulation purposes (single rejection step).
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply trick (Lemire); one draw, negligible bias for the
    // span sizes used in this workspace.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty => $unsigned:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                self.start.wrapping_add(below(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $unsigned).wrapping_sub(start as $unsigned) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )+};
}

impl_int_ranges!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

// Only `f64` float ranges: adding `f32` impls would make the common
// `x_f64 * rng.gen_range(0.7..1.5)` pattern ambiguous for inference, and the
// workspace never samples `f32`.
impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Distribution primitives, mirroring the slice of
/// [`rand_distr`](https://docs.rs/rand_distr) (0.4 API) the workspace uses,
/// folded into the `rand` shim since `rand_distr` only builds on top of
/// `rand`.
pub mod distributions {
    use super::{RngCore, Standard};

    /// Types that produce samples of `T`, mirroring
    /// `rand::distributions::Distribution`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`Zipf`] distribution.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ZipfError {
        /// `n` was zero.
        NumberOfElementsIsZero,
        /// The exponent was negative or not finite.
        ExponentInvalid,
    }

    impl core::fmt::Display for ZipfError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                ZipfError::NumberOfElementsIsZero => write!(f, "n must be at least 1"),
                ZipfError::ExponentInvalid => write!(f, "exponent must be finite and >= 0"),
            }
        }
    }

    impl std::error::Error for ZipfError {}

    /// The bounded Zipf distribution `P(k) ∝ k^{-s}` over `{1, ..., n}`,
    /// mirroring `rand_distr::Zipf`.
    ///
    /// Sampling uses Hörmann & Derflinger's **rejection-inversion** (the
    /// algorithm behind `rand_distr` and Apache Commons'
    /// `RejectionInversionZipfSampler`): O(1) per sample with no O(n) zeta
    /// precomputation, valid for any exponent `s ≥ 0` including `s = 1`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Zipf {
        n: f64,
        s: f64,
        /// `H(1.5) - 1`: lower end of the inversion domain (`h(1) = 1`).
        h_x1: f64,
        /// `H(n + 0.5)`: upper end of the inversion domain.
        h_n: f64,
        /// Acceptance cutoff `2 - H⁻¹(H(2.5) - h(2))`.
        cutoff: f64,
    }

    /// `H(x) = (x^(1-s) - 1) / (1-s)`, continuous at `s = 1` (where it is
    /// `ln x`), computed stably via `expm1`.
    fn h_integral(x: f64, s: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - s) * log_x) * log_x
    }

    /// `h(x) = x^{-s}`.
    fn h(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    /// Inverse of [`h_integral`].
    fn h_integral_inverse(y: f64, s: f64) -> f64 {
        let mut t = y * (1.0 - s);
        if t < -1.0 {
            // Numerical guard near the lower boundary.
            t = -1.0;
        }
        (helper1(t) * y).exp()
    }

    /// `ln(1 + x) / x`, continuous at 0.
    fn helper1(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.ln_1p() / x
        } else {
            1.0 - x / 2.0 + x * x / 3.0
        }
    }

    /// `(e^x - 1) / x`, continuous at 0.
    fn helper2(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.exp_m1() / x
        } else {
            1.0 + x / 2.0 + x * x / 6.0
        }
    }

    impl Zipf {
        /// Creates a Zipf distribution over `{1, ..., n}` with exponent `s`.
        ///
        /// # Errors
        ///
        /// Returns a [`ZipfError`] when `n` is zero or `s` is negative or not
        /// finite.
        pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
            if n == 0 {
                return Err(ZipfError::NumberOfElementsIsZero);
            }
            if !s.is_finite() || s < 0.0 {
                return Err(ZipfError::ExponentInvalid);
            }
            let n_f = n as f64;
            Ok(Zipf {
                n: n_f,
                s,
                h_x1: h_integral(1.5, s) - 1.0,
                h_n: h_integral(n_f + 0.5, s),
                cutoff: 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s),
            })
        }

        /// Draws one rank in `{1, ..., n}`.
        pub fn sample_index<R: RngCore>(&self, rng: &mut R) -> u64 {
            loop {
                let u = self.h_n + f64::sample(rng) * (self.h_x1 - self.h_n);
                let x = h_integral_inverse(u, self.s);
                let k = x.round().clamp(1.0, self.n);
                // Accept k either inside the unconditional-acceptance band
                // around the inversion point, or by the exact rejection test.
                if k - x <= self.cutoff || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                    return k as u64;
                }
            }
        }
    }

    impl Distribution<u64> for Zipf {
        fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
            self.sample_index(rng)
        }
    }

    impl Distribution<f64> for Zipf {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            self.sample_index(rng) as f64
        }
    }
}

/// The concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.7..1.5);
            assert!((0.7..1.5).contains(&f));
            let u = rng.gen_range(2..8usize);
            assert!((2..8).contains(&u));
        }
    }

    #[test]
    fn zipf_ranks_stay_in_range_and_skew_toward_small_ranks() {
        use super::distributions::{Distribution, Zipf};
        let mut rng = StdRng::seed_from_u64(11);
        for s in [0.5, 0.99, 1.0, 1.2] {
            let zipf = Zipf::new(100, s).unwrap();
            let mut counts = [0u32; 100];
            for _ in 0..20_000 {
                let k: u64 = zipf.sample(&mut rng);
                assert!((1..=100).contains(&k), "rank {k} out of range (s={s})");
                counts[(k - 1) as usize] += 1;
            }
            // Heavily skewed: rank 1 dominates rank 10, which dominates the
            // tail average — the qualitative Zipf shape.
            assert!(counts[0] > counts[9], "s={s}: {:?}", &counts[..12]);
            let tail_avg = counts[50..].iter().sum::<u32>() / 50;
            assert!(counts[0] > 4 * tail_avg.max(1), "s={s}");
        }
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        use super::distributions::{Distribution, Zipf};
        let mut rng = StdRng::seed_from_u64(5);
        let zipf = Zipf::new(10, 0.0).unwrap();
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            let k: u64 = zipf.sample(&mut rng);
            counts[(k - 1) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (4_000..6_000).contains(&c),
                "rank {} count {c} not uniform: {counts:?}",
                i + 1
            );
        }
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        use super::distributions::Zipf;
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(1, 1.0).is_ok());
    }

    #[test]
    fn zipf_is_deterministic_for_a_fixed_seed() {
        use super::distributions::{Distribution, Zipf};
        let zipf = Zipf::new(1_000, 0.9).unwrap();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let ka: u64 = zipf.sample(&mut a);
            let kb: u64 = zipf.sample(&mut b);
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }
}
