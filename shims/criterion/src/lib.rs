//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no crates.io access, so this crate implements the
//! slice of criterion's API used by the workspace's benches: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! `sample_size`/`warm_up_time`/`measurement_time`, and [`Bencher::iter`].
//!
//! Measurement is intentionally simple — per sample, the shim times a batch of
//! iterations sized so a sample takes roughly a millisecond, then reports the
//! median and min/max per-iteration time. There are no plots, no statistical
//! regression, and no saved baselines, but relative numbers between engines
//! are meaningful and `cargo bench` completes quickly. Benches are written
//! against the real criterion API, so restoring the crates.io dependency
//! requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 30;

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // `--bench`/`--exact` style flags are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: DEFAULT_SAMPLES,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
        }
    }

    fn run<F>(&self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// A group of related benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Sets the warm-up duration for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Sets the target measurement duration for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs one benchmark in this group as `group_name/bench_name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up_time: self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Consumes the group, mirroring criterion's summary hook (a no-op here).
    pub fn finish(self) {}
}

/// Times closures for one benchmark, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, running it in batches until the measurement budget is
    /// spent.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run for the configured duration and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample's batch so all samples fit in the measurement time.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples: bencher.iter was never called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<50} time: [{} {} {}]",
            format_time(min),
            format_time(median),
            format_time(max)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_apply_overrides() {
        let mut c = Criterion::default();
        c.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        group.bench_function("inner", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.0000 s");
        assert_eq!(format_time(2e-3), "2.0000 ms");
        assert_eq!(format_time(2e-6), "2.0000 µs");
        assert_eq!(format_time(2e-9), "2.0000 ns");
    }
}
