//! Offline shim for the [`parking_lot`](https://docs.rs/parking_lot) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate re-implements the small slice of the `parking_lot` API that the
//! workspace uses — `Mutex`, `RwLock` and `Condvar` with non-poisoning guards —
//! on top of `std::sync`. The semantics match `parking_lot` where the
//! workspace relies on them:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no `Result`);
//!   poisoning is swallowed, as `parking_lot` has no poisoning.
//! * `try_lock()` / `try_read()` / `try_write()` return `Option` guards and
//!   never block.
//! * `Condvar::wait_until` takes a `&mut MutexGuard` and an [`Instant`]
//!   deadline and reports timeouts through [`WaitTimeoutResult`].
//!
//! Swap this shim for the real crate by pointing the `parking_lot` entry of
//! `[workspace.dependencies]` back at crates.io; no source changes needed.
//!
//! # Lock-order analysis (`lock-order` feature)
//!
//! With the `lock-order` cargo feature the shim additionally instruments
//! every acquisition for deadlock analysis — see the `lock_order` module
//! (present only with the feature on). Locks gain
//! [`Mutex::named`] / [`RwLock::named`] constructors attaching a *site* (a
//! static name plus a documentation rank) so that held→acquiring order edges
//! and actual waits-for cycles are reported with real names. With the
//! feature **off** (the default) those constructors discard their arguments
//! at compile time and every method is the plain zero-overhead `std::sync`
//! wrapper below — no atomics, no thread-locals, no extra branches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "lock-order")]
pub mod lock_order;

#[cfg(feature = "lock-order")]
use lock_order::SiteSpec;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// Casts a (possibly wide) reference to its thin address, used as the lock's
/// identity in the waits-for watchdog.
#[cfg(feature = "lock-order")]
fn thin_addr<T: ?Sized>(value: &T) -> usize {
    value as *const T as *const () as usize
}

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    site: SiteSpec,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock-order")]
            site: SiteSpec::ANON,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a mutex annotated with a lock-order *site*: a static `name`
    /// (e.g. `"core.cell.data"`) and a documentation `rank` (lower ranks are
    /// acquired first). With the `lock-order` feature off this is identical
    /// to [`Mutex::new`] and the annotation costs nothing.
    pub const fn named(name: &'static str, rank: u32, value: T) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = (name, rank);
        Mutex {
            #[cfg(feature = "lock-order")]
            site: SiteSpec {
                name,
                rank,
                group: false,
            },
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Like [`Mutex::named`], for *group* sites: several locks of this site
    /// may legitimately be held by one thread at once (e.g. sorted multi-key
    /// commit latching), so same-site nesting is not reported as a violation.
    pub const fn named_group(name: &'static str, rank: u32, value: T) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = (name, rank);
        Mutex {
            #[cfg(feature = "lock-order")]
            site: SiteSpec {
                name,
                rank,
                group: true,
            },
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn recover<'a>(
        guard: Result<
            std::sync::MutexGuard<'a, T>,
            std::sync::TryLockError<std::sync::MutexGuard<'a, T>>,
        >,
    ) -> Option<std::sync::MutexGuard<'a, T>> {
        match guard {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std`, poisoning is ignored: a panic while holding the lock does
    /// not prevent later acquisitions (matching `parking_lot`).
    // The feature-gated arm must `return`; the uninstrumented arm is the tail.
    #[allow(clippy::needless_return)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        {
            let ctx = lock_order::AcquireCtx::new(
                &self.site,
                thin_addr(self),
                lock_order::Mode::Exclusive,
            );
            let (inner, tracked) =
                lock_order::acquire_blocking(ctx, || Self::recover(self.inner.try_lock()));
            return MutexGuard {
                tracked,
                inner: Some(inner),
            };
        }
        #[cfg(not(feature = "lock-order"))]
        {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            MutexGuard { inner: Some(guard) }
        }
    }

    /// Attempts to acquire the mutex without blocking; returns `None` if it
    /// is currently held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = Self::recover(self.inner.try_lock())?;
        Some(MutexGuard {
            #[cfg(feature = "lock-order")]
            tracked: lock_order::register_try_acquired(
                &self.site,
                thin_addr(self),
                lock_order::Mode::Exclusive,
            ),
            inner: Some(inner),
        })
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The guard internally stores an `Option` so that [`Condvar::wait_until`] can
/// temporarily take the underlying `std` guard without `unsafe`; it is always
/// `Some` outside of that method.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    tracked: lock_order::HeldToken,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Deregister before the std guard (dropped after this body) unlocks,
        // so the watchdog never sees us as holder of an acquirable lock.
        self.tracked.release();
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A readers-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    site: SiteSpec,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new readers-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lock-order")]
            site: SiteSpec::ANON,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a lock annotated with a lock-order *site*; see [`Mutex::named`].
    pub const fn named(name: &'static str, rank: u32, value: T) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = (name, rank);
        RwLock {
            #[cfg(feature = "lock-order")]
            site: SiteSpec {
                name,
                rank,
                group: false,
            },
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a *group*-site lock; see [`Mutex::named_group`].
    pub const fn named_group(name: &'static str, rank: u32, value: T) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = (name, rank);
        RwLock {
            #[cfg(feature = "lock-order")]
            site: SiteSpec {
                name,
                rank,
                group: true,
            },
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    fn recover_read<'a>(
        guard: Result<
            std::sync::RwLockReadGuard<'a, T>,
            std::sync::TryLockError<std::sync::RwLockReadGuard<'a, T>>,
        >,
    ) -> Option<std::sync::RwLockReadGuard<'a, T>> {
        match guard {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    fn recover_write<'a>(
        guard: Result<
            std::sync::RwLockWriteGuard<'a, T>,
            std::sync::TryLockError<std::sync::RwLockWriteGuard<'a, T>>,
        >,
    ) -> Option<std::sync::RwLockWriteGuard<'a, T>> {
        match guard {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires a shared read lock, blocking until one is available.
    // The feature-gated arm must `return`; the uninstrumented arm is the tail.
    #[allow(clippy::needless_return)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        {
            let ctx =
                lock_order::AcquireCtx::new(&self.site, thin_addr(self), lock_order::Mode::Shared);
            let (inner, tracked) =
                lock_order::acquire_blocking(ctx, || Self::recover_read(self.inner.try_read()));
            return RwLockReadGuard { tracked, inner };
        }
        #[cfg(not(feature = "lock-order"))]
        {
            RwLockReadGuard {
                inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    /// Acquires the exclusive write lock, blocking until it is available.
    // The feature-gated arm must `return`; the uninstrumented arm is the tail.
    #[allow(clippy::needless_return)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        {
            let ctx = lock_order::AcquireCtx::new(
                &self.site,
                thin_addr(self),
                lock_order::Mode::Exclusive,
            );
            let (inner, tracked) =
                lock_order::acquire_blocking(ctx, || Self::recover_write(self.inner.try_write()));
            return RwLockWriteGuard { tracked, inner };
        }
        #[cfg(not(feature = "lock-order"))]
        {
            RwLockWriteGuard {
                inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    /// Attempts to acquire a shared read lock without blocking; returns
    /// `None` if a writer holds (or `std` reports contention on) the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = Self::recover_read(self.inner.try_read())?;
        Some(RwLockReadGuard {
            #[cfg(feature = "lock-order")]
            tracked: lock_order::register_try_acquired(
                &self.site,
                thin_addr(self),
                lock_order::Mode::Shared,
            ),
            inner,
        })
    }

    /// Attempts to acquire the exclusive write lock without blocking;
    /// returns `None` if any reader or writer holds the lock.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = Self::recover_write(self.inner.try_write())?;
        Some(RwLockWriteGuard {
            #[cfg(feature = "lock-order")]
            tracked: lock_order::register_try_acquired(
                &self.site,
                thin_addr(self),
                lock_order::Mode::Exclusive,
            ),
            inner,
        })
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    tracked: lock_order::HeldToken,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.tracked.release();
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    tracked: lock_order::HeldToken,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.tracked.release();
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a [`Condvar`] wait with a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable, API-compatible with `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks the current thread until notified, releasing `guard` while
    /// waiting and re-acquiring it before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // The mutex is released for the duration of the wait: suspend its
        // hold registration so the analyzers do not see a phantom holder.
        #[cfg(feature = "lock-order")]
        guard.tracked.suspend();
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        #[cfg(feature = "lock-order")]
        guard.tracked.resume();
    }

    /// Blocks the current thread until notified or until `deadline`, releasing
    /// `guard` while waiting and re-acquiring it before returning.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "lock-order")]
        guard.tracked.suspend();
        let inner = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        #[cfg(feature = "lock-order")]
        guard.tracked.resume();
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn named_constructors_behave_like_new() {
        let m = Mutex::named("shim.test.mutex", 1, 7);
        assert_eq!(*m.lock(), 7);
        let g = Mutex::named_group("shim.test.mutex_group", 2, 8);
        assert_eq!(*g.lock(), 8);
        let l = RwLock::named("shim.test.rwlock", 3, 9);
        assert_eq!(*l.read(), 9);
        *l.write() = 10;
        assert_eq!(*l.read(), 10);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(5);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        let g = m.try_lock().expect("uncontended try_lock succeeds");
        assert_eq!(*g, 5);
    }

    #[test]
    fn try_read_and_try_write_follow_rw_semantics() {
        let l = RwLock::new(1);
        {
            let _r = l.read();
            // Readers share; writers are excluded.
            assert!(l.try_read().is_some());
            assert!(l.try_write().is_none());
        }
        {
            let _w = l.write();
            assert!(l.try_read().is_none());
            assert!(l.try_write().is_none());
        }
        *l.try_write().expect("uncontended try_write succeeds") = 2;
        assert_eq!(*l.try_read().expect("uncontended try_read succeeds"), 2);
    }

    #[test]
    fn try_lock_guard_releases_on_drop() {
        let m = Mutex::new(0);
        {
            let mut g = m.try_lock().expect("first try_lock");
            *g += 1;
        }
        assert_eq!(*m.try_lock().expect("second try_lock"), 1);
    }

    #[test]
    fn condvar_timeout_reports_timed_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                assert!(!res.timed_out(), "waiter should be notified, not time out");
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        handle.join().unwrap();
    }
}
