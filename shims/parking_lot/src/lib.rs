//! Offline shim for the [`parking_lot`](https://docs.rs/parking_lot) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate re-implements the small slice of the `parking_lot` API that the
//! workspace uses — `Mutex`, `RwLock` and `Condvar` with non-poisoning guards —
//! on top of `std::sync`. The semantics match `parking_lot` where the
//! workspace relies on them:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no `Result`);
//!   poisoning is swallowed, as `parking_lot` has no poisoning.
//! * `Condvar::wait_until` takes a `&mut MutexGuard` and an [`Instant`]
//!   deadline and reports timeouts through [`WaitTimeoutResult`].
//!
//! Swap this shim for the real crate by pointing the `parking_lot` entry of
//! `[workspace.dependencies]` back at crates.io; no source changes needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std`, poisoning is ignored: a panic while holding the lock does
    /// not prevent later acquisitions (matching `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The guard internally stores an `Option` so that [`Condvar::wait_until`] can
/// temporarily take the underlying `std` guard without `unsafe`; it is always
/// `Some` outside of that method.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A readers-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new readers-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until one is available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires the exclusive write lock, blocking until it is available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a [`Condvar`] wait with a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable, API-compatible with `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks the current thread until notified, releasing `guard` while
    /// waiting and re-acquiring it before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks the current thread until notified or until `deadline`, releasing
    /// `guard` while waiting and re-acquiring it before returning.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_timeout_reports_timed_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                assert!(!res.timed_out(), "waiter should be notified, not time out");
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        handle.join().unwrap();
    }
}
