//! Lock-order and deadlock analysis for the shim's `Mutex`/`RwLock`.
//!
//! Compiled only with the `lock-order` cargo feature. Two complementary
//! detectors share the instrumentation hooks the shim calls on every
//! acquisition and release:
//!
//! 1. **Static order graph (lockdep-style).** Every lock can carry a *site*
//!    — a `&'static str` name plus a documentation rank — via
//!    [`Mutex::named`](crate::Mutex::named) /
//!    [`RwLock::named`](crate::RwLock::named). A thread-local held-lock stack
//!    records a `held → acquiring` edge between sites for every *blocking*
//!    acquisition (`try_*` never blocks, so it contributes holds but no
//!    incoming edges). Each newly observed edge runs a DFS cycle check over
//!    the global site graph; a cycle means two code paths acquire the same
//!    sites in opposite orders — a *potential* deadlock — and is reported
//!    with every site on the cycle named. Sites created with
//!    [`Mutex::named_group`](crate::Mutex::named_group) may legitimately hold
//!    several same-site locks at once (e.g. sorted multi-key commit
//!    latching); self-edges on group sites are expected and ignored, while a
//!    self-edge on a non-group site is reported as a violation.
//!
//! 2. **Waits-for watchdog.** Blocking acquisitions spin on `try_*` and
//!    register the *address* they are waiting for; acquired locks register
//!    their holders. When a thread has been blocked longer than
//!    `MVTL_LOCK_WATCHDOG_MS` (default 250 ms) it walks the waits-for graph
//!    — thread → awaited address → holding threads — and panics with the
//!    full cycle if it is *actually* deadlocked, instead of hanging CI. The
//!    watchdog is address-exact: distinct locks of one site never alias, and
//!    a shared-mode waiter is only blocked by exclusive holders, so read-read
//!    contention can never fabricate a cycle.
//!
//! Detection is per-process: the graph and registries are global statics.
//! Tests that *deliberately* provoke violations must therefore live in their
//! own test binary so they do not pollute the graph asserted acyclic by the
//! integration suite. One blind spot is documented here rather than papered
//! over: a thread re-acquiring a mutex inside `Condvar::wait` blocks inside
//! `std`, where the watchdog cannot see it; its holds are deregistered for
//! the duration of the wait, so it can never fabricate a cycle either.
//!
//! The tracker's own internals use raw `std::sync` primitives — the one
//! place in the workspace allowed to (enforced by `mvtl-lint`'s shim
//! exemption) — so instrumentation can never recurse into itself.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

/// Compile-time site description attached to a `Mutex`/`RwLock` by the
/// `named`/`named_group` constructors. Anonymous locks carry an empty name
/// and take part only in the address-exact watchdog, never the site graph.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SiteSpec {
    pub(crate) name: &'static str,
    pub(crate) rank: u32,
    pub(crate) group: bool,
}

impl SiteSpec {
    pub(crate) const ANON: SiteSpec = SiteSpec {
        name: "",
        rank: u32::MAX,
        group: false,
    };
}

impl Default for SiteSpec {
    fn default() -> Self {
        SiteSpec::ANON
    }
}

/// Acquisition mode, mirroring the primitive being acquired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Mode {
    /// `RwLock::read` — blocked only by exclusive holders.
    Shared,
    /// `Mutex::lock` / `RwLock::write` — blocked by any holder.
    Exclusive,
}

/// What to do when the site graph detects a potential-deadlock cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OnCycle {
    /// Panic at the acquisition that closed the cycle (the default).
    Panic,
    /// Record the violation for later retrieval via [`recorded_violations`];
    /// used by tests that deliberately provoke inversions.
    Record,
}

const ON_CYCLE_PANIC: u8 = 0;
const ON_CYCLE_RECORD: u8 = 1;

/// A named site registered in the global graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteInfo {
    /// The site name, e.g. `"core.cell.data"`.
    pub name: &'static str,
    /// Documentation rank (lower acquires first); checked against observed
    /// edges by [`assert_acyclic`].
    pub rank: u32,
    /// Whether several locks of this site may be held at once.
    pub group: bool,
}

struct Graph {
    ids: HashMap<&'static str, u32>,
    sites: Vec<SiteInfo>,
    edges: HashSet<(u32, u32)>,
    adj: HashMap<u32, Vec<u32>>,
    violations: Vec<String>,
}

#[derive(Clone, Copy)]
struct Holder {
    tid: u64,
    mode: Mode,
}

#[derive(Clone, Copy)]
struct Wait {
    addr: usize,
    mode: Mode,
    site_name: &'static str,
}

#[derive(Default)]
struct WaitTable {
    /// Lock address → current holders (several in shared mode).
    holders: HashMap<usize, Vec<Holder>>,
    /// Thread id → the address it is blocked acquiring.
    waiting: HashMap<u64, Wait>,
}

struct Global {
    graph: StdMutex<Graph>,
    waits: StdMutex<WaitTable>,
    on_cycle: AtomicU8,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        graph: StdMutex::new(Graph {
            ids: HashMap::new(),
            sites: Vec::new(),
            edges: HashSet::new(),
            adj: HashMap::new(),
            violations: Vec::new(),
        }),
        waits: StdMutex::new(WaitTable::default()),
        on_cycle: AtomicU8::new(ON_CYCLE_PANIC),
    })
}

/// A panic with a lock held poisons the tracker's internal std mutexes;
/// recover unconditionally so one reported violation does not cascade.
fn lock_graph() -> std::sync::MutexGuard<'static, Graph> {
    global().graph.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock_waits() -> std::sync::MutexGuard<'static, WaitTable> {
    global().waits.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// Stack of locks this thread currently holds: (site id if named, addr).
    static HELD: RefCell<Vec<(Option<u32>, usize)>> = const { RefCell::new(Vec::new()) };
    /// Site-graph edges this thread has already pushed globally; skipping
    /// re-insertion keeps steady-state acquisitions off the global mutex.
    static EDGE_CACHE: RefCell<HashSet<(u32, u32)>> = RefCell::new(HashSet::new());
    /// Interned site ids, cached per thread.
    static SITE_CACHE: RefCell<HashMap<&'static str, u32>> = RefCell::new(HashMap::new());
    static TID: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

fn watchdog_threshold() -> Duration {
    static THRESHOLD: OnceLock<Duration> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        let ms = std::env::var("MVTL_LOCK_WATCHDOG_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(250);
        Duration::from_millis(ms.max(1))
    })
}

/// Selects how site-graph cycles are reported process-wide.
pub fn set_on_cycle(mode: OnCycle) {
    let raw = match mode {
        OnCycle::Panic => ON_CYCLE_PANIC,
        OnCycle::Record => ON_CYCLE_RECORD,
    };
    global().on_cycle.store(raw, Ordering::SeqCst);
}

/// Violations recorded while the [`OnCycle::Record`] policy was active.
pub fn recorded_violations() -> Vec<String> {
    lock_graph().violations.clone()
}

fn intern(name: &'static str, rank: u32, group: bool) -> u32 {
    let cached = SITE_CACHE.with(|c| c.borrow().get(name).copied());
    if let Some(id) = cached {
        return id;
    }
    let mut graph = lock_graph();
    let id = match graph.ids.get(name) {
        Some(&id) => id,
        None => {
            let id = graph.sites.len() as u32;
            graph.ids.insert(name, id);
            graph.sites.push(SiteInfo { name, rank, group });
            id
        }
    };
    drop(graph);
    SITE_CACHE.with(|c| {
        c.borrow_mut().insert(name, id);
    });
    id
}

/// Everything `acquire_blocking`/`register_try_acquired` need about one
/// acquisition attempt, computed before touching the real primitive.
pub(crate) struct AcquireCtx {
    site: Option<u32>,
    site_name: &'static str,
    addr: usize,
    mode: Mode,
}

impl AcquireCtx {
    pub(crate) fn new(spec: &SiteSpec, addr: usize, mode: Mode) -> AcquireCtx {
        let site = if spec.name.is_empty() {
            None
        } else {
            Some(intern(spec.name, spec.rank, spec.group))
        };
        AcquireCtx {
            site,
            site_name: spec.name,
            addr,
            mode,
        }
    }
}

/// Records `held → acquiring` edges for a blocking acquisition and runs the
/// cycle check on any edge not seen before. Panics (or records, per
/// [`set_on_cycle`]) when the new edge closes a cycle.
fn record_edges(ctx: &AcquireCtx) {
    let Some(to) = ctx.site else { return };
    let held: Vec<u32> = HELD.with(|h| h.borrow().iter().filter_map(|&(site, _)| site).collect());
    for from in held {
        let fresh = EDGE_CACHE.with(|c| c.borrow_mut().insert((from, to)));
        if !fresh {
            continue;
        }
        let mut graph = lock_graph();
        if !graph.edges.insert((from, to)) {
            continue; // another thread already recorded and checked it
        }
        graph.adj.entry(from).or_default().push(to);
        let violation = if from == to {
            if graph.sites[to as usize].group {
                None
            } else {
                Some(format!(
                    "lock-order violation: site `{}` acquired while already held by the same \
                     thread; declare it with `named_group` if same-site nesting is intended",
                    graph.sites[to as usize].name
                ))
            }
        } else {
            path(&graph, to, from).map(|cycle_path| {
                let names: Vec<&str> = cycle_path
                    .iter()
                    .chain(std::iter::once(&to))
                    .map(|&id| graph.sites[id as usize].name)
                    .collect();
                format!(
                    "lock-order cycle: acquiring `{}` while holding `{}` closes the cycle {}",
                    graph.sites[to as usize].name,
                    graph.sites[from as usize].name,
                    names.join(" -> "),
                )
            })
        };
        if let Some(msg) = violation {
            if global().on_cycle.load(Ordering::SeqCst) == ON_CYCLE_RECORD {
                graph.violations.push(msg);
            } else {
                drop(graph);
                panic!("{msg}");
            }
        }
    }
}

/// DFS path from `start` to `goal` over the site graph, if one exists.
fn path(graph: &Graph, start: u32, goal: u32) -> Option<Vec<u32>> {
    let mut stack = vec![(start, 0usize)];
    let mut on_path = vec![start];
    let mut visited = HashSet::new();
    visited.insert(start);
    if start == goal {
        return Some(on_path);
    }
    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        let succs = graph.adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
        if *next >= succs.len() {
            stack.pop();
            on_path.pop();
            continue;
        }
        let succ = succs[*next];
        *next += 1;
        if succ == goal {
            on_path.push(succ);
            return Some(on_path);
        }
        if visited.insert(succ) {
            stack.push((succ, 0));
            on_path.push(succ);
        }
    }
    None
}

/// Registered in the wait table for the duration of a blocked acquisition;
/// removal on drop keeps the table accurate even when a cycle check panics.
struct WaitRegistration {
    tid: u64,
}

impl Drop for WaitRegistration {
    fn drop(&mut self) {
        lock_waits().waiting.remove(&self.tid);
    }
}

/// Bookkeeping handle owned by a lock guard while the lock is held.
#[derive(Debug)]
pub(crate) struct HeldToken {
    site: Option<u32>,
    site_name: &'static str,
    addr: usize,
    mode: Mode,
    active: bool,
}

impl HeldToken {
    fn register(ctx: &AcquireCtx) -> HeldToken {
        let tid = current_tid();
        HELD.with(|h| h.borrow_mut().push((ctx.site, ctx.addr)));
        lock_waits()
            .holders
            .entry(ctx.addr)
            .or_default()
            .push(Holder {
                tid,
                mode: ctx.mode,
            });
        HeldToken {
            site: ctx.site,
            site_name: ctx.site_name,
            addr: ctx.addr,
            mode: ctx.mode,
            active: true,
        }
    }

    /// Deregisters this hold. Called by guard `Drop` *before* the underlying
    /// primitive unlocks, so the watchdog never sees a lock as held-by-us
    /// after another thread could have acquired it.
    pub(crate) fn release(&mut self) {
        if !self.active {
            return;
        }
        self.active = false;
        let tid = current_tid();
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(_, addr)| addr == self.addr) {
                held.remove(pos);
            }
        });
        let mut waits = lock_waits();
        if let Some(holders) = waits.holders.get_mut(&self.addr) {
            if let Some(pos) = holders.iter().rposition(|h| h.tid == tid) {
                holders.remove(pos);
            }
            if holders.is_empty() {
                waits.holders.remove(&self.addr);
            }
        }
    }

    /// Temporarily deregisters the hold while a `Condvar` wait releases the
    /// underlying mutex.
    pub(crate) fn suspend(&mut self) {
        self.release();
    }

    /// Re-registers the hold after a `Condvar` wait re-acquired the mutex.
    /// No edge is recorded: the original blocking acquisition already did.
    pub(crate) fn resume(&mut self) {
        if self.active {
            return;
        }
        let ctx = AcquireCtx {
            site: self.site,
            site_name: self.site_name,
            addr: self.addr,
            mode: self.mode,
        };
        *self = HeldToken::register(&ctx);
    }
}

/// A successful non-blocking acquisition: registers the hold without
/// recording order edges (a `try_*` that fails simply returns `None`, so it
/// can never participate in a deadlock as the acquiring side).
pub(crate) fn register_try_acquired(spec: &SiteSpec, addr: usize, mode: Mode) -> HeldToken {
    let ctx = AcquireCtx::new(spec, addr, mode);
    HeldToken::register(&ctx)
}

/// Drives a blocking acquisition through `try_fn`, recording order edges up
/// front and arming the waits-for watchdog while blocked.
pub(crate) fn acquire_blocking<G>(
    ctx: AcquireCtx,
    mut try_fn: impl FnMut() -> Option<G>,
) -> (G, HeldToken) {
    record_edges(&ctx);
    if let Some(guard) = try_fn() {
        return (guard, HeldToken::register(&ctx));
    }
    let tid = current_tid();
    lock_waits().waiting.insert(
        tid,
        Wait {
            addr: ctx.addr,
            mode: ctx.mode,
            site_name: ctx.site_name,
        },
    );
    let registration = WaitRegistration { tid };
    let threshold = watchdog_threshold();
    let mut next_check = Instant::now() + threshold;
    loop {
        if let Some(guard) = try_fn() {
            drop(registration);
            return (guard, HeldToken::register(&ctx));
        }
        std::thread::sleep(Duration::from_micros(100));
        if Instant::now() >= next_check {
            check_deadlock(tid);
            next_check = Instant::now() + threshold;
        }
    }
}

/// Walks the waits-for graph from `start`; panics naming the full cycle if
/// `start` is transitively blocked on a cycle of blocked threads.
fn check_deadlock(start: u64) {
    let waits = lock_waits();
    // DFS over threads; edge t -> u when t waits on an address u holds in a
    // blocking mode. Only waiting threads are expanded: a running holder will
    // eventually release, so it can never be part of a deadlock cycle.
    let mut stack: Vec<(u64, Vec<u64>)> = Vec::new();
    let mut path: Vec<u64> = vec![start];
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(start);
    stack.push((start, blockers(&waits, start)));
    while let Some((_, succs)) = stack.last_mut() {
        let Some(next) = succs.pop() else {
            stack.pop();
            path.pop();
            continue;
        };
        if let Some(pos) = path.iter().position(|&t| t == next) {
            let cycle: Vec<u64> = path[pos..].to_vec();
            let msg = describe_cycle(&waits, &cycle);
            drop(waits);
            panic!("{msg}");
        }
        if visited.insert(next) {
            path.push(next);
            let next_succs = blockers(&waits, next);
            stack.push((next, next_succs));
        }
    }
}

/// Threads blocking `tid`'s current wait (empty when `tid` is not waiting).
/// Shared-mode waits are blocked only by exclusive holders; exclusive-mode
/// waits by every holder. Only holders that are themselves waiting are
/// returned — see `check_deadlock`.
fn blockers(waits: &WaitTable, tid: u64) -> Vec<u64> {
    let Some(wait) = waits.waiting.get(&tid) else {
        return Vec::new();
    };
    let Some(holders) = waits.holders.get(&wait.addr) else {
        return Vec::new();
    };
    holders
        .iter()
        .filter(|h| h.tid != tid)
        .filter(|h| wait.mode == Mode::Exclusive || h.mode == Mode::Exclusive)
        .filter(|h| waits.waiting.contains_key(&h.tid))
        .map(|h| h.tid)
        .collect()
}

fn describe_cycle(waits: &WaitTable, cycle: &[u64]) -> String {
    let mut msg = String::from("deadlock detected (waits-for cycle): ");
    for (i, &tid) in cycle.iter().enumerate() {
        let wait = &waits.waiting[&tid];
        let site = if wait.site_name.is_empty() {
            "<anonymous>"
        } else {
            wait.site_name
        };
        let next = cycle[(i + 1) % cycle.len()];
        if i > 0 {
            msg.push_str("; ");
        }
        let _ = write!(
            msg,
            "thread {tid} waits for `{site}` ({:#x}) held by thread {next}",
            wait.addr
        );
    }
    msg
}

/// Snapshot of every named site registered so far.
pub fn sites() -> Vec<SiteInfo> {
    lock_graph().sites.clone()
}

/// Snapshot of the observed `held → acquiring` edges, as site-name pairs.
pub fn edges() -> Vec<(&'static str, &'static str)> {
    let graph = lock_graph();
    let mut out: Vec<_> = graph
        .edges
        .iter()
        .map(|&(a, b)| (graph.sites[a as usize].name, graph.sites[b as usize].name))
        .collect();
    out.sort_unstable();
    out
}

/// Every cycle in the recorded site graph, as lists of site names. Group-site
/// self-edges are not cycles; any other strongly connected component with a
/// cycle is returned once.
pub fn cycles() -> Vec<Vec<&'static str>> {
    let graph = lock_graph();
    let mut out = Vec::new();
    for scc in sccs(&graph) {
        if scc.len() > 1 {
            out.push(
                scc.iter()
                    .map(|&id| graph.sites[id as usize].name)
                    .collect(),
            );
        } else {
            let id = scc[0];
            if graph.edges.contains(&(id, id)) && !graph.sites[id as usize].group {
                out.push(vec![graph.sites[id as usize].name]);
            }
        }
    }
    out
}

/// Iterative Tarjan strongly-connected components over the site graph.
fn sccs(graph: &Graph) -> Vec<Vec<u32>> {
    let n = graph.sites.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != usize::MAX {
            continue;
        }
        // (node, iterator position into adj)
        let mut call: Vec<(u32, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[v as usize] = next_index;
                low[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            let succs = graph.adj.get(&v).map(Vec::as_slice).unwrap_or(&[]);
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w as usize] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(scc);
                }
            }
        }
    }
    out
}

/// Edges that run *against* the documented ranks (an edge must go from a
/// lower rank to a higher one). Group-site self-edges are exempt.
pub fn rank_inversions() -> Vec<String> {
    let graph = lock_graph();
    let mut out = Vec::new();
    for &(a, b) in &graph.edges {
        if a == b {
            continue;
        }
        let (sa, sb) = (graph.sites[a as usize], graph.sites[b as usize]);
        if sa.rank >= sb.rank {
            out.push(format!(
                "rank inversion: observed edge `{}` (rank {}) -> `{}` (rank {})",
                sa.name, sa.rank, sb.name, sb.rank
            ));
        }
    }
    out.sort_unstable();
    out
}

/// Panics unless the recorded site graph is acyclic, no violation was
/// recorded, and every observed edge respects the documented ranks.
pub fn assert_acyclic() {
    let mut problems: Vec<String> = Vec::new();
    for cycle in cycles() {
        problems.push(format!("cycle: {}", cycle.join(" -> ")));
    }
    problems.extend(recorded_violations());
    problems.extend(rank_inversions());
    assert!(
        problems.is_empty(),
        "lock-order graph is not clean:\n  {}",
        problems.join("\n  ")
    );
}

/// Graphviz DOT rendering of the site graph (nodes labelled with ranks).
pub fn dot() -> String {
    let graph = lock_graph();
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n  node [shape=box];\n");
    let mut sites: Vec<&SiteInfo> = graph.sites.iter().collect();
    sites.sort_by_key(|s| s.rank);
    for site in sites {
        let group = if site.group { "\\ngroup" } else { "" };
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\nrank {}{}\"];",
            site.name, site.name, site.rank, group
        );
    }
    let mut edges: Vec<_> = graph.edges.iter().collect();
    edges.sort_unstable();
    for &(a, b) in edges {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\";",
            graph.sites[a as usize].name, graph.sites[b as usize].name
        );
    }
    out.push_str("}\n");
    out
}
