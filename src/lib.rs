//! # mvtl — multiversion timestamp locking
//!
//! Facade crate for the reproduction of *"Locking Timestamps versus Locking
//! Objects"* (Aguilera, David, Guerraoui, Wang — PODC 2018). It re-exports the
//! workspace crates under one roof so that examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`common`] | `mvtl-common` | timestamps, interval sets, ids, errors, the `TransactionalKV` trait and the object-safe `Engine` layer |
//! | [`locks`] | `mvtl-locks` | freezable interval lock tables (§4.2, §6) |
//! | [`storage`] | `mvtl-storage` | multiversion value store with purging |
//! | [`clock`] | `mvtl-clock` | clock sources and the timestamp service |
//! | [`core`] | `mvtl-core` | the generic MVTL engine and every policy of §5 |
//! | [`faults`] | `mvtl-faults` | deterministic, seeded fault-injection plans (the `fault=` schedules) |
//! | [`gc`] | `mvtl-gc` | watermark-safe background garbage collection (§6's timestamp service for the real engines) |
//! | [`baselines`] | `mvtl-baselines` | MVTO+ and strict 2PL |
//! | [`registry`] | `mvtl-registry` | string-spec engine factory (`"mvtil-early?delta=1000"` → `Box<dyn Engine>`) |
//! | [`server`] | `mvtl-server` | TCP serve path: wire protocol, threaded server, client, open-loop load driver |
//! | [`shard`] | `mvtl-shard` | partitioned engine: hash-routed shards, §7 cross-shard interval-intersection commit |
//! | [`verify`] | `mvtl-verify` | MVSG serializability checking, canonical schedules |
//! | [`wal`] | `mvtl-wal` | durability: checksummed write-ahead log with group commit, crash recovery, persistent prepare state |
//! | [`sim`] | `mvtl-sim` | discrete-event simulation of the distributed system (§7, §8) |
//! | [`workload`] | `mvtl-workload` | workload generators, runners, the figure harness |
//!
//! # Quick start
//!
//! Engines are built from registry string specs and driven through the
//! object-safe [`Engine`](common::Engine) layer: the RAII
//! [`Transaction`](common::Transaction) guard aborts on drop, and
//! [`EngineExt::run`](common::EngineExt::run) retries aborted transactions
//! with seeded backoff.
//!
//! ```
//! use mvtl::common::{EngineExt, Key, ProcessId, RetryOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = mvtl::registry::build_for::<String>("mvtil-early?delta=1000")?;
//!
//! let mut tx = engine.begin(ProcessId(0));
//! tx.write(Key::from_name("greeting"), "hello".to_string())?;
//! tx.commit()?;
//!
//! let report = engine.run(ProcessId(1), &RetryOptions::default(), |tx| {
//!     assert_eq!(tx.read(Key::from_name("greeting"))?, Some("hello".to_string()));
//!     Ok(())
//! })?;
//! assert_eq!(report.attempts, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mvtl_analysis as analysis;
pub use mvtl_baselines as baselines;
pub use mvtl_clock as clock;
pub use mvtl_common as common;
pub use mvtl_core as core;
pub use mvtl_faults as faults;
pub use mvtl_gc as gc;
pub use mvtl_locks as locks;
pub use mvtl_registry as registry;
pub use mvtl_server as server;
pub use mvtl_shard as shard;
pub use mvtl_sim as sim;
pub use mvtl_storage as storage;
pub use mvtl_verify as verify;
pub use mvtl_wal as wal;
pub use mvtl_workload as workload;
