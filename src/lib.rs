//! # mvtl — multiversion timestamp locking
//!
//! Facade crate for the reproduction of *"Locking Timestamps versus Locking
//! Objects"* (Aguilera, David, Guerraoui, Wang — PODC 2018). It re-exports the
//! workspace crates under one roof so that examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`common`] | `mvtl-common` | timestamps, interval sets, ids, errors, the `TransactionalKV` trait |
//! | [`locks`] | `mvtl-locks` | freezable interval lock tables (§4.2, §6) |
//! | [`storage`] | `mvtl-storage` | multiversion value store with purging |
//! | [`clock`] | `mvtl-clock` | clock sources and the timestamp service |
//! | [`core`] | `mvtl-core` | the generic MVTL engine and every policy of §5 |
//! | [`baselines`] | `mvtl-baselines` | MVTO+ and strict 2PL |
//! | [`verify`] | `mvtl-verify` | MVSG serializability checking, canonical schedules |
//! | [`sim`] | `mvtl-sim` | discrete-event simulation of the distributed system (§7, §8) |
//! | [`workload`] | `mvtl-workload` | workload generators, runners, the figure harness |
//!
//! # Quick start
//!
//! ```
//! use mvtl::clock::GlobalClock;
//! use mvtl::common::{Key, ProcessId, TransactionalKV};
//! use mvtl::core::{policy::MvtilPolicy, MvtlConfig, MvtlStore};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), mvtl::common::TxError> {
//! let store: MvtlStore<String, _> = MvtlStore::new(
//!     MvtilPolicy::early(1_000),
//!     Arc::new(GlobalClock::new()),
//!     MvtlConfig::default(),
//! );
//! let mut tx = store.begin(ProcessId(0));
//! store.write(&mut tx, Key::from_name("greeting"), "hello".to_string())?;
//! store.commit(tx)?;
//!
//! let mut tx = store.begin(ProcessId(1));
//! assert_eq!(
//!     store.read(&mut tx, Key::from_name("greeting"))?,
//!     Some("hello".to_string())
//! );
//! store.commit(tx)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mvtl_baselines as baselines;
pub use mvtl_clock as clock;
pub use mvtl_common as common;
pub use mvtl_core as core;
pub use mvtl_locks as locks;
pub use mvtl_sim as sim;
pub use mvtl_storage as storage;
pub use mvtl_verify as verify;
pub use mvtl_workload as workload;
