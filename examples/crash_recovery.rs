//! Durability demo: write-ahead logging, a simulated crash, and recovery.
//!
//! A [`WalEngine`] wraps an MVTIL store so that every commit is appended to a
//! checksummed log and acknowledged only once durable. Dropping the engine
//! discards all in-memory state — the multiversion store, the lock tables,
//! the clock — exactly like a process crash. Reopening the log replays the
//! committed write sets at their *original* timestamps and restarts the clock
//! past the recovered watermark, so post-crash transactions serialize after
//! everything that survived.
//!
//! ```bash
//! cargo run --example crash_recovery
//! ```

use mvtl::clock::GlobalClock;
use mvtl::common::{Engine, EngineExt, Key, ProcessId, TempDir};
use mvtl::core::policy::MvtilPolicy;
use mvtl::core::{MvtlConfig, MvtlStore};
use mvtl::wal::{RecoveryReport, Wal, WalError, WalOptions};
use std::path::Path;
use std::sync::Arc;

/// Opens the log in `dir`, sizes a fresh clock past whatever it recovered,
/// and replays the log into a fresh MVTIL-early store.
fn open_engine(dir: &Path) -> Result<(Box<dyn Engine<u64>>, RecoveryReport), WalError> {
    let (wal, recovery) = Wal::open::<u64>(dir, WalOptions::default())?;
    // The clock must start past every recovered commit timestamp, or new
    // transactions could serialize *before* state that already exists.
    let start = recovery.max_commit_ts().map_or(1, |ts| ts.value + 1);
    let clock = Arc::new(GlobalClock::starting_at(start));
    let store = MvtlStore::new(MvtilPolicy::early(1_000), clock as _, MvtlConfig::default());
    let (engine, report) = mvtl::wal::WalEngine::with_recovery(Arc::new(store), wal, recovery)?;
    Ok((Box::new(engine), report))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = TempDir::new("crash-recovery-demo");
    let accounts: Vec<Key> = (0..4)
        .map(|i| Key::from_name(&format!("acct-{i}")))
        .collect();

    // ---- Life before the crash -------------------------------------------
    let (engine, report) = open_engine(dir.path())?;
    println!("fresh log:      {report:?}");

    let mut tx = engine.begin(ProcessId(0));
    for key in &accounts {
        tx.write(*key, 100)?;
    }
    tx.commit()?;

    // Move 30 units between two accounts, durably.
    engine.run(ProcessId(1), &Default::default(), |tx| {
        let from = tx.read(accounts[0])?.unwrap_or(0);
        let to = tx.read(accounts[1])?.unwrap_or(0);
        tx.write(accounts[0], from - 30)?;
        tx.write(accounts[1], to + 30)?;
        Ok(())
    })?;

    // This transaction never commits: the crash will erase it.
    let mut doomed = engine.begin(ProcessId(2));
    doomed.write(accounts[2], 9_999_999)?;
    drop(doomed);

    println!("pre-crash:      {}", balances(engine.as_ref(), &accounts));
    drop(engine);
    println!("-- crash: all in-memory state discarded; only the log survives --");

    // ---- Recovery ---------------------------------------------------------
    let (engine, report) = open_engine(dir.path())?;
    println!("recovered log:  {report:?}");
    println!("post-recovery:  {}", balances(engine.as_ref(), &accounts));

    // The recovered engine is fully live: keep transferring.
    engine.run(ProcessId(3), &Default::default(), |tx| {
        let from = tx.read(accounts[1])?.unwrap_or(0);
        let to = tx.read(accounts[3])?.unwrap_or(0);
        tx.write(accounts[1], from - 50)?;
        tx.write(accounts[3], to + 50)?;
        Ok(())
    })?;
    println!("after transfer: {}", balances(engine.as_ref(), &accounts));

    // The registry spells the same setup as a one-line spec; `wal=tmp` uses
    // a self-cleaning temporary directory instead of a named one.
    let spec = format!("mvtil-early?wal={}&fsync=group", dir.path().display());
    let from_spec = mvtl::registry::build(&spec)?;
    println!("via `{spec}`:");
    println!(
        "                {}",
        balances(from_spec.as_ref(), &accounts)
    );
    Ok(())
}

/// Renders the current committed balance of each account.
fn balances(engine: &dyn Engine<u64>, accounts: &[Key]) -> String {
    let mut tx = engine.begin(ProcessId(42));
    let cells: Vec<String> = accounts
        .iter()
        .enumerate()
        .map(|(i, key)| format!("acct-{i}={:?}", tx.read(*key).unwrap()))
        .collect();
    tx.commit().unwrap();
    cells.join("  ")
}
