//! Prioritized transactions with MVTL-Prio (§5.2): a critical "end-of-day
//! settlement" transaction runs amid a storm of normal transactions and is
//! never aborted by them (Theorem 3).
//!
//! ```bash
//! cargo run --release --example priority_scheduling
//! ```

use mvtl::clock::GlobalClock;
use mvtl::common::{Key, ProcessId, TransactionalKV, TxError};
use mvtl::core::policy::PrioPolicy;
use mvtl::core::{MvtlConfig, MvtlStore};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const KEYS: u64 = 64;

fn main() {
    let store: Arc<MvtlStore<u64, PrioPolicy>> = Arc::new(MvtlStore::new(
        PrioPolicy::new(),
        Arc::new(GlobalClock::new()),
        MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(20)),
    ));

    // Seed.
    {
        let mut tx = store.begin(ProcessId(0));
        for k in 0..KEYS {
            store.write(&mut tx, Key(k), 100).unwrap();
        }
        store.commit(tx).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let normal_commits = Arc::new(AtomicU64::new(0));
    let normal_aborts = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // Background storm of normal transactions.
        for worker in 0..4u32 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let commits = Arc::clone(&normal_commits);
            let aborts = Arc::clone(&normal_aborts);
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let mut tx = store.begin(ProcessId(worker + 1));
                    let result = (|| -> Result<(), TxError> {
                        let k1 = Key((i * 7 + u64::from(worker)) % KEYS);
                        let k2 = Key((i * 13 + u64::from(worker) * 3) % KEYS);
                        let v = store.read(&mut tx, k1)?.unwrap_or(0);
                        store.write(&mut tx, k2, v + 1)?;
                        Ok(())
                    })();
                    match result {
                        Ok(()) => {
                            if store.commit(tx).is_ok() {
                                commits.fetch_add(1, Ordering::Relaxed);
                            } else {
                                aborts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            store.abort(tx);
                            aborts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // The critical transaction: reads and rewrites every account. Under
        // normal (non-priority) timestamp ordering this would frequently abort
        // due to conflicts with the storm; as a critical transaction it is
        // never aborted because of the normal traffic.
        let store_for_critical = Arc::clone(&store);
        let stop_for_critical = Arc::clone(&stop);
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                let mut tx = store_for_critical.begin_critical(ProcessId(42));
                let result = (|| -> Result<u64, TxError> {
                    let mut sum = 0;
                    for k in 0..KEYS {
                        let v = store_for_critical.read(&mut tx, Key(k))?.unwrap_or(0);
                        sum += v;
                        store_for_critical.write(&mut tx, Key(k), v)?;
                    }
                    Ok(sum)
                })();
                match result {
                    Ok(sum) => match store_for_critical.commit(tx) {
                        Ok(info) => {
                            println!(
                                "critical settlement committed on attempt {attempts}: total={sum}, ts={}",
                                info.commit_ts.unwrap()
                            );
                            break;
                        }
                        Err(e) => println!("critical commit retried: {e}"),
                    },
                    Err(e) => {
                        // Only lock timeouts (deadlock resolution among critical
                        // transactions) can push the critical transaction back;
                        // normal transactions never abort it.
                        store_for_critical.abort(tx);
                        println!("critical attempt {attempts} backed off: {e}");
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            stop_for_critical.store(true, Ordering::Relaxed);
        });
    });

    println!(
        "normal traffic while the settlement ran: {} commits, {} aborts",
        normal_commits.load(Ordering::Relaxed),
        normal_aborts.load(Ordering::Relaxed)
    );
}
