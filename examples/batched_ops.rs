//! Batched multi-key operations: the same transaction, op-by-op and batched.
//!
//! Builds the partitioned `sharded` engine, loads a key space with one
//! `write_many` round per shard, then times the same skewed multi-key
//! read transaction executed op-by-op and through `read_many` — the batched
//! run deduplicates repeated keys and pays one sub-transaction round per
//! shard instead of one negotiation per key.
//!
//! ```bash
//! cargo run --release --example batched_ops
//! ```

use mvtl::common::{Engine, EngineExt, Key, ProcessId};
use std::time::Instant;

const KEYS: u64 = 64;
const OPS_PER_TX: u64 = 32;
const ROUNDS: u64 = 2_000;

/// An extremely skewed batch: `i² mod 16` only takes the values {0, 1, 4, 9},
/// so each 32-op batch holds exactly 4 distinct keys. This is the
/// dedup-friendliest case — the speedup printed below is an upper bound, not
/// a typical zipf workload's.
fn batch_keys(round: u64) -> Vec<Key> {
    (0..OPS_PER_TX)
        .map(|i| Key((round * 7 + i * i) % 16))
        .collect()
}

fn timed(engine: &dyn Engine<u64>, batched: bool) -> f64 {
    let start = Instant::now();
    for round in 0..ROUNDS {
        let keys = batch_keys(round);
        let mut tx = engine.begin(ProcessId(1));
        if batched {
            tx.read_many(&keys).expect("uncontended batched read");
        } else {
            for key in &keys {
                tx.read(*key).expect("uncontended read");
            }
        }
        tx.commit().expect("read-only commit");
    }
    start.elapsed().as_secs_f64()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = mvtl::registry::build("sharded?shards=8&inner=mvtil-early")?;

    // Load the key space: one write_many, one round per participating shard.
    let mut tx = engine.begin(ProcessId(0));
    tx.write_many((0..KEYS).map(|k| (Key(k), k * 10)).collect())?;
    let info = tx.commit()?;
    println!(
        "loaded {} keys across 8 shards in one batched transaction (commit ts {:?})",
        info.writes.len(),
        info.commit_ts
    );

    // Batched reads return values in input order, duplicates included.
    let mut tx = engine.begin(ProcessId(0));
    let values = tx.read_many(&[Key(3), Key(33), Key(63), Key(3)])?;
    assert_eq!(values, vec![Some(30), Some(330), Some(630), Some(30)]);
    tx.commit()?;

    let op_by_op = timed(engine.as_ref(), false);
    let batched = timed(engine.as_ref(), true);
    println!(
        "{ROUNDS} transactions x {OPS_PER_TX} skewed reads: op-by-op {:.3} s, batched {:.3} s \
         ({:.2}x)",
        op_by_op,
        batched,
        op_by_op / batched.max(f64::EPSILON)
    );
    Ok(())
}
