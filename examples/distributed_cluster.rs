//! Distributed MVTL on the simulated cluster (§7/§8): compares MVTIL, MVTO+
//! and 2PL on the paper's local and cloud test-bed profiles, and demonstrates
//! coordinator-failure handling by the commitment object (§H).
//!
//! ```bash
//! cargo run --release --example distributed_cluster
//! ```

use mvtl::sim::{NetworkProfile, Protocol, SimConfig, Simulation};

fn run_profile(name: &str, base: impl Fn(Protocol) -> SimConfig) {
    println!("== {name} ==");
    println!(
        "{:<14} {:>14} {:>12} {:>10} {:>10}",
        "protocol", "throughput_tps", "commit_rate", "locks", "versions"
    );
    for protocol in Protocol::all() {
        let metrics = Simulation::new(base(protocol)).run();
        println!(
            "{:<14} {:>14.1} {:>12.3} {:>10} {:>10}",
            metrics.protocol,
            metrics.throughput_tps(),
            metrics.commit_rate(),
            metrics.final_locks,
            metrics.final_versions
        );
    }
    println!();
}

fn main() {
    // The two test beds of §8.2, scaled down so the example finishes quickly.
    run_profile("local cluster (3 servers, fast network)", |protocol| {
        SimConfig::local_cluster(protocol)
            .clients(60)
            .keys(2_000)
            .write_fraction(0.25)
            .duration_secs(3)
    });
    run_profile(
        "public cloud (8 single-core servers, jittery network)",
        |protocol| {
            SimConfig::public_cloud(protocol)
                .clients(80)
                .keys(5_000)
                .write_fraction(0.25)
                .duration_secs(3)
        },
    );

    // Failure handling (§H): coordinators crash mid-commit with 2% probability;
    // the commitment object aborts their transactions after the servers'
    // pending-write-lock timeout, and the system keeps making progress.
    let faulty = SimConfig::local_cluster(Protocol::MvtilEarly)
        .clients(40)
        .keys(2_000)
        .duration_secs(3)
        .coordinator_failures(0.02);
    let metrics = Simulation::new(faulty).run();
    println!("== coordinator failures (2% of commits) ==");
    println!(
        "committed={}  aborted={}  aborts decided by the commitment object={}  commit-rate={:.3}",
        metrics.committed,
        metrics.aborted,
        metrics.commitment_aborts,
        metrics.commit_rate()
    );
    assert!(metrics.commitment_aborts > 0);
    assert!(metrics.committed > 0);

    // Profiles differ: show the raw latency parameters for reference.
    let local = NetworkProfile::local_cluster();
    let cloud = NetworkProfile::public_cloud();
    println!(
        "\nprofiles: local ~{}us RTT / {} cores per server, cloud ~{}us RTT / {} core per server",
        2.0 * local.mean_latency_us,
        local.server_cores,
        2.0 * cloud.mean_latency_us,
        cloud.server_cores
    );
}
