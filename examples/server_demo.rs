//! End-to-end tour of the TCP serve path: a real server fronting a sharded
//! engine, a hand-driven wire-protocol transaction, the `RemoteEngine`
//! adapter feeding the MVSG serializability checker over the network, and an
//! open-loop load sweep across the saturation knee.
//!
//! ```bash
//! cargo run --release --example server_demo
//! ```

use mvtl::common::{EngineExt, Key, ProcessId};
use mvtl::server::wire::{Request, Response};
use mvtl::server::{
    run_open_loop, ArrivalProcess, Connection, DriverOptions, RemoteEngine, Server,
};
use mvtl::verify::{check_serializable, replay};
use mvtl::workload::WorkloadSpec;
use mvtl_common::ops::{Op, Workload};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Serve any registry spec over TCP. serve_-prefixed params configure
    //    the server itself; the rest builds the engine as usual.
    let server = Server::spawn(
        "sharded?shards=4&inner=mvtil-early&serve_max_frame=65536",
        "127.0.0.1:0",
    )?;
    println!("serving {} on {}", server.engine_spec(), server.addr());

    // 2. Talk the wire protocol directly: one pipelining connection, one
    //    cross-shard transaction. The hello frame names the engine.
    let mut conn = Connection::connect(server.addr())?;
    println!("hello: engine `{}`", conn.engine_name());
    conn.request(&Request::Begin {
        txn: 1,
        process: ProcessId(1),
        pinned: None,
    })?;
    conn.request(&Request::Write {
        txn: 1,
        key: Key(1),
        value: 10,
    })?;
    conn.request(&Request::Write {
        txn: 1,
        key: Key(2),
        value: 20,
    })?;
    match conn.request(&Request::Commit { txn: 1 })? {
        Response::Committed(info) => {
            println!(
                "committed at {:?} ({} writes)",
                info.commit_ts,
                info.writes.len()
            );
        }
        other => panic!("commit failed: {other:?}"),
    }

    // 3. RemoteEngine implements the same `Engine` trait as every in-process
    //    engine, so the verifier's replay harness works over TCP unchanged.
    let remote = RemoteEngine::connect(server.addr())?;
    let mut workload = Workload::new();
    workload
        .push(0, Op::Write(Key(1), 5))
        .push(0, Op::Commit)
        .push(1, Op::Read(Key(1)))
        .push(1, Op::Write(Key(2), 7))
        .push(1, Op::Commit);
    let report = replay(&remote, &workload, |v| v);
    check_serializable(&report.history)?;
    println!(
        "replayed {} transactions over TCP: {} committed, history serializable",
        report.outcomes.len(),
        report.commits()
    );

    // ...including the plain RAII guard, for one-off reads.
    let mut tx = remote.begin(ProcessId(9));
    println!("key 1 reads back {:?}", tx.read(Key(1))?);
    tx.commit()?;

    // 4. Open-loop load generation: offered load is an *input*. Arrivals are
    //    scheduled by a seeded Poisson process and latency is measured from
    //    the scheduled arrival instant, so overload shows up as queueing
    //    delay in the tail, not as silently throttled clients.
    for offered_tps in [2_000.0, 20_000.0] {
        let metrics = run_open_loop(
            server.addr(),
            &DriverOptions {
                connections: 2,
                offered_tps,
                duration: Duration::from_millis(250),
                spec: WorkloadSpec::new(4, 0.5, 128),
                seed: 42,
                arrivals: ArrivalProcess::Poisson,
                queue_cap: 256,
            },
        )?;
        println!(
            "offered {:>6.0} tps: achieved {:>6.0} tps, committed {}, shed {}, \
             p50 {} µs, p99 {} µs",
            offered_tps,
            metrics.achieved_tps(),
            metrics.committed,
            metrics.shed,
            metrics.histogram.p50(),
            metrics.histogram.p99(),
        );
    }

    Ok(())
}
