//! A contended bank-transfer workload run against three different engines
//! (MVTIL, MVTO+, 2PL), checking the balance invariant and comparing commit
//! rates — the §8 comparison in miniature, using the real threaded engines.
//!
//! ```bash
//! cargo run --release --example bank_transfer
//! ```

use mvtl::baselines::{MvtoStore, TwoPhaseLockingStore};
use mvtl::clock::GlobalClock;
use mvtl::common::{Key, ProcessId, TransactionalKV, TxError};
use mvtl::core::policy::MvtilPolicy;
use mvtl::core::{MvtlConfig, MvtlStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const ACCOUNTS: u64 = 32;
const INITIAL_BALANCE: u64 = 1_000;
const THREADS: usize = 4;
const TRANSFERS_PER_THREAD: usize = 400;

fn run_workload<S: TransactionalKV<u64> + Sync>(store: &S) -> (u64, u64, u64) {
    // Seed the accounts.
    let mut tx = store.begin(ProcessId(0));
    for account in 0..ACCOUNTS {
        store
            .write(&mut tx, Key(account), INITIAL_BALANCE)
            .expect("seeding must not conflict");
    }
    store.commit(tx).expect("seeding commit");

    let commits = AtomicU64::new(0);
    let aborts = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let commits = &commits;
            let aborts = &aborts;
            scope.spawn(move || {
                let process = ProcessId(worker as u32 + 1);
                for i in 0..TRANSFERS_PER_THREAD {
                    let from = Key(((worker * 7 + i * 3) as u64) % ACCOUNTS);
                    let to = Key(((worker * 11 + i * 5 + 1) as u64) % ACCOUNTS);
                    if from == to {
                        continue;
                    }
                    let mut tx = store.begin(process);
                    let attempt = (|| -> Result<(), TxError> {
                        let a = store.read(&mut tx, from)?.unwrap_or(0);
                        let b = store.read(&mut tx, to)?.unwrap_or(0);
                        if a >= 10 {
                            store.write(&mut tx, from, a - 10)?;
                            store.write(&mut tx, to, b + 10)?;
                        }
                        Ok(())
                    })();
                    match attempt {
                        Ok(()) => match store.commit(tx) {
                            Ok(_) => {
                                commits.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                aborts.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            store.abort(tx);
                            aborts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Audit the final state.
    let mut tx = store.begin(ProcessId(99));
    let mut total = 0;
    for account in 0..ACCOUNTS {
        total += store.read(&mut tx, Key(account)).unwrap().unwrap_or(0);
    }
    store.commit(tx).unwrap();
    (total, commits.into_inner(), aborts.into_inner())
}

fn report(name: &str, total: u64, commits: u64, aborts: u64) {
    assert_eq!(
        total,
        ACCOUNTS * INITIAL_BALANCE,
        "{name}: isolation violated, money appeared or vanished"
    );
    let rate = commits as f64 / (commits + aborts).max(1) as f64;
    println!("{name:<12} commits={commits:<6} aborts={aborts:<6} commit-rate={rate:.3}  (balance preserved)");
}

fn main() {
    println!(
        "transferring money between {ACCOUNTS} accounts from {THREADS} threads ({TRANSFERS_PER_THREAD} transfers each)\n"
    );

    let mvtil: MvtlStore<u64, _> = MvtlStore::new(
        MvtilPolicy::early(500_000),
        Arc::new(GlobalClock::new()),
        MvtlConfig::default(),
    );
    let (total, commits, aborts) = run_workload(&mvtil);
    report("MVTIL-early", total, commits, aborts);

    let mvto: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
    let (total, commits, aborts) = run_workload(&mvto);
    report("MVTO+", total, commits, aborts);

    let tpl: TwoPhaseLockingStore<u64> =
        TwoPhaseLockingStore::new(Arc::new(GlobalClock::new()), Duration::from_millis(5));
    let (total, commits, aborts) = run_workload(&tpl);
    report("2PL", total, commits, aborts);
}
