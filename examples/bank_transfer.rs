//! A contended bank-transfer workload run against every engine the registry
//! knows, checking the balance invariant and comparing how hard each engine
//! has to retry under contention — the §8 comparison in miniature, using the
//! real threaded engines.
//!
//! The whole comparison is one loop over `mvtl::registry::all_specs()`: each
//! engine is built from its string spec, driven through `dyn Engine`, and the
//! per-transfer retry loop (`EngineExt::run`) records how many attempts each
//! transfer needed.
//!
//! ```bash
//! cargo run --release --example bank_transfer
//! ```

use mvtl::common::{Engine, EngineExt, Key, ProcessId, RetryOptions};
use std::sync::atomic::{AtomicU64, Ordering};

const ACCOUNTS: u64 = 32;
const INITIAL_BALANCE: u64 = 1_000;
const THREADS: usize = 4;
const TRANSFERS_PER_THREAD: usize = 400;

/// Runs the transfer storm; returns (final total, transfers, attempts,
/// transfers that exhausted the retry budget).
fn run_workload(engine: &dyn Engine<u64>) -> (u64, u64, u64, u64) {
    // Seed the accounts.
    let mut tx = engine.begin(ProcessId(0));
    for account in 0..ACCOUNTS {
        tx.write(Key(account), INITIAL_BALANCE)
            .expect("seeding must not conflict");
    }
    tx.commit().expect("seeding commit");

    let transfers = AtomicU64::new(0);
    let attempts = AtomicU64::new(0);
    let exhausted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let transfers = &transfers;
            let attempts = &attempts;
            let exhausted = &exhausted;
            scope.spawn(move || {
                let process = ProcessId(worker as u32 + 1);
                let options = RetryOptions::default().with_seed(worker as u64);
                for i in 0..TRANSFERS_PER_THREAD {
                    let from = Key(((worker * 7 + i * 3) as u64) % ACCOUNTS);
                    let to = Key(((worker * 11 + i * 5 + 1) as u64) % ACCOUNTS);
                    if from == to {
                        continue;
                    }
                    // The retry loop re-runs aborted attempts with seeded
                    // backoff; failed attempts abort via the RAII guard.
                    match engine.run(process, &options, |tx| {
                        let a = tx.read(from)?.unwrap_or(0);
                        let b = tx.read(to)?.unwrap_or(0);
                        if a >= 10 {
                            tx.write(from, a - 10)?;
                            tx.write(to, b + 10)?;
                        }
                        Ok(())
                    }) {
                        Ok(report) => {
                            transfers.fetch_add(1, Ordering::Relaxed);
                            attempts.fetch_add(u64::from(report.attempts), Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Transfer gave up after burning the full budget;
                            // count those attempts too so avg-attempts is not
                            // skewed in favor of engines that give up a lot.
                            exhausted.fetch_add(1, Ordering::Relaxed);
                            attempts.fetch_add(u64::from(options.max_attempts), Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Audit the final state.
    let mut tx = engine.begin(ProcessId(99));
    let mut total = 0;
    for account in 0..ACCOUNTS {
        total += tx.read(Key(account)).unwrap().unwrap_or(0);
    }
    tx.commit().unwrap();
    (
        total,
        transfers.into_inner(),
        attempts.into_inner(),
        exhausted.into_inner(),
    )
}

fn report(name: &str, total: u64, transfers: u64, attempts: u64, exhausted: u64) {
    assert_eq!(
        total,
        ACCOUNTS * INITIAL_BALANCE,
        "{name}: isolation violated, money appeared or vanished"
    );
    let avg_attempts = attempts as f64 / (transfers + exhausted).max(1) as f64;
    println!(
        "{name:<20} transfers={transfers:<6} gave-up={exhausted:<4} avg-attempts={avg_attempts:.2}  (balance preserved)"
    );
}

fn main() {
    println!(
        "transferring money between {ACCOUNTS} accounts from {THREADS} threads ({TRANSFERS_PER_THREAD} transfers each)\n"
    );

    for spec in mvtl::registry::all_specs() {
        let engine = mvtl::registry::build(spec).expect("registry spec must build");
        let (total, transfers, attempts, exhausted) = run_workload(engine.as_ref());
        report(engine.name(), total, transfers, attempts, exhausted);
    }
}
