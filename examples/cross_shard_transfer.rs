//! Bank transfers between accounts that live on **different shards** of the
//! partitioned `mvtl-shard` engine, under real concurrency.
//!
//! Every transfer is a cross-shard transaction, so each commit runs the
//! paper's §7 protocol for real: both shards freeze the interval of
//! timestamps the transfer may commit at, the coordinator intersects them
//! and commits at a common timestamp — or aborts (and the `EngineExt::run`
//! retry loop tries again) when the intersection is empty. Money must be
//! conserved throughout, which would break if the two halves of a transfer
//! ever committed at different timestamps.
//!
//! ```bash
//! cargo run --release --example cross_shard_transfer
//! ```

use mvtl::clock::GlobalClock;
use mvtl::common::{Engine, EngineExt, Key, ProcessId, RetryOptions};
use mvtl::core::policy::MvtilPolicy;
use mvtl::core::MvtlConfig;
use mvtl::shard::{IntersectionPick, ShardedStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 8;
const ACCOUNTS_PER_SHARD: usize = 8;
const INITIAL_BALANCE: u64 = 1_000;
const THREADS: usize = 4;
const TRANSFERS_PER_THREAD: usize = 300;

fn main() {
    let store: ShardedStore<u64> = ShardedStore::with_policy(
        SHARDS,
        Arc::new(GlobalClock::new()),
        MvtlConfig::default(),
        IntersectionPick::Min,
        |_shard| MvtilPolicy::early(5_000),
    );
    let engine: &dyn Engine<u64> = &store;

    // Pick accounts pinned to known shards, so we can guarantee transfers
    // cross shard boundaries.
    let mut accounts: Vec<Key> = Vec::new();
    let mut cursor = 0;
    for shard in 0..SHARDS {
        for _ in 0..ACCOUNTS_PER_SHARD {
            let key = store.key_on_shard(shard, cursor);
            cursor = key.0 + 1;
            accounts.push(key);
        }
    }

    // Seed all accounts in one transaction — itself a commit spanning all
    // eight shards.
    let mut tx = engine.begin(ProcessId(0));
    for &account in &accounts {
        tx.write(account, INITIAL_BALANCE).unwrap();
    }
    let info = tx.commit().expect("seeding commit");
    println!(
        "seeded {} accounts across {SHARDS} shards in one transaction (commit ts {:?})",
        accounts.len(),
        info.commit_ts.unwrap()
    );

    let transfers = AtomicU64::new(0);
    let cross_shard = AtomicU64::new(0);
    let attempts = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let transfers = &transfers;
            let cross_shard = &cross_shard;
            let attempts = &attempts;
            let accounts = &accounts;
            let store = &store;
            scope.spawn(move || {
                let process = ProcessId(worker as u32 + 1);
                let options = RetryOptions::default().with_seed(worker as u64);
                for i in 0..TRANSFERS_PER_THREAD {
                    // A deterministic pattern that always crosses shards:
                    // `from` and `to` sit ACCOUNTS_PER_SHARD apart, i.e. on
                    // neighbouring shards.
                    let from = accounts[(worker * 13 + i * 7) % accounts.len()];
                    let to = accounts[(worker * 13 + i * 7 + ACCOUNTS_PER_SHARD) % accounts.len()];
                    if store.shard_of(from) != store.shard_of(to) {
                        cross_shard.fetch_add(1, Ordering::Relaxed);
                    }
                    let engine: &dyn Engine<u64> = store;
                    match engine.run(process, &options, |tx| {
                        let a = tx.read(from)?.unwrap_or(0);
                        let b = tx.read(to)?.unwrap_or(0);
                        if a >= 10 {
                            tx.write(from, a - 10)?;
                            tx.write(to, b + 10)?;
                        }
                        Ok(())
                    }) {
                        Ok(report) => {
                            transfers.fetch_add(1, Ordering::Relaxed);
                            attempts.fetch_add(u64::from(report.attempts), Ordering::Relaxed);
                        }
                        Err(_) => {
                            attempts.fetch_add(u64::from(options.max_attempts), Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Audit: the total balance must be exactly conserved.
    let mut tx = engine.begin(ProcessId(99));
    let mut total = 0;
    for &account in &accounts {
        total += tx.read(account).unwrap().unwrap_or(0);
    }
    tx.commit().unwrap();

    let expected = accounts.len() as u64 * INITIAL_BALANCE;
    assert_eq!(
        total, expected,
        "isolation violated: money appeared or vanished across shards"
    );
    let done = transfers.load(Ordering::Relaxed);
    println!(
        "{done} transfers committed ({} cross-shard), avg attempts {:.2}",
        cross_shard.load(Ordering::Relaxed),
        attempts.load(Ordering::Relaxed) as f64 / done.max(1) as f64
    );
    println!("total balance conserved: {total} == {expected} ✓");
}
