//! Quick start: build an engine from a registry string spec, run a few
//! transactions through the RAII `Transaction` guard and the `run` retry loop.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use mvtl::common::{EngineExt, Key, ProcessId, RetryOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any engine in the workspace is one string away: MVTIL-early (the variant
    // evaluated in the paper's §8) with interval width Δ = 1000, storing
    // string values. Try "mvto+", "2pl?timeout_ms=10", "mvtl-ghostbuster", ...
    let engine = mvtl::registry::build_for::<String>("mvtil-early?delta=1000")?;
    println!("engine: {}", engine.name());

    // Transaction 1: initialize two keys through the RAII guard.
    let mut tx = engine.begin(ProcessId(0));
    tx.write(Key::from_name("user:1"), "alice".to_string())?;
    tx.write(Key::from_name("user:2"), "bob".to_string())?;
    let info = tx.commit()?;
    println!(
        "initialized {} keys at timestamp {}",
        info.writes.len(),
        info.commit_ts
            .expect("multiversion engines report a commit timestamp"),
    );

    // Transaction 2: a read-modify-write through the retry loop. `run` retries
    // aborted attempts with seeded backoff and reports the attempt count.
    let report = engine.run(ProcessId(1), &RetryOptions::default(), |tx| {
        let current = tx.read(Key::from_name("user:1"))?;
        println!("user:1 is currently {current:?}");
        tx.write(Key::from_name("user:1"), "alice v2".to_string())?;
        Ok(())
    })?;
    println!(
        "read-modify-write committed after {} attempt(s)",
        report.attempts
    );

    // Transaction 3: a read-only transaction sees the latest committed state.
    let mut tx = engine.begin(ProcessId(2));
    let user1 = tx.read(Key::from_name("user:1"))?;
    let user2 = tx.read(Key::from_name("user:2"))?;
    tx.commit()?;
    println!("final state: user:1 = {user1:?}, user:2 = {user2:?}");
    assert_eq!(user1.as_deref(), Some("alice v2"));
    assert_eq!(user2.as_deref(), Some("bob"));

    // A transaction dropped without commit aborts automatically (RAII): the
    // write below never becomes visible and its locks are released.
    let mut tx = engine.begin(ProcessId(3));
    tx.write(Key::from_name("user:1"), "eve".to_string())?;
    drop(tx);
    let mut tx = engine.begin(ProcessId(4));
    assert_eq!(
        tx.read(Key::from_name("user:1"))?.as_deref(),
        Some("alice v2")
    );
    tx.commit()?;
    println!("dropped transaction left no trace");
    Ok(())
}
