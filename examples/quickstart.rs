//! Quick start: create an MVTL store, run a few transactions, inspect state.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use mvtl::clock::GlobalClock;
use mvtl::common::{Key, ProcessId, TransactionalKV, TxError};
use mvtl::core::policy::MvtilPolicy;
use mvtl::core::{MvtlConfig, MvtlStore};
use std::sync::Arc;

fn main() -> Result<(), TxError> {
    // An MVTIL-early store (the variant evaluated in the paper's §8), storing
    // string values, driven by a shared monotonic clock.
    let store: MvtlStore<String, _> = MvtlStore::new(
        MvtilPolicy::early(1_000),
        Arc::new(GlobalClock::new()),
        MvtlConfig::default(),
    );

    // Transaction 1: initialize two keys.
    let mut tx = store.begin(ProcessId(0));
    store.write(&mut tx, Key::from_name("user:1"), "alice".to_string())?;
    store.write(&mut tx, Key::from_name("user:2"), "bob".to_string())?;
    let info = store.commit(tx)?;
    println!(
        "initialized {} keys at timestamp {}",
        info.writes.len(),
        info.commit_ts
            .expect("multiversion engines report a commit timestamp"),
    );

    // Transaction 2: read-modify-write.
    let mut tx = store.begin(ProcessId(1));
    let current = store.read(&mut tx, Key::from_name("user:1"))?;
    println!("user:1 is currently {current:?}");
    store.write(&mut tx, Key::from_name("user:1"), "alice v2".to_string())?;
    store.commit(tx)?;

    // Transaction 3: a read-only transaction sees the latest committed state.
    let mut tx = store.begin(ProcessId(2));
    let user1 = store.read(&mut tx, Key::from_name("user:1"))?;
    let user2 = store.read(&mut tx, Key::from_name("user:2"))?;
    store.commit(tx)?;
    println!("final state: user:1 = {user1:?}, user:2 = {user2:?}");
    assert_eq!(user1.as_deref(), Some("alice v2"));
    assert_eq!(user2.as_deref(), Some("bob"));

    // The store keeps multiple versions; the state-size counters show it.
    let stats = store.stats();
    println!(
        "store now holds {} versions and {} lock intervals across {} keys",
        stats.versions, stats.lock_entries, stats.keys
    );
    Ok(())
}
