//! Cross-crate checks of the paper's headline claims, driven through the
//! facade: the schedules of §5 behave differently under the different engines,
//! exactly as the paper states.

use mvtl::baselines::MvtoStore;
use mvtl::clock::GlobalClock;
use mvtl::core::policy::{EpsilonPolicy, GhostbusterPolicy, PrefPolicy, ToPolicy};
use mvtl::core::{MvtlConfig, MvtlStore};
use mvtl::verify::schedules::{
    ghost_abort_schedule, serial_abort_schedule, theorem2_workload, GHOST_ABORT_VICTIM,
    SERIAL_ABORT_VICTIM, THEOREM2_VICTIM,
};
use mvtl::verify::{check_serializable, replay};
use std::sync::Arc;
use std::time::Duration;

fn mvtl_store<P: mvtl::core::policy::LockingPolicy>(policy: P) -> MvtlStore<u64, P> {
    MvtlStore::new(
        policy,
        Arc::new(GlobalClock::new()),
        MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(10)),
    )
}

#[test]
fn the_three_headline_schedules_match_the_paper() {
    // Serial aborts (§5.3): MVTO+ aborts, ε-clock does not.
    let schedule = serial_abort_schedule();
    let mvto: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
    assert!(!replay(&mvto, &schedule, |v| v).committed(SERIAL_ABORT_VICTIM));
    let eps = mvtl_store(EpsilonPolicy::new(4));
    assert!(replay(&eps, &schedule, |v| v).committed(SERIAL_ABORT_VICTIM));

    // Ghost aborts (§5.5): MVTL-TO aborts, Ghostbuster does not.
    let schedule = ghost_abort_schedule();
    let to = mvtl_store(ToPolicy::new());
    assert!(!replay(&to, &schedule, |v| v).committed(GHOST_ABORT_VICTIM));
    let gb = mvtl_store(GhostbusterPolicy::new());
    assert!(replay(&gb, &schedule, |v| v).committed(GHOST_ABORT_VICTIM));

    // Theorem 2: MVTO+ aborts the victim, MVTL-Pref commits it.
    let schedule = theorem2_workload();
    let mvto: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
    assert!(!replay(&mvto, &schedule, |v| v).committed(THEOREM2_VICTIM));
    let pref = mvtl_store(PrefPolicy::with_offsets(vec![-28]));
    let report = replay(&pref, &schedule, |v| v);
    assert!(report.committed(THEOREM2_VICTIM));
    check_serializable(&report.history).unwrap();
}
