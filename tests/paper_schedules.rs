//! Cross-crate checks of the paper's headline claims, driven through the
//! facade: the schedules of §5 behave differently under the different engines,
//! exactly as the paper states. Every engine is built from a registry string
//! spec and replayed through the `dyn Engine` layer.

use mvtl::common::Engine;
use mvtl::verify::schedules::{
    ghost_abort_schedule, serial_abort_schedule, theorem2_workload, GHOST_ABORT_VICTIM,
    SERIAL_ABORT_VICTIM, THEOREM2_VICTIM,
};
use mvtl::verify::{check_serializable, replay};

fn engine(spec: &str) -> Box<dyn Engine<u64>> {
    mvtl::registry::build(spec).unwrap_or_else(|e| panic!("spec {spec:?} must build: {e}"))
}

#[test]
fn the_three_headline_schedules_match_the_paper() {
    // Serial aborts (§5.3): MVTO+ aborts, ε-clock does not.
    let schedule = serial_abort_schedule();
    let mvto = engine("mvto+");
    assert!(!replay(mvto.as_ref(), &schedule, |v| v).committed(SERIAL_ABORT_VICTIM));
    let eps = engine("mvtl-epsilon-clock?eps=4&timeout_ms=10");
    assert!(replay(eps.as_ref(), &schedule, |v| v).committed(SERIAL_ABORT_VICTIM));

    // Ghost aborts (§5.5): MVTL-TO aborts, Ghostbuster does not.
    let schedule = ghost_abort_schedule();
    let to = engine("mvtl-to?timeout_ms=10");
    assert!(!replay(to.as_ref(), &schedule, |v| v).committed(GHOST_ABORT_VICTIM));
    let gb = engine("mvtl-ghostbuster?timeout_ms=10");
    assert!(replay(gb.as_ref(), &schedule, |v| v).committed(GHOST_ABORT_VICTIM));

    // Theorem 2: MVTO+ aborts the victim, MVTL-Pref commits it.
    let schedule = theorem2_workload();
    let mvto = engine("mvto+");
    assert!(!replay(mvto.as_ref(), &schedule, |v| v).committed(THEOREM2_VICTIM));
    let pref = engine("mvtl-pref?offset=-28&timeout_ms=10");
    let report = replay(pref.as_ref(), &schedule, |v| v);
    assert!(report.committed(THEOREM2_VICTIM));
    check_serializable(&report.history).unwrap();
}
