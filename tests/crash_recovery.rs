//! Kill-and-recover integration tests for the durability subsystem: engines
//! built from `wal=` registry specs are killed (dropped, losing all in-memory
//! state) and rebuilt from their log, and the histories from before and after
//! the crash are checked through the MVSG verifier **as one serializable
//! history** — possible because recovery re-installs committed write sets at
//! their original commit timestamps and restarts the clock past them.

use mvtl::common::{CommitInfo, Engine, EngineExt, Key, ProcessId, TempDir, TxId};
use mvtl::verify::{check_serializable, History};
use std::collections::HashMap;

const KEYS: u64 = 16;

/// SplitMix64: a tiny deterministic stream so the workload needs no RNG crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `txns` seeded read-modify-write transactions sequentially, folding the
/// writes of every *committed* transaction into `expected` (the state a
/// correct recovery must reproduce) and returning their [`CommitInfo`]s.
fn run_workload(
    engine: &dyn Engine<u64>,
    seed: u64,
    txns: usize,
    tag: u64,
    expected: &mut HashMap<Key, u64>,
) -> Vec<CommitInfo> {
    let mut rng = seed;
    let mut infos = Vec::new();
    for i in 0..txns {
        let mut tx = engine.begin(ProcessId((i % 4) as u32));
        let mut writes = Vec::new();
        let body = (|| {
            for _ in 0..2 {
                tx.read(Key(splitmix(&mut rng) % KEYS))?;
            }
            for w in 0..2u64 {
                let key = Key(splitmix(&mut rng) % KEYS);
                let value = tag * 1_000_000 + (i as u64) * 10 + w;
                tx.write(key, value)?;
                writes.push((key, value));
            }
            Ok::<(), mvtl::common::TxError>(())
        })();
        if body.is_err() {
            continue; // the guard aborts on drop
        }
        if let Ok(info) = tx.commit() {
            for (key, value) in writes {
                expected.insert(key, value);
            }
            infos.push(info);
        }
    }
    infos
}

/// Shifts a commit's transaction id into a disjoint range, so the post-crash
/// run's ids (which restart with the rebuilt engine) cannot collide with
/// pre-crash ids in the combined history.
fn offset_ids(mut info: CommitInfo, offset: u64) -> CommitInfo {
    info.tx = TxId(info.tx.0 + offset);
    info
}

/// Asserts the engine's visible state matches `expected` exactly over the key
/// space (committed writes present, everything else absent).
fn assert_state_matches(engine: &dyn Engine<u64>, expected: &HashMap<Key, u64>) {
    let mut tx = engine.begin(ProcessId(63));
    for k in 0..KEYS {
        let key = Key(k);
        assert_eq!(
            tx.read(key).unwrap(),
            expected.get(&key).copied(),
            "key {k} diverged after recovery"
        );
    }
    tx.commit().unwrap();
}

#[test]
fn committed_state_survives_kill_and_recover_serializably() {
    let dir = TempDir::new("crash-recovery");
    let spec = format!("mvtil-early?wal={}&fsync=group", dir.path().display());
    let mut history = History::new();
    let mut expected = HashMap::new();

    let engine = mvtl::registry::build(&spec).expect("wal spec builds");
    for info in run_workload(engine.as_ref(), 42, 40, 1, &mut expected) {
        history.record(info);
    }
    // Leave an uncommitted transaction behind, then "crash".
    {
        let mut tx = engine.begin(ProcessId(9));
        tx.write(Key(0), 999_999_999).unwrap();
    }
    drop(engine); // every in-memory version is gone; only the log remains

    let engine = mvtl::registry::build(&spec).expect("recovery rebuild");
    // Committed state is back, the uncommitted write did not resurrect.
    assert_state_matches(engine.as_ref(), &expected);
    // Post-crash traffic serializes after the recovered state...
    for info in run_workload(engine.as_ref(), 43, 40, 2, &mut expected) {
        history.record(offset_ids(info, 1_000_000));
    }
    assert_state_matches(engine.as_ref(), &expected);
    // ...and the combined pre+post-crash history is one serializable history.
    check_serializable(&history).expect("combined history must be MVSG-serializable");
}

#[test]
fn recovery_chains_across_repeated_crashes() {
    let dir = TempDir::new("crash-recovery-chain");
    let spec = format!("mvtil-early?wal={}", dir.path().display());
    let mut history = History::new();
    let mut expected = HashMap::new();
    for round in 0..4u64 {
        let engine = mvtl::registry::build(&spec).expect("rebuild");
        assert_state_matches(engine.as_ref(), &expected);
        for info in run_workload(engine.as_ref(), 100 + round, 15, round + 1, &mut expected) {
            history.record(offset_ids(info, round * 1_000_000));
        }
    }
    check_serializable(&history).expect("history spanning three crashes must be serializable");
}

#[test]
fn cross_shard_recovery_composes_with_injected_participant_crashes() {
    let dir = TempDir::new("crash-recovery-sharded");
    let shared = format!(
        "sharded?shards=2&inner=mvtil-early&wal={}",
        dir.path().display()
    );
    // Pre-crash run: ~30% of prepares crash their participant, so a good
    // fraction of the cross-shard commits abort before reaching the log.
    let faulty_spec = format!("{shared}&fault=crash:0.3&fault_seed=7");
    let mut history = History::new();
    let mut expected = HashMap::new();

    let engine = mvtl::registry::build(&faulty_spec).expect("faulty wal spec builds");
    let committed = run_workload(engine.as_ref(), 7, 60, 1, &mut expected);
    assert!(
        !committed.is_empty(),
        "the crash schedule must let some transactions through"
    );
    for info in committed {
        history.record(info);
    }
    drop(engine); // kill the whole cluster

    // Recover without faults: exactly the committed transactions reappear —
    // crashed-prepare victims got their one (abort) decision, not a commit.
    let engine = mvtl::registry::build(&shared).expect("recovery rebuild");
    assert_state_matches(engine.as_ref(), &expected);
    for info in run_workload(engine.as_ref(), 8, 60, 2, &mut expected) {
        history.record(offset_ids(info, 1_000_000));
    }
    assert_state_matches(engine.as_ref(), &expected);
    check_serializable(&history).expect("cross-shard crash history must be serializable");
}

#[test]
fn torn_log_tails_recover_to_the_last_complete_record() {
    let dir = TempDir::new("crash-recovery-torn");
    let spec = format!("mvtil-early?wal={}", dir.path().display());

    let engine = mvtl::registry::build(&spec).unwrap();
    let mut tx = engine.begin(ProcessId(0));
    tx.write(Key(1), 11).unwrap();
    tx.commit().unwrap();
    let mut tx = engine.begin(ProcessId(0));
    tx.write(Key(2), 22).unwrap();
    tx.commit().unwrap();
    drop(engine);

    let segment = newest_segment(dir.path());

    // A crash mid-write leaves garbage after the last complete record:
    // recovery must stop at the last valid frame and keep everything before.
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&segment)
            .unwrap();
        file.write_all(&[0xAB; 13]).unwrap();
    }
    let engine = mvtl::registry::build(&spec).expect("torn tail must not fail recovery");
    let mut tx = engine.begin(ProcessId(1));
    assert_eq!(tx.read(Key(1)).unwrap(), Some(11));
    assert_eq!(tx.read(Key(2)).unwrap(), Some(22));
    tx.commit().unwrap();
    drop(engine); // the reopen above also truncated the garbage tail

    // A tear *inside* the final record: that record is discarded, every
    // record before it survives, and recovery still does not error.
    let valid_len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(valid_len - 5).unwrap();
    drop(file);
    let engine = mvtl::registry::build(&spec).expect("mid-record tear must not fail recovery");
    let mut tx = engine.begin(ProcessId(2));
    assert_eq!(
        tx.read(Key(1)).unwrap(),
        Some(11),
        "earlier record survives"
    );
    assert_eq!(tx.read(Key(2)).unwrap(), None, "torn record is discarded");
    tx.commit().unwrap();
}

/// The lexicographically last `wal-*.log` segment in `dir` (segment indices
/// are zero-padded, so name order is index order).
fn newest_segment(dir: &std::path::Path) -> std::path::PathBuf {
    let mut segments: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().is_some_and(|e| e == "log")).then_some(path)
        })
        .collect();
    segments.sort();
    segments.pop().expect("the log has at least one segment")
}
