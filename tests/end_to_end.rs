//! Integration tests spanning the whole workspace through the `mvtl` facade:
//! registry-built engines, serializability checking, the distributed simulator
//! and the figure harness working together.

use mvtl::common::{EngineExt, Key, ProcessId, TxError};
use mvtl::sim::{Protocol, SimConfig, Simulation};
use mvtl::verify::{check_serializable, replay_concurrent};
use mvtl::workload::{run_closed_loop, RunnerOptions, WorkloadSpec};
use std::time::Duration;

#[test]
fn facade_quickstart_roundtrip() -> Result<(), TxError> {
    let engine =
        mvtl::registry::build_for::<String>("mvtil-early?delta=1000").expect("registry spec");
    let mut tx = engine.begin(ProcessId(0));
    tx.write(Key::from_name("k"), "v".to_string())?;
    tx.commit()?;
    let mut tx = engine.begin(ProcessId(1));
    assert_eq!(tx.read(Key::from_name("k"))?, Some("v".to_string()));
    tx.commit()?;
    Ok(())
}

#[test]
fn closed_loop_runner_histories_are_serializable() {
    // Drive an MVTL engine and the MVTO+ baseline through the workload runner,
    // then independently re-execute randomized transactions through the
    // verifier's concurrent replay and check the MVSG.
    let engine = mvtl::registry::build("mvtl-ghostbuster?timeout_ms=5").expect("registry spec");
    let options = RunnerOptions {
        clients: 4,
        duration: Duration::from_millis(100),
        spec: WorkloadSpec::new(6, 0.4, 128),
        seed: 3,
    };
    let metrics = run_closed_loop(engine.as_ref(), &options, |v| v);
    assert!(metrics.committed > 0);

    let history = replay_concurrent(engine.as_ref(), 4, 50, |thread, iter, txn| {
        let key = Key(((thread * 31 + iter * 7) % 64) as u64);
        let other = Key(((thread * 13 + iter * 3) % 64) as u64);
        let v = txn.read(key)?.unwrap_or(0);
        txn.write(other, v + 1)?;
        Ok(())
    });
    check_serializable(&history).expect("facade-driven history must be serializable");

    let mvto = mvtl::registry::build("mvto+").expect("registry spec");
    let metrics = run_closed_loop(mvto.as_ref(), &options, |v| v);
    assert!(metrics.committed > 0);
}

#[test]
fn simulator_reproduces_the_headline_comparison() {
    // §8.4.1 in miniature: under a read-mostly contended workload, MVTIL's
    // commit rate is at least as good as MVTO+'s and its throughput is not
    // worse than both baselines by any large factor.
    let base = |protocol| {
        SimConfig::local_cluster(protocol)
            .clients(60)
            .keys(1_000)
            .write_fraction(0.25)
            .duration_secs(2)
            .seed(99)
    };
    let mvtil = Simulation::new(base(Protocol::MvtilEarly)).run();
    let mvto = Simulation::new(base(Protocol::MvtoPlus)).run();
    let tpl = Simulation::new(base(Protocol::TwoPhaseLocking)).run();

    assert!(mvtil.commit_rate() >= mvto.commit_rate() - 0.02);
    assert!(mvtil.committed > 0 && mvto.committed > 0 && tpl.committed > 0);
    assert!(
        mvtil.throughput_tps() >= 0.7 * mvto.throughput_tps(),
        "MVTIL {} vs MVTO+ {}",
        mvtil.throughput_tps(),
        mvto.throughput_tps()
    );
}

#[test]
fn figure_harness_produces_consistent_tables() {
    let table = mvtl::workload::figures::fig3_write_fraction(mvtl::workload::Scale::Smoke);
    // Read-only workloads: every protocol commits essentially everything
    // ("for read-only transactions, the choice of protocol has little impact").
    for row in table.rows.iter().filter(|r| r.x == 0.0) {
        assert!(
            row.commit_rate > 0.95,
            "{} at 0% writes has commit rate {}",
            row.protocol,
            row.commit_rate
        );
    }
    // The table renders with all three protocols present.
    let rendered = table.render();
    for name in ["MVTO+", "2PL", "MVTIL-early"] {
        assert!(rendered.contains(name), "missing {name} in:\n{rendered}");
    }
}
