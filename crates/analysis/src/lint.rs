//! `mvtl-lint`: a std-only source linter for the workspace's concurrency
//! rules. No parser dependency: a length-preserving scrubber blanks
//! comments, string contents and char literals, and the rules match against
//! the scrubbed text (so doc examples and message strings never trip them)
//! while site names/ranks are read back from the raw text at the same byte
//! offsets.
//!
//! Rules (rule ids in parentheses):
//!
//! * (`std-sync`) No `std::sync` `Mutex`/`RwLock`/`Condvar` outside `shims/`
//!   — all locking must route through the instrumented `parking_lot` shim so
//!   the `lock-order` feature sees every acquisition.
//! * (`unwrap`) No `.unwrap()` / `.expect(` in non-test code of
//!   `crates/server`, `crates/wal`, `crates/shard` — the serve/durability
//!   paths must fail through `Result`, not panics.
//! * (`sleep`) No `thread::sleep` outside test code and fault-injection code
//!   — ad-hoc sleeps hide races; waiting must go through condvars or the
//!   fault layer. Legitimate pacing sleeps are allowlisted.
//! * (`hot-path`) No growable-collection mutation — `.push(..)` /
//!   `.insert(..)` — in non-test code of files carrying a `lint: hot-path`
//!   marker comment. The hot path allocates through the arena and the
//!   open-addressed stripe maps; a stray `Vec`/`HashMap` grow re-introduces
//!   exactly the per-operation allocation the overhaul removed. The container
//!   modules themselves (arena, stripe map, timestamp set) are exempt: growth
//!   is their job.
//! * (`rank-table`) Every lock site declared with `::named(...)` /
//!   `::named_group(...)` in `crates/*/src` must appear in the canonical
//!   rank table in `ARCHITECTURE.md` (between the
//!   `<!-- lock-rank-table:begin/end -->` markers) with the same rank, and
//!   vice versa. Site ranks must be integer literals so the linter (and a
//!   reader) can resolve them without running the compiler.
//!
//! An allowlist file at `crates/analysis/lint-allow.txt` (lines of
//! `<rule> <path-substring> [note...]`) suppresses individual findings;
//! unused entries are reported so the list can only shrink.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id, e.g. `"std-sync"`.
    pub rule: &'static str,
    /// Path relative to the lint root, with forward slashes.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived the allowlist, sorted by path/line.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched nothing (stale — should be removed).
    pub unused_allow: Vec<String>,
}

struct AllowEntry {
    rule: String,
    path_substring: String,
    raw: String,
    used: bool,
}

/// Runs every rule over the tree rooted at `root` (a workspace checkout).
///
/// # Errors
///
/// Returns a message when the tree cannot be walked or a file read.
pub fn run(root: &Path) -> Result<LintReport, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();

    let mut allow = load_allowlist(root)?;
    let mut violations = Vec::new();
    // site name -> (rank, first declaration site)
    let mut code_sites: BTreeMap<String, (u64, String, usize)> = BTreeMap::new();

    for rel in &files {
        let raw = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {}: {e}", rel.display()))?;
        let rel_str = rel_display(rel);
        scan_file(&rel_str, &raw, &mut violations, &mut code_sites);
    }

    check_rank_table(root, &code_sites, &mut violations);

    violations.retain(|v| {
        let suppressed = allow
            .iter_mut()
            .find(|a| a.rule == v.rule && v.path.contains(&a.path_substring));
        match suppressed {
            Some(entry) => {
                entry.used = true;
                false
            }
            None => true,
        }
    });
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    Ok(LintReport {
        violations,
        unused_allow: allow
            .into_iter()
            .filter(|a| !a.used)
            .map(|a| a.raw)
            .collect(),
    })
}

/// Directory names that are never scanned: build output, VCS state, the
/// vendored shims (the one place raw `std::sync` is the point), and the
/// linter's own violation fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "fixtures", "node_modules"];

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("stripping {}: {e}", path.display()))?;
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

fn rel_display(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join("crates/analysis/lint-allow.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path_substring)) = (parts.next(), parts.next()) else {
            return Err(format!("malformed allowlist line: {line:?}"));
        };
        out.push(AllowEntry {
            rule: rule.to_string(),
            path_substring: path_substring.to_string(),
            raw: line.to_string(),
            used: false,
        });
    }
    Ok(out)
}

/// Whether the unwrap rule applies to this path (non-test source of the
/// serve/durability/cross-shard crates).
fn unwrap_scope(path: &str) -> bool {
    ["crates/server/src/", "crates/wal/src/", "crates/shard/src/"]
        .iter()
        .any(|p| path.starts_with(p))
}

/// Whether the sleep rule exempts this path wholesale: test trees and the
/// fault-injection layer (whose whole job is injected delays/stalls).
fn sleep_exempt(path: &str) -> bool {
    path.split('/').any(|c| c == "tests") || path.contains("faults")
}

/// Whether `::named(...)` declarations in this path feed the rank table:
/// only non-test library source of workspace crates.
fn rank_scope(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/")
}

/// Whether the hot-path rule exempts this path wholesale: test trees, plus
/// the container modules whose whole job is growable-collection mutation —
/// the version arena, the open-addressed stripe maps, and the sorted
/// timestamp set the lock tables are built on.
fn hot_path_exempt(path: &str) -> bool {
    const CONTAINERS: &[&str] = &[
        "crates/storage/src/arena.rs",
        "crates/storage/src/smap.rs",
        "crates/storage/src/stripe.rs",
        "crates/common/src/tsset.rs",
    ];
    path.split('/').any(|c| c == "tests") || CONTAINERS.contains(&path)
}

fn scan_file(
    path: &str,
    raw: &str,
    violations: &mut Vec<Violation>,
    code_sites: &mut BTreeMap<String, (u64, String, usize)>,
) {
    let scrubbed = scrub(raw);
    let test_lines = mark_test_lines(&scrubbed);
    let in_tests_dir = path.split('/').any(|c| c == "tests");

    // Patterns are assembled so this file does not match itself.
    let std_sync_pat = concat!("std", "::sync::");
    let unwrap_pat = concat!(".unw", "rap()");
    let expect_pat = concat!(".exp", "ect(");
    let sleep_pat = concat!("thread", "::sleep");
    let hot_marker = concat!("// lint: hot", "-path");
    let push_pat = concat!(".pu", "sh(");
    let insert_pat = concat!(".ins", "ert(");

    // The marker is a comment, which `scrub` blanks — look for it in the raw
    // text instead.
    let hot_path = raw.contains(hot_marker) && !hot_path_exempt(path);

    for (idx, line) in scrubbed.lines().enumerate() {
        let lineno = idx + 1;
        let is_test = test_lines.get(idx).copied().unwrap_or(false);

        for (pos, _) in line.match_indices(std_sync_pat) {
            let after = &line[pos + std_sync_pat.len()..];
            if let Some(primitive) = std_sync_primitive(after) {
                violations.push(Violation {
                    rule: "std-sync",
                    path: path.to_string(),
                    line: lineno,
                    message: format!(
                        "`std::sync::{primitive}` outside shims/; use the \
                         instrumented `parking_lot` shim instead"
                    ),
                });
            }
        }

        if unwrap_scope(path) && !is_test && !in_tests_dir {
            if line.contains(unwrap_pat) {
                violations.push(Violation {
                    rule: "unwrap",
                    path: path.to_string(),
                    line: lineno,
                    message: "`.unwrap()` in non-test code; return an error instead".to_string(),
                });
            }
            if line.contains(expect_pat) {
                violations.push(Violation {
                    rule: "unwrap",
                    path: path.to_string(),
                    line: lineno,
                    message: "`.expect(..)` in non-test code; return an error instead".to_string(),
                });
            }
        }

        if hot_path && !is_test {
            for pat in [push_pat, insert_pat] {
                if line.contains(pat) {
                    violations.push(Violation {
                        rule: "hot-path",
                        path: path.to_string(),
                        line: lineno,
                        message: format!(
                            "`{pat}..)` in a hot-path file; grow through the arena / \
                             stripe-map / timestamp-set containers instead"
                        ),
                    });
                }
            }
        }

        if !sleep_exempt(path) && !is_test && line.contains(sleep_pat) {
            violations.push(Violation {
                rule: "sleep",
                path: path.to_string(),
                line: lineno,
                message: "`thread::sleep` outside tests/faults; wait on a condvar or \
                          go through the fault layer"
                    .to_string(),
            });
        }
    }

    if rank_scope(path) {
        collect_named_sites(path, raw, &scrubbed, &test_lines, violations, code_sites);
    }
}

/// If `after` (text following `std::sync::`) names one of the banned
/// primitives — directly or inside a `{...}` import group — returns it.
fn std_sync_primitive(after: &str) -> Option<&'static str> {
    const BANNED: [&str; 3] = ["Mutex", "RwLock", "Condvar"];
    if let Some(rest) = after.strip_prefix('{') {
        let group = rest.split('}').next().unwrap_or(rest);
        for word in group.split([',', ' ']) {
            let word = word.trim();
            if let Some(b) = BANNED.iter().find(|b| **b == word) {
                return Some(b);
            }
        }
        return None;
    }
    let ident: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    BANNED.iter().find(|b| **b == ident).copied()
}

/// Finds `::named("site", rank, ...)` / `::named_group(...)` declarations,
/// reading the site name and rank from the raw text (the scrubbed text has
/// string contents blanked). Ranks must be integer literals.
fn collect_named_sites(
    path: &str,
    raw: &str,
    scrubbed: &str,
    test_lines: &[bool],
    violations: &mut Vec<Violation>,
    code_sites: &mut BTreeMap<String, (u64, String, usize)>,
) {
    let named_pat = concat!("::na", "med(");
    let group_pat = concat!("::na", "med_group(");
    let mut offsets: Vec<usize> = scrubbed
        .match_indices(group_pat)
        .map(|(pos, _)| pos + group_pat.len())
        .collect();
    // `named_group(` also contains no `named(` match (different suffix), so
    // the two passes never double-count one call.
    offsets.extend(
        scrubbed
            .match_indices(named_pat)
            .map(|(pos, _)| pos + named_pat.len()),
    );
    offsets.sort_unstable();

    for offset in offsets {
        let lineno = scrubbed[..offset].matches('\n').count() + 1;
        if test_lines.get(lineno - 1).copied().unwrap_or(false) {
            continue;
        }
        match parse_site_args(&raw[offset..]) {
            Some((name, rank)) => match code_sites.get(&name) {
                Some(&(existing, _, _)) if existing != rank => {
                    violations.push(Violation {
                        rule: "rank-table",
                        path: path.to_string(),
                        line: lineno,
                        message: format!(
                            "site `{name}` declared with rank {rank} here but rank \
                             {existing} elsewhere"
                        ),
                    });
                }
                Some(_) => {}
                None => {
                    code_sites.insert(name, (rank, path.to_string(), lineno));
                }
            },
            None => violations.push(Violation {
                rule: "rank-table",
                path: path.to_string(),
                line: lineno,
                message: "could not parse site declaration: expected \
                          (\"site.name\", <integer literal rank>, ...)"
                    .to_string(),
            }),
        }
    }
}

/// Parses `"name" , 123` from the raw text following a `::named(`.
fn parse_site_args(raw: &str) -> Option<(String, u64)> {
    let mut chars = raw.char_indices().peekable();
    // opening quote
    loop {
        let (_, c) = chars.next()?;
        if c == '"' {
            break;
        }
        if !c.is_whitespace() {
            return None;
        }
    }
    let mut name = String::new();
    loop {
        let (_, c) = chars.next()?;
        if c == '"' {
            break;
        }
        name.push(c);
    }
    // comma
    loop {
        let (_, c) = chars.next()?;
        if c == ',' {
            break;
        }
        if !c.is_whitespace() {
            return None;
        }
    }
    // integer literal
    let mut digits = String::new();
    for (_, c) in chars {
        if c.is_ascii_digit() {
            digits.push(c);
        } else if c == '_' || (c.is_whitespace() && digits.is_empty()) {
            continue;
        } else {
            break;
        }
    }
    if name.is_empty() || digits.is_empty() {
        return None;
    }
    Some((name, digits.parse().ok()?))
}

const TABLE_BEGIN: &str = "<!-- lock-rank-table:begin -->";
const TABLE_END: &str = "<!-- lock-rank-table:end -->";

/// Cross-checks the declared sites against the canonical rank table in
/// `ARCHITECTURE.md`, in both directions.
fn check_rank_table(
    root: &Path,
    code_sites: &BTreeMap<String, (u64, String, usize)>,
    violations: &mut Vec<Violation>,
) {
    let arch_path = "ARCHITECTURE.md";
    let text = std::fs::read_to_string(root.join(arch_path)).unwrap_or_default();
    let mut table: BTreeMap<String, (u64, usize)> = BTreeMap::new();
    let mut inside = false;
    let mut saw_markers = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim() == TABLE_BEGIN {
            inside = true;
            saw_markers = true;
            continue;
        }
        if line.trim() == TABLE_END {
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        if let Some((site, rank)) = parse_table_row(line) {
            table.insert(site, (rank, idx + 1));
        }
    }

    if !saw_markers {
        if !code_sites.is_empty() {
            violations.push(Violation {
                rule: "rank-table",
                path: arch_path.to_string(),
                line: 0,
                message: format!(
                    "no `{TABLE_BEGIN}` .. `{TABLE_END}` block found, but the source \
                     declares {} named lock sites",
                    code_sites.len()
                ),
            });
        }
        return;
    }

    for (name, &(rank, ref path, line)) in code_sites {
        match table.get(name) {
            None => violations.push(Violation {
                rule: "rank-table",
                path: path.clone(),
                line,
                message: format!(
                    "site `{name}` (rank {rank}) is not in the ARCHITECTURE.md rank table"
                ),
            }),
            Some(&(table_rank, table_line)) if table_rank != rank => {
                violations.push(Violation {
                    rule: "rank-table",
                    path: path.clone(),
                    line,
                    message: format!(
                        "site `{name}` declared with rank {rank} but the rank table \
                         ({arch_path}:{table_line}) says {table_rank}"
                    ),
                });
            }
            Some(_) => {}
        }
    }
    for (name, &(rank, line)) in &table {
        if !code_sites.contains_key(name) {
            violations.push(Violation {
                rule: "rank-table",
                path: arch_path.to_string(),
                line,
                message: format!(
                    "rank table lists site `{name}` (rank {rank}) but no \
                     `::named(\"{name}\", ...)` declaration exists in crates/*/src"
                ),
            });
        }
    }
}

/// Parses one markdown table row into `(site, rank)`: the first
/// backtick-quoted cell is the site, the first all-digits cell the rank.
fn parse_table_row(line: &str) -> Option<(String, u64)> {
    let trimmed = line.trim();
    if !trimmed.starts_with('|') {
        return None;
    }
    let mut site = None;
    let mut rank = None;
    for cell in trimmed.split('|') {
        let cell = cell.trim();
        if site.is_none() && cell.len() > 2 && cell.starts_with('`') && cell.ends_with('`') {
            site = Some(cell[1..cell.len() - 1].to_string());
        }
        if rank.is_none() && !cell.is_empty() && cell.chars().all(|c| c.is_ascii_digit()) {
            rank = Some(cell.parse().ok()?);
        }
    }
    Some((site?, rank?))
}

/// Blanks comments, string contents and char literals with spaces,
/// preserving byte offsets and line structure exactly.
fn scrub(raw: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let bytes = raw.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    // Raw string? Look back over #s to an `r` not preceded
                    // by an identifier character.
                    let mut j = i;
                    let mut hashes = 0u32;
                    while j > 0 && bytes[j - 1] == b'#' {
                        j -= 1;
                        hashes += 1;
                    }
                    let is_raw = j > 0
                        && (bytes[j - 1] == b'r')
                        && (j < 2 || !is_ident_byte(bytes[j - 2]) || bytes[j - 2] == b'b');
                    if is_raw {
                        state = State::RawStr(hashes);
                    } else {
                        state = State::Str;
                    }
                    out.push(b' ');
                    i += 1;
                } else if b == b'\'' {
                    // Char literal vs lifetime.
                    if bytes.get(i + 1) == Some(&b'\\') {
                        // Escaped char literal: blank to the closing quote.
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                        let blanked = j.min(bytes.len() - 1) - i + 1;
                        out.extend(std::iter::repeat_n(b' ', blanked));
                        i = j + 1;
                    } else if bytes.get(i + 2) == Some(&b'\'') {
                        out.extend_from_slice(b"   ");
                        i += 3;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b);
                } else {
                    out.push(blank(b));
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(blank(b));
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(blank(b));
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let mut matched = true;
                    for k in 0..hashes as usize {
                        if bytes.get(i + 1 + k) != Some(&b'#') {
                            matched = false;
                            break;
                        }
                    }
                    if matched {
                        state = State::Code;
                        out.extend(std::iter::repeat_n(b' ', 1 + hashes as usize));
                        i += 1 + hashes as usize;
                    } else {
                        out.push(blank(b));
                        i += 1;
                    }
                } else {
                    out.push(blank(b));
                    i += 1;
                }
            }
        }
    }
    out.truncate(bytes.len());
    while out.len() < bytes.len() {
        out.push(b' ');
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn blank(b: u8) -> u8 {
    if b == b'\n' {
        b'\n'
    } else {
        b' '
    }
}

/// Marks each (0-based) line that belongs to a `#[cfg(test)]`-gated block:
/// from the attribute line through the closing brace of the item it gates.
fn mark_test_lines(scrubbed: &str) -> Vec<bool> {
    let line_count = scrubbed.lines().count();
    let mut out = vec![false; line_count];
    let attr_pat = concat!("#[cfg", "(test)]");
    let mut armed = false;
    let mut region_entry_depth: Option<u32> = None;
    let mut depth: u32 = 0;
    for (idx, line) in scrubbed.lines().enumerate() {
        if region_entry_depth.is_none() && line.contains(attr_pat) {
            armed = true;
        }
        if armed || region_entry_depth.is_some() {
            if let Some(slot) = out.get_mut(idx) {
                *slot = true;
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if armed {
                        region_entry_depth = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if region_entry_depth == Some(depth) {
                        region_entry_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_strings_and_chars() {
        let src = "let a = \"std::sync::Mutex\"; // std::sync::Mutex\nlet b = '\\n'; /* x */ let c = 'x';\n";
        let scrubbed = scrub(src);
        assert_eq!(scrubbed.len(), src.len());
        assert!(!scrubbed.contains("Mutex"));
        assert!(!scrubbed.contains("x "));
        assert!(scrubbed.contains("let a"));
        assert!(scrubbed.contains("let b"));
    }

    #[test]
    fn scrub_keeps_lifetimes() {
        let scrubbed = scrub("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(scrubbed.contains("<'a>"));
        assert!(scrubbed.contains("&'a str"));
    }

    #[test]
    fn scrub_handles_raw_strings() {
        let scrubbed = scrub("let p = r#\"thread::sleep\"#; call();");
        assert!(!scrubbed.contains("sleep"));
        assert!(scrubbed.contains("call()"));
    }

    #[test]
    fn test_block_detection_covers_cfg_test_mod() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let marks = mark_test_lines(&scrub(src));
        assert_eq!(marks, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn std_sync_detects_brace_groups() {
        assert_eq!(std_sync_primitive("{Arc, Mutex}"), Some("Mutex"));
        assert_eq!(std_sync_primitive("RwLock<u32>"), Some("RwLock"));
        assert_eq!(std_sync_primitive("{Arc}"), None);
        assert_eq!(std_sync_primitive("atomic::AtomicU64"), None);
        assert_eq!(std_sync_primitive("mpsc::channel"), None);
    }

    #[test]
    fn hot_path_exemptions_cover_containers_and_tests() {
        assert!(hot_path_exempt("crates/storage/src/arena.rs"));
        assert!(hot_path_exempt("crates/storage/src/smap.rs"));
        assert!(hot_path_exempt("crates/common/src/tsset.rs"));
        assert!(hot_path_exempt("crates/core/tests/alloc_counts.rs"));
        assert!(!hot_path_exempt("crates/core/src/cell.rs"));
        assert!(!hot_path_exempt("crates/core/src/txn.rs"));
    }

    #[test]
    fn site_args_parse_across_lines() {
        assert_eq!(
            parse_site_args("\n    \"core.cell.data\",\n    62,\n    value)"),
            Some(("core.cell.data".to_string(), 62))
        );
        assert_eq!(parse_site_args("\"x\", RANK, v)"), None);
    }

    #[test]
    fn table_rows_parse() {
        assert_eq!(
            parse_table_row("| 62 | `core.cell.data` | `Mutex` | per-key version state |"),
            Some(("core.cell.data".to_string(), 62))
        );
        assert_eq!(parse_table_row("|-----|------|"), None);
        assert_eq!(parse_table_row("not a row"), None);
    }
}
