//! Concurrency correctness tooling for the MVTL workspace.
//!
//! Two halves:
//!
//! * [`lint`] — a std-only source linter (`mvtl-lint` binary) enforcing the
//!   workspace's concurrency hygiene rules: all locking goes through the
//!   instrumented `parking_lot` shim, no panicking `unwrap`/`expect` on the
//!   serve/durability paths, no stray `thread::sleep`, and every named lock
//!   site agrees with the canonical rank table in `ARCHITECTURE.md`.
//! * `lock_order` (requires the `lock-order` feature) — re-export of the
//!   shim's runtime lock-order tracker: the held→acquiring site graph, cycle
//!   and rank-inversion checks, the waits-for deadlock watchdog, and DOT
//!   output. Tests call `lock_order::assert_acyclic` after driving real
//!   workloads; `write_dot` persists the observed graph as a CI artifact.

pub mod lint;

#[cfg(feature = "lock-order")]
pub use parking_lot::lock_order;

/// Writes the current lock-order graph as Graphviz DOT to `path`, creating
/// parent directories as needed. Intended for CI: the uploaded artifact shows
/// exactly which held→acquiring edges the test run exercised.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the file write.
#[cfg(feature = "lock-order")]
pub fn write_dot(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, lock_order::dot())
}
