//! `mvtl-lint`: workspace concurrency-hygiene linter.
//!
//! Usage: `mvtl-lint [--root <dir>]` (default root: current directory; CI
//! runs it from the workspace root via
//! `cargo run --release -p mvtl-analysis --bin mvtl-lint`).
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: mvtl-lint [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match mvtl_analysis::lint::run(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("mvtl-lint: error: {err}");
            return ExitCode::from(2);
        }
    };

    for entry in &report.unused_allow {
        eprintln!("mvtl-lint: warning: unused allowlist entry: {entry}");
    }
    if report.violations.is_empty() {
        println!("mvtl-lint: clean");
        return ExitCode::SUCCESS;
    }
    for v in &report.violations {
        println!("{v}");
    }
    println!(
        "mvtl-lint: {} violation(s); allowlist: crates/analysis/lint-allow.txt",
        report.violations.len()
    );
    ExitCode::FAILURE
}
