//! Waits-for watchdog: a *real* AB-BA deadlock dies with a panic naming the
//! full cycle instead of hanging the suite; mere contention does not trip it.
//!
//! Separate test binary: the deadlock poisons the global site graph with a
//! cyclic edge pair, which would fail `lock_order::assert_acyclic()` in the
//! integration binary.

#![cfg(feature = "lock-order")]

use std::sync::{Arc, Barrier};
use std::time::Duration;

use mvtl_analysis::lock_order::{self, OnCycle};
use parking_lot::Mutex;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic payload>")
    }
}

#[test]
fn real_deadlock_panics_naming_the_cycle() {
    // Record mode keeps the *edge-level* check from panicking when the second
    // thread's acquisition closes the AB/BA pattern — we want the actual
    // blocked cycle to form so the waits-for watchdog is what fires.
    lock_order::set_on_cycle(OnCycle::Record);

    let a = Arc::new(Mutex::named("wd.a", 1, ()));
    let b = Arc::new(Mutex::named("wd.b", 2, ()));
    let barrier = Arc::new(Barrier::new(2));

    let t1 = {
        let (a, b, barrier) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
        std::thread::spawn(move || {
            let _ga = a.lock();
            barrier.wait();
            let _gb = b.lock();
        })
    };
    let t2 = {
        let (a, b, barrier) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
        std::thread::spawn(move || {
            let _gb = b.lock();
            barrier.wait();
            let _ga = a.lock();
        })
    };

    // At least one thread must die with the watchdog's cycle description; the
    // unwind releases its lock, which lets the other thread finish (either
    // cleanly or with its own detection panic).
    let mut messages = Vec::new();
    for t in [t1, t2] {
        if let Err(payload) = t.join() {
            messages.push(panic_message(payload));
        }
    }
    assert!(
        !messages.is_empty(),
        "an actual AB-BA deadlock must trip the watchdog"
    );
    for msg in &messages {
        assert!(
            msg.contains("deadlock detected") && msg.contains("wd.a") && msg.contains("wd.b"),
            "watchdog panic does not describe the cycle: {msg}"
        );
    }
}

#[test]
fn contention_without_a_cycle_does_not_trip_the_watchdog() {
    let m = Arc::new(Mutex::named("wd.slow", 9, ()));
    let holder = {
        let m = Arc::clone(&m);
        std::thread::spawn(move || {
            let _g = m.lock();
            // Hold well past the watchdog threshold (default 250ms): the
            // waiter is blocked long enough for a deadlock check to run.
            std::thread::sleep(Duration::from_millis(600));
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let waiter = {
        let m = Arc::clone(&m);
        std::thread::spawn(move || {
            let _g = m.lock();
        })
    };
    holder.join().expect("holder must not panic");
    waiter
        .join()
        .expect("plain contention must not be reported as deadlock");
}
