//! Pins each `mvtl-lint` rule against a violation fixture tree, and gates the
//! real workspace: the linter must find every planted violation (at the exact
//! line), must not flag the decoys, and must report the live tree clean.

use std::path::PathBuf;

use mvtl_analysis::lint::{self, Violation};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn run(name: &str) -> Vec<Violation> {
    lint::run(&fixture(name))
        .expect("lint run succeeds")
        .violations
}

fn lines_for(violations: &[Violation], rule: &str, path: &str) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.rule == rule && v.path == path)
        .map(|v| v.line)
        .collect()
}

#[test]
fn std_sync_fixture_flags_every_raw_lock_and_no_decoys() {
    let violations = run("std_sync");
    assert_eq!(
        lines_for(&violations, "std-sync", "crates/demo/src/lib.rs"),
        vec![4, 8, 13, 27],
        "violations: {violations:?}"
    );
    // Nothing else fires: atomics, comments and strings are decoys.
    assert_eq!(violations.len(), 4, "violations: {violations:?}");
    assert!(violations.iter().any(|v| v.message.contains("Condvar")));
}

#[test]
fn unwrap_fixture_flags_non_test_unwrap_and_expect_only() {
    let violations = run("unwrap");
    assert_eq!(
        lines_for(&violations, "unwrap", "crates/server/src/lib.rs"),
        vec![5, 9],
        "violations: {violations:?}"
    );
    assert_eq!(violations.len(), 2, "violations: {violations:?}");
}

#[test]
fn sleep_fixture_flags_non_test_sleep_only() {
    let violations = run("sleep");
    assert_eq!(
        lines_for(&violations, "sleep", "crates/demo/src/lib.rs"),
        vec![5],
        "violations: {violations:?}"
    );
    assert_eq!(violations.len(), 1, "violations: {violations:?}");
}

#[test]
fn hot_path_fixture_flags_marked_file_growth_and_no_decoys() {
    let violations = run("hot_path");
    assert_eq!(
        lines_for(&violations, "hot-path", "crates/demo/src/lib.rs"),
        vec![7, 11],
        "violations: {violations:?}"
    );
    // Nothing else fires: the unmarked sibling, the exempt arena container,
    // test code, and mentions inside comments/strings are decoys.
    assert_eq!(violations.len(), 2, "violations: {violations:?}");
    assert!(violations.iter().any(|v| v.message.contains("arena")));
}

#[test]
fn rank_fixture_flags_mismatch_missing_phantom_and_non_literal() {
    let violations = run("rank_mismatch");
    let rank: Vec<&Violation> = violations
        .iter()
        .filter(|v| v.rule == "rank-table")
        .collect();
    assert_eq!(rank.len(), violations.len(), "violations: {violations:?}");

    // Declared rank disagrees with the table.
    assert!(
        rank.iter().any(|v| {
            v.path == "crates/demo/src/lib.rs"
                && v.line == 8
                && v.message.contains("fixture.mismatch")
                && v.message.contains("99")
                && v.message.contains("20")
        }),
        "violations: {violations:?}"
    );
    // Declared site absent from the table (named_group declarations count too).
    assert!(
        rank.iter().any(|v| {
            v.path == "crates/demo/src/lib.rs"
                && v.line == 9
                && v.message.contains("fixture.not_in_table")
        }),
        "violations: {violations:?}"
    );
    // Table row without a backing declaration, reported at the table row.
    assert!(
        rank.iter().any(|v| {
            v.path == "ARCHITECTURE.md" && v.line == 12 && v.message.contains("fixture.phantom")
        }),
        "violations: {violations:?}"
    );
    // Rank expression is not an integer literal.
    assert!(
        rank.iter().any(|v| {
            v.path == "crates/demo/src/lib.rs"
                && v.line == 16
                && v.message.contains("integer literal")
        }),
        "violations: {violations:?}"
    );
    // Rows outside the marker block are ignored.
    assert!(
        !rank.iter().any(|v| v.message.contains("outside_markers")),
        "violations: {violations:?}"
    );
    assert_eq!(rank.len(), 4, "violations: {violations:?}");
}

#[test]
fn allowlist_suppresses_matches_and_reports_stale_entries() {
    let report = lint::run(&fixture("allow")).expect("lint run succeeds");
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    assert_eq!(
        report.unused_allow.len(),
        1,
        "unused: {:?}",
        report.unused_allow
    );
    assert!(report.unused_allow[0].contains("crates/nonexistent/"));
}

#[test]
fn real_workspace_is_clean_with_no_stale_allowlist_entries() {
    let report = lint::run(&workspace_root()).expect("lint run succeeds");
    assert!(
        report.violations.is_empty(),
        "workspace lint violations: {:#?}",
        report.violations
    );
    assert!(
        report.unused_allow.is_empty(),
        "stale allowlist entries: {:?}",
        report.unused_allow
    );
}

#[test]
fn binary_exit_codes_match_the_contract() {
    let bin = env!("CARGO_BIN_EXE_mvtl-lint");

    // Exit 0 on the real workspace.
    let clean = std::process::Command::new(bin)
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run mvtl-lint");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&clean.stdout)
    );

    // Exit 1 on each violation fixture.
    for fixture_name in ["std_sync", "unwrap", "sleep", "rank_mismatch", "hot_path"] {
        let out = std::process::Command::new(bin)
            .arg("--root")
            .arg(fixture(fixture_name))
            .output()
            .expect("run mvtl-lint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {fixture_name}: stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }

    // Exit 2 on usage errors.
    let usage = std::process::Command::new(bin)
        .arg("--bogus")
        .output()
        .expect("run mvtl-lint");
    assert_eq!(usage.status.code(), Some(2));
}
