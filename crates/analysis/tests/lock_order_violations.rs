//! Lock-order tracker: edge-level cycle detection.
//!
//! This binary deliberately creates cyclic site graphs, so it must stay a
//! *separate* test binary from `lock_order_integration` (the graph is global
//! per process and `assert_acyclic` there would see our planted cycles).

#![cfg(feature = "lock-order")]

use std::panic::AssertUnwindSafe;

use mvtl_analysis::lock_order::{self, OnCycle};
use parking_lot::Mutex;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// The `OnCycle` switch is global, so every phase that depends on it lives in
/// this one test: record-mode detection, non-group self-edges, and the
/// panic-mode message. Sibling tests use sites these phases never touch.
#[test]
fn inversions_are_reported_with_both_site_names() {
    // Phase 1: Record mode — an AB/BA inversion is recorded, naming both
    // sites, without panicking.
    lock_order::set_on_cycle(OnCycle::Record);
    let a = Mutex::named("viol.rec.a", 1, ());
    let b = Mutex::named("viol.rec.b", 2, ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }
    let recorded = lock_order::recorded_violations();
    assert!(
        recorded
            .iter()
            .any(|m| m.contains("viol.rec.a") && m.contains("viol.rec.b")),
        "inversion not recorded with both site names: {recorded:?}"
    );

    // Phase 2: still Record mode — nesting two locks of the same *non-group*
    // site is a self-edge violation.
    let c1 = Mutex::named("viol.rec.self", 3, ());
    let c2 = Mutex::named("viol.rec.self", 3, ());
    {
        let _g1 = c1.lock();
        let _g2 = c2.lock();
    }
    let recorded = lock_order::recorded_violations();
    assert!(
        recorded.iter().any(|m| m.contains("viol.rec.self")),
        "non-group self-edge not recorded: {recorded:?}"
    );

    // Phase 3: Panic mode (the default) — the closing acquisition panics and
    // the message names both sites.
    lock_order::set_on_cycle(OnCycle::Panic);
    let x = Mutex::named("viol.pan.a", 1, ());
    let y = Mutex::named("viol.pan.b", 2, ());
    {
        let _gx = x.lock();
        let _gy = y.lock();
    }
    let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let _gy = y.lock();
        let _gx = x.lock();
    }))
    .expect_err("closing an AB/BA cycle must panic in Panic mode");
    let msg = panic_message(payload);
    assert!(
        msg.contains("viol.pan.a") && msg.contains("viol.pan.b"),
        "cycle panic does not name both sites: {msg}"
    );
    assert!(
        msg.contains("lock-order cycle"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn ordered_acquisition_is_not_flagged() {
    let a = Mutex::named("viol.ord.a", 1, ());
    let b = Mutex::named("viol.ord.b", 2, ());
    for _ in 0..3 {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let recorded = lock_order::recorded_violations();
    assert!(
        !recorded.iter().any(|m| m.contains("viol.ord")),
        "consistently ordered sites were flagged: {recorded:?}"
    );
    assert!(
        !lock_order::cycles()
            .iter()
            .any(|c| c.iter().any(|s| s.starts_with("viol.ord"))),
        "consistently ordered sites form a cycle"
    );
    assert!(
        lock_order::edges()
            .iter()
            .any(|(f, t)| *f == "viol.ord.a" && *t == "viol.ord.b"),
        "the a->b edge should have been observed"
    );
}

#[test]
fn group_sites_allow_same_site_nesting() {
    // mvto-style sorted commit latching: many locks of one group site.
    let k1 = Mutex::named_group("viol.grp.key", 5, ());
    let k2 = Mutex::named_group("viol.grp.key", 5, ());
    let k3 = Mutex::named_group("viol.grp.key", 5, ());
    {
        let _g1 = k1.lock();
        let _g2 = k2.lock();
        let _g3 = k3.lock();
    }
    let recorded = lock_order::recorded_violations();
    assert!(
        !recorded.iter().any(|m| m.contains("viol.grp.key")),
        "group self-nesting was flagged: {recorded:?}"
    );
    assert!(
        !lock_order::cycles()
            .iter()
            .any(|c| c.contains(&"viol.grp.key")),
        "group self-edge reported as a cycle"
    );
}

#[test]
fn try_acquisitions_add_no_order_edges() {
    let a = Mutex::named("viol.try.a", 9, ());
    let b = Mutex::named("viol.try.b", 8, ());
    let _ga = a.lock();
    // Blocking on `b` here would be a rank inversion; try_lock is exempt
    // because a failed try cannot deadlock.
    let gb = b.try_lock().expect("uncontended try_lock succeeds");
    drop(gb);
    assert!(
        !lock_order::edges()
            .iter()
            .any(|(f, t)| *f == "viol.try.a" && *t == "viol.try.b"),
        "try_lock must not record order edges"
    );
}
