//! Lock-order tracking over the real stack: drive every engine family, the
//! TCP serve path, WAL group commit and the GC service with real threads,
//! then assert the observed site graph is acyclic and rank-consistent and
//! persist it as a DOT artifact for CI.
//!
//! Also the satellite regression for the two historically scary teardown
//! paths: GC shutdown (stop-flag + condvar + thread join) and WAL flusher
//! drain (shutdown + wake + join with pending appends) run repeatedly under
//! the waits-for watchdog — an inversion or a real deadlock in either path
//! fails this test instead of wedging the suite.
//!
//! Deliberate-violation tests live in separate binaries
//! (`lock_order_violations`, `lock_order_watchdog`): the site graph is global
//! per process, and `assert_acyclic` here must see only real edges.

#![cfg(feature = "lock-order")]

use std::path::PathBuf;

use mvtl_analysis::lock_order;
use mvtl_common::{Engine, Key, TxError};
use mvtl_server::{RemoteEngine, Server};
use mvtl_verify::replay_concurrent;

const THREADS: usize = 4;
const TXNS_PER_THREAD: usize = 25;
const KEYS: u64 = 8;

/// Contended read-modify-write over a small hot key space; retries are
/// expected, every lock in the engine's hot path gets exercised.
fn churn(engine: &dyn Engine<u64>) {
    let _history = replay_concurrent(engine, THREADS, TXNS_PER_THREAD, |thread, iter, txn| {
        let k1 = Key((thread as u64 + iter as u64) % KEYS);
        let k2 = Key((k1.0 + 3) % KEYS);
        let seen = txn.read(k1)?.unwrap_or(0);
        txn.write(k2, seen + 1)?;
        if iter % 3 == 0 {
            txn.write(k1, seen)?;
        }
        Ok::<(), TxError>(())
    });
}

#[test]
fn full_stack_lock_order_is_acyclic_and_rank_consistent() {
    // 1. Every engine family: MVTL core, both baselines, the cross-shard
    //    composition, WAL-backed durability, and a GC-wrapped engine.
    for spec in [
        "mvtil-early",
        "mvto+",
        "2pl",
        // commit_timeout_ms arms the prepare-slot coordinator path.
        "sharded?shards=4&inner=mvtil-early&commit_timeout_ms=200",
        "mvtil-early?wal=tmp&fsync=group",
        "mvtil-early?gc_ms=1&gc_lag_ms=1",
    ] {
        let engine = mvtl_registry::build(spec).expect("registry spec");
        churn(engine.as_ref());
    }

    // 2. The serve path: a real server fronting a sharded engine, driven over
    //    TCP (touches server.connections / server.client.conn).
    {
        let server = Server::spawn("sharded?shards=2&inner=mvtil-early", "127.0.0.1:0")
            .expect("server must start");
        let remote = RemoteEngine::connect(server.addr()).expect("client connect");
        churn(&remote);
    }

    // 3. Teardown-path regression (GC shutdown and WAL flusher drain): build,
    //    churn briefly, drop immediately so shutdown overlaps fresh activity.
    //    A lock-order inversion shows up in the graph; an actual deadlock is
    //    converted into a panic by the watchdog instead of hanging.
    for _ in 0..10 {
        let gc = mvtl_registry::build("mvtil-early?gc_ms=1&gc_lag_ms=1").expect("gc spec");
        let wal = mvtl_registry::build("mvtil-early?wal=tmp&fsync=group").expect("wal spec");
        replay_concurrent(gc.as_ref(), 2, 3, |_, i, txn| {
            txn.write(Key(i as u64 % KEYS), i as u64)?;
            Ok(())
        });
        replay_concurrent(wal.as_ref(), 2, 3, |_, i, txn| {
            txn.write(Key(i as u64 % KEYS), i as u64)?;
            Ok(())
        });
        drop(gc);
        drop(wal);
    }

    // The tracker saw the annotated sites...
    let sites = lock_order::sites();
    for expected in [
        "core.store.stripe",
        "baselines.tpl.shard",
        "baselines.tpl.key",
        "baselines.mvto.shard",
        "baselines.mvto.key",
        "shard.prepare_slot",
        "common.active_txns",
        "verify.history",
        "wal.segments",
        "wal.flush",
        "gc.stop",
        "server.connections",
        "server.client.conn",
    ] {
        assert!(
            sites.iter().any(|s| s.name == expected),
            "site {expected} never observed; sites: {:?}",
            sites.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }

    // ...including the known real nesting: group commit publishes durability
    // while holding the segment lock.
    let edges = lock_order::edges();
    assert!(
        edges
            .iter()
            .any(|(f, t)| *f == "wal.segments" && *t == "wal.flush"),
        "expected wal.segments -> wal.flush edge; edges: {edges:?}"
    );

    // The contract: no cycles, no rank inversions, no recorded violations.
    lock_order::assert_acyclic();

    // Persist the observed graph for the CI artifact.
    let dot_path = std::env::var("MVTL_LOCK_ORDER_DOT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/lock-order/lock_order.dot")
        });
    mvtl_analysis::write_dot(&dot_path).expect("write DOT artifact");
    let dot = std::fs::read_to_string(&dot_path).expect("read back DOT");
    assert!(dot.contains("digraph") && dot.contains("wal.segments"));
}
