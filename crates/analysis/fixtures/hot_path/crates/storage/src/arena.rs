// Decoy: marked, but the arena is an exempt container module — growth is
// its job, so nothing here may be flagged.
// lint: hot-path

pub fn spill(slabs: &mut Vec<Vec<u64>>) {
    slabs.push(Vec::new());
}
