// Decoy: no hot-path marker, so growable-collection mutation is fine here.

pub fn grows(out: &mut Vec<u64>) {
    out.push(7);
}
