// Fixture: rule `hot-path`. Growable-collection mutation in a file carrying
// the hot-path marker must be flagged; test code, strings/comments and
// unmarked or exempt files must not.
// lint: hot-path

pub fn grows(out: &mut Vec<u64>) {
    out.push(7); // line 7: flagged
}

pub fn maps(map: &mut std::collections::HashMap<u64, u64>) {
    map.insert(1, 2); // line 11: flagged
}

pub fn in_string() -> &'static str {
    // Must NOT be flagged: the pattern below is inside a string literal,
    // and this comment mentioning .push( and .insert( must not count either.
    ".push( and .insert("
}

#[cfg(test)]
mod tests {
    // Test code may use growable collections freely.
    fn builds_a_vec() {
        let mut v = Vec::new();
        v.push(1u8);
    }
}
