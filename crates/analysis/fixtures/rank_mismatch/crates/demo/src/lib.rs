// Fixture: rule `rank-table`. Declarations must agree with ARCHITECTURE.md's
// rank table in both directions, and ranks must be integer literals.

use parking_lot::Mutex;

pub fn sites() {
    let _ok = Mutex::named("fixture.ok", 10, 0u8); // matches the table
    let _mismatch = Mutex::named("fixture.mismatch", 99, 0u8); // line 8: table says 20
    let _missing = Mutex::named_group("fixture.not_in_table", 30, 0u8); // line 9: absent from table
    // The table also lists `fixture.phantom`, which no declaration backs.
}

const RANK: u32 = 40;

pub fn non_literal() {
    let _bad = Mutex::named("fixture.computed", RANK, 0u8); // line 16: rank not a literal
}
