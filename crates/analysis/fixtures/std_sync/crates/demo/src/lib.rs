// Fixture: rule `std-sync`. Raw std locking outside shims/ must be flagged;
// mentions in comments/strings and non-lock std::sync items must not.

use std::sync::Mutex; // line 4: flagged
use std::sync::atomic::AtomicU64; // not a lock: must NOT be flagged

pub struct Holder {
    flagged_rw: std::sync::RwLock<u64>, // line 8: flagged
    ok_atomic: AtomicU64,
}

pub fn grouped() {
    use std::sync::{Arc, Condvar}; // line 13: flagged (Condvar inside the group)
    let _ = Arc::new(Condvar::new());
}

pub fn in_string() -> &'static str {
    // Must NOT be flagged: the pattern below is inside a string literal,
    // and this comment mentioning std::sync::Mutex must not count either.
    "std::sync::Mutex"
}

#[cfg(test)]
mod tests {
    // The rule applies in tests too: tests must also go through the shim.
    fn also_flagged() {
        let _ = std::sync::Mutex::new(0u8); // line 27: flagged
    }
}
