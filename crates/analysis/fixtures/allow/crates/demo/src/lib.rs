// Fixture: allowlist mechanics. The sleep below is suppressed by this
// fixture's lint-allow.txt; the stale entry in that file must be reported.

pub fn suppressed_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
