// Fixture: rule `unwrap`. Panicking unwrap/expect in non-test code of the
// server/wal/shard crates must be flagged; test-gated code is exempt.

pub fn flagged_unwrap(v: Option<u8>) -> u8 {
    v.unwrap() // line 5: flagged
}

pub fn flagged_expect(v: Result<u8, ()>) -> u8 {
    v.expect("fixture") // line 9: flagged
}

pub fn not_flagged_in_string() -> &'static str {
    // Mentioning .unwrap() in a comment or ".unwrap()" in a string is fine.
    ".unwrap()"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1); // must NOT be flagged
    }
}
