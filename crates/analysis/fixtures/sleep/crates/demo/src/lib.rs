// Fixture: rule `sleep`. Ad-hoc thread::sleep outside tests/faults must be
// flagged; sleeps inside #[cfg(test)] blocks are exempt.

pub fn flagged_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(1)); // line 5: flagged
}

#[cfg(test)]
mod tests {
    #[test]
    fn sleep_in_tests_is_fine() {
        std::thread::sleep(std::time::Duration::from_millis(1)); // must NOT be flagged
    }
}
