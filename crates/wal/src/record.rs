//! Log records and their on-disk framing.
//!
//! Every record is written as one self-delimiting *frame*, reusing the
//! length-prefixed idiom of the server's wire protocol
//! (`crates/server/src/wire.rs`):
//!
//! ```text
//! [payload_len: u32 LE] [crc32(payload): u32 LE] [payload]
//! ```
//!
//! The payload starts with a one-byte record kind and the record's log-local
//! transaction id, followed by kind-specific fields (all integers
//! little-endian). The checksum lets recovery distinguish a cleanly written
//! frame from a torn tail: scanning stops at the first frame whose length or
//! checksum does not add up, and everything after that point is reported as
//! discarded rather than replayed.

use mvtl_common::{Key, Timestamp, TsRange, TsSet};

/// Magic bytes opening every segment file, followed by the format version.
pub(crate) const SEGMENT_HEADER: [u8; 8] = *b"MVWL\x01\x00\x00\x00";

/// Upper bound on a single frame's payload, mirroring the wire protocol's
/// frame cap: a corrupted length prefix must not trigger a huge allocation.
pub(crate) const MAX_PAYLOAD: u32 = 64 << 20;

const KIND_COMMIT: u8 = 1;
const KIND_PREPARE: u8 = 2;
const KIND_DECISION: u8 = 3;

/// Values that can be logged. Implemented for the value types the registry
/// builds engines over; the encoding is length-prefixed per write, so any
/// byte-serializable type fits.
pub trait WalValue: Sized {
    /// Appends the serialized value to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Rebuilds a value from the exact bytes `encode` produced.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl WalValue for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl WalValue for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// One durable event. `id` is a log-local transaction id pairing a
/// [`WalRecord::Prepare`] with its later [`WalRecord::Decision`]; it is not
/// the engine's in-memory `TxId` (those do not survive a restart).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord<V> {
    /// A single-shard (or coordinator-side) commit: the transaction's write
    /// set, installed at `commit_ts` where the engine has one (single-version
    /// engines log `None` and replay in log order).
    Commit {
        /// Log-local transaction id.
        id: u64,
        /// The commit timestamp, when the engine serializes by timestamp.
        commit_ts: Option<Timestamp>,
        /// The committed `(key, value)` write set.
        writes: Vec<(Key, V)>,
    },
    /// A cross-shard participant's prepared sub-transaction: its frozen
    /// candidate interval and buffered writes. A prepare without a matching
    /// decision is resolved by presumed abort on recovery.
    Prepare {
        /// Log-local transaction id, referenced by the matching decision.
        id: u64,
        /// The frozen candidate interval the participant offered.
        interval: TsSet,
        /// The buffered `(key, value)` write set.
        writes: Vec<(Key, V)>,
    },
    /// The coordinator's decision for a prepared sub-transaction.
    Decision {
        /// The log-local id of the prepare this decides.
        id: u64,
        /// `Some(ts)` commits the prepared writes at `ts`; `None` aborts.
        outcome: Option<Timestamp>,
    },
}

impl<V> WalRecord<V> {
    /// The record's log-local transaction id.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            WalRecord::Commit { id, .. }
            | WalRecord::Prepare { id, .. }
            | WalRecord::Decision { id, .. } => *id,
        }
    }
}

// --- CRC-32 (IEEE 802.3), table-driven, no external dependency -------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data`, the checksum guarding every frame.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

// --- payload encoding ------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_ts(out: &mut Vec<u8>, ts: Timestamp) {
    put_u64(out, ts.value);
    put_u32(out, ts.process);
}

fn put_writes<V: WalValue>(out: &mut Vec<u8>, writes: &[(Key, V)]) {
    put_u32(out, writes.len() as u32);
    let mut scratch = Vec::new();
    for (key, value) in writes {
        put_u64(out, key.0);
        scratch.clear();
        value.encode(&mut scratch);
        put_u32(out, scratch.len() as u32);
        out.extend_from_slice(&scratch);
    }
}

/// A strict little-endian cursor over a payload; every read can fail, so a
/// truncated or bit-flipped payload surfaces as `None`, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn ts(&mut self) -> Option<Timestamp> {
        let value = self.u64()?;
        let process = self.u32()?;
        Some(Timestamp::new(value, process))
    }

    fn writes<V: WalValue>(&mut self) -> Option<Vec<(Key, V)>> {
        let count = self.u32()? as usize;
        let mut writes = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let key = Key(self.u64()?);
            let len = self.u32()? as usize;
            let value = V::decode(self.take(len)?)?;
            writes.push((key, value));
        }
        Some(writes)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

impl<V: WalValue> WalRecord<V> {
    /// Serializes the record payload (kind + id + fields, no frame header).
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Commit {
                id,
                commit_ts,
                writes,
            } => {
                out.push(KIND_COMMIT);
                put_u64(&mut out, *id);
                match commit_ts {
                    Some(ts) => {
                        out.push(1);
                        put_ts(&mut out, *ts);
                    }
                    None => out.push(0),
                }
                put_writes(&mut out, writes);
            }
            WalRecord::Prepare {
                id,
                interval,
                writes,
            } => {
                out.push(KIND_PREPARE);
                put_u64(&mut out, *id);
                let ranges = interval.ranges();
                put_u32(&mut out, ranges.len() as u32);
                for range in ranges {
                    put_ts(&mut out, range.start);
                    put_ts(&mut out, range.end);
                }
                put_writes(&mut out, writes);
            }
            WalRecord::Decision { id, outcome } => {
                out.push(KIND_DECISION);
                put_u64(&mut out, *id);
                match outcome {
                    Some(ts) => {
                        out.push(1);
                        put_ts(&mut out, *ts);
                    }
                    None => out.push(0),
                }
            }
        }
        out
    }

    /// Rebuilds a record from a payload, rejecting trailing garbage.
    #[must_use]
    pub fn decode_payload(payload: &[u8]) -> Option<WalRecord<V>> {
        let mut cur = Cursor {
            bytes: payload,
            pos: 0,
        };
        let kind = cur.u8()?;
        let id = cur.u64()?;
        let record = match kind {
            KIND_COMMIT => {
                let commit_ts = match cur.u8()? {
                    0 => None,
                    1 => Some(cur.ts()?),
                    _ => return None,
                };
                WalRecord::Commit {
                    id,
                    commit_ts,
                    writes: cur.writes()?,
                }
            }
            KIND_PREPARE => {
                let range_count = cur.u32()? as usize;
                let mut ranges = Vec::with_capacity(range_count.min(1024));
                for _ in 0..range_count {
                    let start = cur.ts()?;
                    let end = cur.ts()?;
                    if start > end {
                        return None;
                    }
                    ranges.push(TsRange::new(start, end));
                }
                WalRecord::Prepare {
                    id,
                    interval: TsSet::from_ranges(ranges),
                    writes: cur.writes()?,
                }
            }
            KIND_DECISION => {
                let outcome = match cur.u8()? {
                    0 => None,
                    1 => Some(cur.ts()?),
                    _ => return None,
                };
                WalRecord::Decision { id, outcome }
            }
            _ => return None,
        };
        cur.done().then_some(record)
    }

    /// Serializes the record as a complete frame (length + checksum +
    /// payload), ready for appending to a segment.
    #[must_use]
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }
}

/// Attempts to decode one frame at the start of `bytes`. Returns the record
/// and the frame's total length, or `None` when the bytes do not hold a
/// complete, checksum-valid frame (the torn-tail stop condition).
#[must_use]
pub fn decode_frame<V: WalValue>(bytes: &[u8]) -> Option<(WalRecord<V>, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    if len > MAX_PAYLOAD {
        return None;
    }
    let expected = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    let total = 8usize.checked_add(len as usize)?;
    let payload = bytes.get(8..total)?;
    if crc32(payload) != expected {
        return None;
    }
    Some((WalRecord::decode_payload(payload)?, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn sample_records() -> Vec<WalRecord<u64>> {
        vec![
            WalRecord::Commit {
                id: 1,
                commit_ts: Some(Timestamp::new(42, 3)),
                writes: vec![(Key(7), 700), (Key(8), 800)],
            },
            WalRecord::Commit {
                id: 2,
                commit_ts: None,
                writes: vec![(Key(9), 900)],
            },
            WalRecord::Prepare {
                id: 3,
                interval: TsSet::from_ranges(vec![
                    TsRange::new(Timestamp::new(10, 0), Timestamp::new(20, 0)),
                    TsRange::new(Timestamp::new(30, 0), Timestamp::new(40, 0)),
                ]),
                writes: vec![(Key(1), 11)],
            },
            WalRecord::Decision {
                id: 3,
                outcome: Some(Timestamp::new(15, 0)),
            },
            WalRecord::Decision {
                id: 4,
                outcome: None,
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_frames() {
        for record in sample_records() {
            let frame = record.encode_frame();
            let (decoded, consumed) = decode_frame::<u64>(&frame).expect("frame decodes");
            assert_eq!(consumed, frame.len());
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn string_values_roundtrip() {
        let record = WalRecord::Commit {
            id: 9,
            commit_ts: Some(Timestamp::new(5, 1)),
            writes: vec![(Key(1), "héllo".to_string()), (Key(2), String::new())],
        };
        let frame = record.encode_frame();
        let (decoded, _) = decode_frame::<String>(&frame).expect("frame decodes");
        assert_eq!(decoded, record);
    }

    #[test]
    fn truncated_frames_do_not_decode() {
        let frame = sample_records()[0].encode_frame();
        for cut in 0..frame.len() {
            assert!(
                decode_frame::<u64>(&frame[..cut]).is_none(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn corrupted_bytes_do_not_decode() {
        let frame = sample_records()[0].encode_frame();
        for i in 8..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_frame::<u64>(&bad).is_none(),
                "payload bit flip at {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut frame = sample_records()[0].encode_frame();
        frame[0..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(decode_frame::<u64>(&frame).is_none());
    }

    #[test]
    fn trailing_garbage_in_payload_is_rejected() {
        let mut payload = sample_records()[4].encode_payload();
        payload.push(0);
        assert!(WalRecord::<u64>::decode_payload(&payload).is_none());
    }
}
