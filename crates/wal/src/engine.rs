//! [`WalEngine`]: durability as a decorator over any
//! [`TransactionalKV`] engine.
//!
//! The wrapper needs no cooperation from the engine on the hot path: it
//! captures each transaction's write set as the writes stream through, lets
//! the inner engine commit normally, then logs a [`WalRecord::Commit`] and
//! acknowledges the commit only once the record is durable (per the log's
//! [`FsyncMode`](crate::FsyncMode)). Recovery is where the engine cooperates:
//! [`WalEngine::attach`] replays the resolved log through
//! [`TransactionalKV::recover_install`], which re-installs each committed
//! write set *at its original commit timestamp* — so histories spanning the
//! crash stay one serializable multiversion history.

use crate::log::{Recovery, Wal, WalError, WalOptions};
use crate::record::{WalRecord, WalValue};
use mvtl_common::{CommitInfo, Key, ProcessId, StoreStats, Timestamp, TransactionalKV, TxError};
use std::marker::PhantomData;
use std::path::Path;
use std::sync::Arc;

/// What attaching a log to an engine (or shard) found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions replayed into the engine.
    pub committed: usize,
    /// Prepares with no logged decision, resolved by presumed abort (each
    /// got exactly one decision: an abort, now in the log).
    pub aborted_prepares: usize,
    /// Bytes of torn or corrupted tail discarded by the scan.
    pub discarded_bytes: u64,
}

/// Buffers a `(key, value)` into `writes`, last value per key winning —
/// mirroring how engines buffer transactional writes.
pub(crate) fn buffer_write<V>(writes: &mut Vec<(Key, V)>, key: Key, value: V) {
    if let Some(slot) = writes.iter_mut().find(|(k, _)| *k == key) {
        slot.1 = value;
    } else {
        writes.push((key, value));
    }
}

/// A write-ahead-logged engine: every committed write set is durable before
/// the commit is acknowledged, and [`WalEngine::attach`] rebuilds the inner
/// engine's committed state from the log after a crash.
pub struct WalEngine<V, S> {
    inner: Arc<S>,
    wal: Wal,
    _values: PhantomData<fn() -> V>,
}

/// The transaction handle of a [`WalEngine`]: the inner engine's handle plus
/// the captured write set destined for the log.
pub struct WalTxn<T, V> {
    inner: T,
    writes: Vec<(Key, V)>,
}

impl<V, S> WalEngine<V, S>
where
    V: WalValue + Clone + Send + Sync + 'static,
    S: TransactionalKV<V>,
{
    /// Opens (or creates) the log in `dir` and replays whatever it holds
    /// into `inner`, which must be freshly built (recovery installs versions
    /// at their original timestamps and assumes nothing else is there yet).
    ///
    /// # Errors
    ///
    /// Returns an error when the log cannot be opened or the engine rejects
    /// a replay (e.g. it does not implement
    /// [`TransactionalKV::recover_install`]).
    pub fn attach(
        inner: Arc<S>,
        dir: &Path,
        options: WalOptions,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let (wal, recovery) = Wal::open::<V>(dir, options)?;
        Self::with_recovery(inner, wal, recovery)
    }

    /// Like [`WalEngine::attach`], but over a log the caller already opened
    /// (the registry opens the log first to learn the recovered clock
    /// watermark, then builds the engine, then attaches).
    ///
    /// # Errors
    ///
    /// Returns an error when the engine rejects a replay.
    pub fn with_recovery(
        inner: Arc<S>,
        wal: Wal,
        recovery: Recovery<V>,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let resolved = recovery.resolve();
        let mut report = RecoveryReport {
            committed: resolved.committed.len(),
            aborted_prepares: 0,
            discarded_bytes: resolved.discarded_bytes,
        };
        for commit in resolved.committed {
            inner
                .recover_install(commit.writes, commit.commit_ts)
                .map_err(|e| WalError(format!("replaying commit {}: {e}", commit.id)))?;
        }
        for prepare in resolved.unresolved {
            // An engine-level log never writes prepare records (those belong
            // to shard logs), but a log is data, not a promise: resolve any
            // we find by presumed abort and log the decision so the next
            // recovery does not see them again.
            wal.append::<V>(&WalRecord::Decision {
                id: prepare.id,
                outcome: None,
            })?;
            report.aborted_prepares += 1;
        }
        Ok((
            WalEngine {
                inner,
                wal,
                _values: PhantomData,
            },
            report,
        ))
    }

    /// The wrapped engine.
    #[must_use]
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }

    /// The underlying log (for [`Wal::sync`] and tests).
    #[must_use]
    pub fn wal(&self) -> &Wal {
        &self.wal
    }
}

impl<V, S> TransactionalKV<V> for WalEngine<V, S>
where
    V: WalValue + Clone + Send + Sync + 'static,
    S: TransactionalKV<V>,
{
    type Txn = WalTxn<S::Txn, V>;

    fn begin_at(&self, process: ProcessId, pinned: Option<Timestamp>) -> Self::Txn {
        WalTxn {
            inner: self.inner.begin_at(process, pinned),
            writes: Vec::new(),
        }
    }

    fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<V>, TxError> {
        self.inner.read(&mut txn.inner, key)
    }

    fn write(&self, txn: &mut Self::Txn, key: Key, value: V) -> Result<(), TxError> {
        self.inner.write(&mut txn.inner, key, value.clone())?;
        buffer_write(&mut txn.writes, key, value);
        Ok(())
    }

    fn read_many(&self, txn: &mut Self::Txn, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        self.inner.read_many(&mut txn.inner, keys)
    }

    fn write_many(&self, txn: &mut Self::Txn, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        self.inner.write_many(&mut txn.inner, entries.clone())?;
        for (key, value) in entries {
            buffer_write(&mut txn.writes, key, value);
        }
        Ok(())
    }

    fn commit(&self, txn: Self::Txn) -> Result<CommitInfo, TxError> {
        let WalTxn { inner, writes } = txn;
        let info = self.inner.commit(inner)?;
        // Read-only commits leave no durable trace to recover; everything
        // else is acknowledged only once its record is durable (under the
        // log's fsync policy).
        if !writes.is_empty() {
            self.wal
                .append(&WalRecord::Commit {
                    id: self.wal.fresh_id(),
                    commit_ts: info.commit_ts,
                    writes,
                })
                .map_err(|e| TxError::Internal(format!("commit applied but not logged: {e}")))?;
        }
        Ok(info)
    }

    fn abort(&self, txn: Self::Txn) {
        // Aborts log nothing: a transaction absent from the log is aborted
        // by definition (presumed abort).
        self.inner.abort(txn.inner);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        self.inner.purge_below(bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        self.inner.low_watermark()
    }

    fn recover_install(
        &self,
        writes: Vec<(Key, V)>,
        commit_ts: Option<Timestamp>,
    ) -> Result<(), TxError> {
        // Install into the inner engine, then log, so state recovered from
        // elsewhere survives *this* log's next crash too.
        self.inner.recover_install(writes.clone(), commit_ts)?;
        if !writes.is_empty() {
            self.wal
                .append(&WalRecord::Commit {
                    id: self.wal.fresh_id(),
                    commit_ts,
                    writes,
                })
                .map_err(|e| TxError::Internal(format!("recovery applied but not logged: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_clock::GlobalClock;
    use mvtl_common::TempDir;
    use mvtl_core::policy::MvtilPolicy;
    use mvtl_core::{MvtlConfig, MvtlStore};

    type Store = MvtlStore<u64, MvtilPolicy>;

    fn fresh_store() -> Arc<Store> {
        Arc::new(MvtlStore::new(
            MvtilPolicy::early(1000),
            Arc::new(GlobalClock::new()),
            MvtlConfig::default(),
        ))
    }

    fn attach(dir: &Path) -> (WalEngine<u64, Store>, RecoveryReport) {
        WalEngine::attach(fresh_store(), dir, WalOptions::default()).expect("attach")
    }

    #[test]
    fn committed_writes_survive_a_crash() {
        let dir = TempDir::new("engine-crash");
        let (engine, report) = attach(dir.path());
        assert_eq!(report, RecoveryReport::default());
        let mut txn = engine.begin(ProcessId(0));
        engine.write(&mut txn, Key(1), 11).unwrap();
        engine.write(&mut txn, Key(2), 22).unwrap();
        let info = engine.commit(txn).unwrap();
        let pre_crash_ts = info.commit_ts.expect("mvtl commits carry a timestamp");
        drop(engine); // crash: all in-memory versions are gone

        let (engine, report) = attach(dir.path());
        assert_eq!(report.committed, 1);
        assert_eq!(report.discarded_bytes, 0);
        let mut txn = engine.begin(ProcessId(0));
        assert_eq!(engine.read(&mut txn, Key(1)).unwrap(), Some(11));
        assert_eq!(engine.read(&mut txn, Key(2)).unwrap(), Some(22));
        let info = engine.commit(txn).unwrap();
        // The recovered version kept its original timestamp: the post-crash
        // read anchors at (or after) it.
        assert!(info.reads.iter().all(|(_, ts)| *ts >= pre_crash_ts));
    }

    #[test]
    fn aborted_and_uncommitted_transactions_do_not_resurrect() {
        let dir = TempDir::new("engine-abort");
        let (engine, _) = attach(dir.path());
        let mut committed = engine.begin(ProcessId(0));
        engine.write(&mut committed, Key(1), 1).unwrap();
        engine.commit(committed).unwrap();
        let mut aborted = engine.begin(ProcessId(0));
        engine.write(&mut aborted, Key(2), 2).unwrap();
        engine.abort(aborted);
        let mut in_flight = engine.begin(ProcessId(0));
        engine.write(&mut in_flight, Key(3), 3).unwrap();
        drop(in_flight);
        drop(engine);

        let (engine, report) = attach(dir.path());
        assert_eq!(report.committed, 1);
        let mut txn = engine.begin(ProcessId(0));
        assert_eq!(engine.read(&mut txn, Key(1)).unwrap(), Some(1));
        assert_eq!(engine.read(&mut txn, Key(2)).unwrap(), None);
        assert_eq!(engine.read(&mut txn, Key(3)).unwrap(), None);
        engine.commit(txn).unwrap();
    }

    #[test]
    fn last_write_per_key_wins_within_a_transaction() {
        let dir = TempDir::new("engine-upsert");
        let (engine, _) = attach(dir.path());
        let mut txn = engine.begin(ProcessId(0));
        engine.write(&mut txn, Key(1), 1).unwrap();
        engine
            .write_many(&mut txn, vec![(Key(1), 2), (Key(4), 40)])
            .unwrap();
        engine.write(&mut txn, Key(1), 3).unwrap();
        engine.commit(txn).unwrap();
        drop(engine);

        let (engine, _) = attach(dir.path());
        let mut txn = engine.begin(ProcessId(0));
        assert_eq!(engine.read(&mut txn, Key(1)).unwrap(), Some(3));
        assert_eq!(engine.read(&mut txn, Key(4)).unwrap(), Some(40));
        engine.commit(txn).unwrap();
    }

    #[test]
    fn read_only_commits_log_nothing() {
        let dir = TempDir::new("engine-ro");
        let (engine, _) = attach(dir.path());
        let mut txn = engine.begin(ProcessId(0));
        assert_eq!(engine.read(&mut txn, Key(1)).unwrap(), None);
        engine.commit(txn).unwrap();
        drop(engine);
        let (_engine, report) = attach(dir.path());
        assert_eq!(report.committed, 0);
    }
}
