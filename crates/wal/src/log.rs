//! The append-only segmented log: group-commit writer and recovery scanner.
//!
//! A log is a directory of segment files `wal-NNNNNN.log`, each opened with
//! an 8-byte header (magic + format version) and otherwise holding a pure
//! sequence of frames ([`crate::record`]). Appenders serialize records into a
//! pending buffer and a dedicated flusher thread drains it: one `write` +
//! `fsync` covers every record that arrived while the previous flush was in
//! flight, which is the group commit that amortizes fsync under load. The
//! fsync policy is [`FsyncMode`]:
//!
//! * `Always` — each append writes and syncs inline before returning,
//! * `Group` — appends wait until the flusher has synced a batch containing
//!   their record (the default; durability with amortized fsync),
//! * `Off` — appends return immediately; the flusher still writes but never
//!   syncs (testing / throwaway data).
//!
//! Recovery ([`Wal::open`]) scans the segments in order and stops at the
//! first frame whose length or checksum does not verify: everything before
//! the stop point replays, everything after is counted as
//! [`Recovery::discarded_bytes`], the broken tail is truncated and later
//! segments are deleted so new appends extend a log that is valid
//! end-to-end.

use crate::record::{decode_frame, WalRecord, WalValue, MAX_PAYLOAD, SEGMENT_HEADER};
use mvtl_common::{Key, TempDir, Timestamp, TsSet};
use parking_lot::{Condvar, Mutex};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// When the durability layer acknowledges an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncMode {
    /// Write and sync inline on the appending thread, one fsync per record.
    Always,
    /// Group commit: the flusher batches concurrent appends into one fsync
    /// and appenders block until their record's batch is durable.
    Group,
    /// Never sync; appends return as soon as the record is buffered.
    Off,
}

impl FsyncMode {
    /// Parses the registry's `fsync=` parameter value.
    #[must_use]
    pub fn parse(s: &str) -> Option<FsyncMode> {
        match s {
            "always" => Some(FsyncMode::Always),
            "group" => Some(FsyncMode::Group),
            "off" => Some(FsyncMode::Off),
            _ => None,
        }
    }
}

/// Log configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// The fsync policy (see [`FsyncMode`]).
    pub fsync: FsyncMode,
    /// Roll to a new segment file once the current one exceeds this size.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: FsyncMode::Group,
            segment_bytes: 1024 * 1024,
        }
    }
}

/// A durability-layer failure. I/O errors carry the failing operation; a log
/// that fails to flush poisons itself — later appends keep returning the
/// error rather than silently dropping records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalError(pub String);

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wal: {}", self.0)
    }
}

impl std::error::Error for WalError {}

fn io_err(what: &str, e: std::io::Error) -> WalError {
    WalError(format!("{what}: {e}"))
}

/// What a scan of an existing log directory found.
#[derive(Debug)]
pub struct Recovery<V> {
    /// Every valid record, in append order across segments.
    pub records: Vec<WalRecord<V>>,
    /// Bytes after the last valid record that were discarded (a torn tail
    /// from a crash mid-write, or corruption): the remainder of the broken
    /// segment plus any segments after it.
    pub discarded_bytes: u64,
}

impl<V> Recovery<V> {
    /// A recovery with nothing in it (fresh log directory).
    #[must_use]
    pub fn empty() -> Recovery<V> {
        Recovery {
            records: Vec::new(),
            discarded_bytes: 0,
        }
    }

    /// The largest commit timestamp recorded anywhere in the log (`Commit`
    /// records and commit `Decision`s). The registry starts the engine clock
    /// past this value, so post-recovery transactions serialize after every
    /// recovered one.
    #[must_use]
    pub fn max_commit_ts(&self) -> Option<Timestamp> {
        self.records
            .iter()
            .filter_map(|record| match record {
                WalRecord::Commit { commit_ts, .. } => *commit_ts,
                WalRecord::Decision { outcome, .. } => *outcome,
                WalRecord::Prepare { .. } => None,
            })
            .max()
    }

    /// Folds the raw record sequence into per-transaction outcomes.
    ///
    /// A `Commit` record is a committed transaction. A `Prepare` followed by
    /// a commit `Decision` is also a committed transaction (at the decided
    /// timestamp); a `Prepare` followed by an abort `Decision` disappears. A
    /// `Prepare` with *no* decision in the log is the interesting crash case
    /// — the participant promised an interval and never learned the outcome
    /// — and is returned in [`ResolvedRecovery::unresolved`] for the
    /// presumed-abort rule to settle.
    #[must_use]
    pub fn resolve(self) -> ResolvedRecovery<V> {
        let mut committed = Vec::new();
        let mut pending: Vec<RecoveredPrepare<V>> = Vec::new();
        for record in self.records {
            match record {
                WalRecord::Commit {
                    id,
                    commit_ts,
                    writes,
                } => committed.push(RecoveredCommit {
                    id,
                    commit_ts,
                    writes,
                }),
                WalRecord::Prepare {
                    id,
                    interval,
                    writes,
                } => pending.push(RecoveredPrepare {
                    id,
                    interval,
                    writes,
                }),
                WalRecord::Decision { id, outcome } => {
                    if let Some(pos) = pending.iter().position(|p| p.id == id) {
                        let prepare = pending.remove(pos);
                        if let Some(ts) = outcome {
                            committed.push(RecoveredCommit {
                                id: prepare.id,
                                commit_ts: Some(ts),
                                writes: prepare.writes,
                            });
                        }
                    }
                }
            }
        }
        ResolvedRecovery {
            committed,
            unresolved: pending,
            discarded_bytes: self.discarded_bytes,
        }
    }
}

/// A committed transaction reconstructed from the log: a `Commit` record, or
/// a `Prepare` whose commit `Decision` was also logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredCommit<V> {
    /// Log-local transaction id.
    pub id: u64,
    /// The commit timestamp, when the engine that logged it had one.
    pub commit_ts: Option<Timestamp>,
    /// The committed write set, last value per key.
    pub writes: Vec<(Key, V)>,
}

/// A `Prepare` record with no logged decision: the participant froze the
/// interval, promised the coordinator it could commit anywhere inside it,
/// and crashed before a decision was logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredPrepare<V> {
    /// Log-local transaction id.
    pub id: u64,
    /// The frozen interval promised to the coordinator.
    pub interval: TsSet,
    /// The prepared write set.
    pub writes: Vec<(Key, V)>,
}

/// [`Recovery::resolve`]: the log's raw records folded into outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedRecovery<V> {
    /// Committed transactions, in log order.
    pub committed: Vec<RecoveredCommit<V>>,
    /// Prepares with no logged decision, in log order.
    pub unresolved: Vec<RecoveredPrepare<V>>,
    /// Copied from [`Recovery::discarded_bytes`].
    pub discarded_bytes: u64,
}

/// Shared state between appenders and the flusher thread.
struct Flush {
    /// Encoded frames not yet handed to the operating system.
    pending: Vec<Vec<u8>>,
    /// Sequence number of the last record appended to `pending`.
    appended_seq: u64,
    /// Sequence number through which records are durable (or, under
    /// `FsyncMode::Off`, written).
    durable_seq: u64,
    /// First flush failure; poisons the log.
    error: Option<WalError>,
    shutdown: bool,
}

/// The current segment file and its rotation bookkeeping. Held under its own
/// mutex so file I/O never blocks appenders that are only buffering.
struct Segments {
    dir: PathBuf,
    file: File,
    index: u64,
    len: u64,
    segment_bytes: u64,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

/// Parses `wal-NNNNNN.log` back into `NNNNNN`.
fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

impl Segments {
    /// Opens segment `index` for appending, writing the header if the file
    /// is new (or shorter than a header — a tail torn inside the header).
    fn open_at(dir: &Path, index: u64, segment_bytes: u64) -> Result<Segments, WalError> {
        let path = segment_path(dir, index);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("opening segment", e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("segment metadata", e))?
            .len();
        let len = if len < SEGMENT_HEADER.len() as u64 {
            file.set_len(0)
                .map_err(|e| io_err("resetting segment", e))?;
            file.write_all(&SEGMENT_HEADER)
                .map_err(|e| io_err("writing segment header", e))?;
            SEGMENT_HEADER.len() as u64
        } else {
            len
        };
        Ok(Segments {
            dir: dir.to_path_buf(),
            file,
            index,
            len,
            segment_bytes,
        })
    }

    /// Appends whole frames, rolling to a fresh segment between frames when
    /// the current one is over budget.
    fn write_frames(&mut self, frames: &[Vec<u8>]) -> Result<(), WalError> {
        for frame in frames {
            if self.len >= self.segment_bytes {
                self.file
                    .sync_data()
                    .map_err(|e| io_err("syncing finished segment", e))?;
                *self = Segments::open_at(&self.dir, self.index + 1, self.segment_bytes)?;
            }
            self.file
                .write_all(frame)
                .map_err(|e| io_err("appending frame", e))?;
            self.len += frame.len() as u64;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data().map_err(|e| io_err("fsync", e))
    }
}

struct Shared {
    flush: Mutex<Flush>,
    /// Wakes the flusher when records are pending or shutdown is requested.
    flusher_wake: Condvar,
    /// Wakes appenders when `durable_seq` advances (or an error lands).
    durable: Condvar,
    segments: Mutex<Segments>,
    fsync: FsyncMode,
}

impl Shared {
    /// Drains `pending` once: writes every buffered frame, syncs when the
    /// policy asks for it, and publishes the new durable sequence number.
    /// Returns `false` when there was nothing to do.
    ///
    /// The segment lock is taken *before* the pending batch, so concurrent
    /// drains (flusher thread plus `Always`-mode appenders) write their
    /// batches in the order they were taken — log order always matches
    /// append order.
    fn flush_once(&self) -> bool {
        let mut segments = self.segments.lock();
        let (frames, last_seq) = {
            let mut flush = self.flush.lock();
            if flush.pending.is_empty() {
                return false;
            }
            (std::mem::take(&mut flush.pending), flush.appended_seq)
        };
        let result = segments.write_frames(&frames).and_then(|()| {
            if self.fsync == FsyncMode::Off {
                Ok(())
            } else {
                segments.sync()
            }
        });
        drop(segments);
        let mut flush = self.flush.lock();
        match result {
            Ok(()) => flush.durable_seq = flush.durable_seq.max(last_seq),
            Err(e) => {
                if flush.error.is_none() {
                    flush.error = Some(e);
                }
            }
        }
        self.durable.notify_all();
        true
    }

    /// Blocks until `durable_seq` covers `seq`, draining batches as needed
    /// (whichever of the flusher thread or this thread gets there first).
    fn wait_durable(&self, seq: u64) -> Result<(), WalError> {
        let mut flush = self.flush.lock();
        loop {
            if let Some(e) = &flush.error {
                return Err(e.clone());
            }
            if flush.durable_seq >= seq {
                return Ok(());
            }
            if flush.pending.is_empty() {
                // `seq` was appended and is no longer pending, so some drain
                // holds the batch containing it; it publishes `durable_seq`
                // under this lock and notifies, so the wait cannot miss it.
                self.durable.wait(&mut flush);
            } else {
                drop(flush);
                self.flush_once();
                flush = self.flush.lock();
            }
        }
    }
}

/// The write-ahead log: a handle for appending records plus the flusher
/// thread that makes them durable. Dropping the log flushes whatever is
/// still buffered (and syncs it, unless the policy is `Off`).
pub struct Wal {
    shared: Arc<Shared>,
    flusher: Option<JoinHandle<()>>,
    /// Source of log-local transaction ids, continuing past recovered ones.
    next_id: AtomicU64,
    /// A temporary log directory whose lifetime is tied to this log (see
    /// [`Wal::retain_dir`]). Declared last: `Drop` drains and joins the
    /// flusher before the directory is removed.
    owned_dir: Option<TempDir>,
}

impl Wal {
    /// Opens (or creates) the log in `dir`: scans existing segments,
    /// truncates any torn tail, deletes segments past the tear, and returns
    /// the writer positioned for appending together with what was recovered.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory or its segments cannot be read,
    /// created or truncated. Corruption is not an error — it ends the scan
    /// and is reported via [`Recovery::discarded_bytes`].
    pub fn open<V: WalValue>(
        dir: &Path,
        options: WalOptions,
    ) -> Result<(Wal, Recovery<V>), WalError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating wal directory", e))?;

        let mut indices: Vec<u64> = std::fs::read_dir(dir)
            .map_err(|e| io_err("listing wal directory", e))?
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| segment_index(&entry.file_name().to_string_lossy()))
            .collect();
        indices.sort_unstable();

        let mut recovery = Recovery::empty();
        let mut last_valid: Option<(u64, u64)> = None; // (segment index, valid length)
        let mut torn = false;
        for (pos, &index) in indices.iter().enumerate() {
            let path = segment_path(dir, index);
            let bytes = {
                let mut buf = Vec::new();
                File::open(&path)
                    .and_then(|mut f| f.read_to_end(&mut buf))
                    .map_err(|e| io_err("reading segment", e))?;
                buf
            };
            if torn || !bytes.starts_with(&SEGMENT_HEADER) {
                // Everything after a tear — and any segment without a valid
                // header — is discarded wholesale.
                recovery.discarded_bytes += bytes.len() as u64;
                torn = true;
                continue;
            }
            let mut offset = SEGMENT_HEADER.len();
            while let Some((record, consumed)) = decode_frame::<V>(&bytes[offset..]) {
                recovery.records.push(record);
                offset += consumed;
            }
            last_valid = Some((index, offset as u64));
            if offset < bytes.len() {
                recovery.discarded_bytes += (bytes.len() - offset) as u64;
                torn = true;
            }
            // A later segment after a clean one continues the scan; `pos`
            // only matters for gap detection, which we treat as a tear.
            if !torn {
                if let Some(&next) = indices.get(pos + 1) {
                    if next != index + 1 {
                        torn = true;
                    }
                }
            }
        }

        // Make the on-disk state match what the scan accepted: truncate the
        // broken tail, drop segments past it.
        if let Some((index, valid_len)) = last_valid {
            let path = segment_path(dir, index);
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err("opening segment for truncation", e))?;
            if file
                .metadata()
                .map_err(|e| io_err("segment metadata", e))?
                .len()
                > valid_len
            {
                file.set_len(valid_len)
                    .map_err(|e| io_err("truncating torn tail", e))?;
                file.sync_data().map_err(|e| io_err("fsync", e))?;
            }
            for &later in indices.iter().filter(|&&i| i > index) {
                std::fs::remove_file(segment_path(dir, later))
                    .map_err(|e| io_err("removing segment past a tear", e))?;
            }
        } else {
            for &index in &indices {
                std::fs::remove_file(segment_path(dir, index))
                    .map_err(|e| io_err("removing unreadable segment", e))?;
            }
        }

        let start_index = last_valid.map_or(1, |(index, _)| index);
        let segments = Segments::open_at(dir, start_index, options.segment_bytes.max(64))?;
        let shared = Arc::new(Shared {
            flush: Mutex::named(
                "wal.flush",
                82,
                Flush {
                    pending: Vec::new(),
                    appended_seq: 0,
                    durable_seq: 0,
                    error: None,
                    shutdown: false,
                },
            ),
            flusher_wake: Condvar::new(),
            durable: Condvar::new(),
            segments: Mutex::named("wal.segments", 80, segments),
            fsync: options.fsync,
        });
        let flusher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mvtl-wal-flusher".into())
                .spawn(move || loop {
                    {
                        let mut flush = shared.flush.lock();
                        while flush.pending.is_empty() && !flush.shutdown {
                            shared.flusher_wake.wait(&mut flush);
                        }
                        if flush.pending.is_empty() && flush.shutdown {
                            return;
                        }
                    }
                    shared.flush_once();
                })
                .map_err(|e| WalError(format!("spawning flusher: {e}")))?
        };
        let max_seen_id = recovery.records.iter().map(WalRecord::id).max();
        Ok((
            Wal {
                shared,
                flusher: Some(flusher),
                next_id: AtomicU64::new(max_seen_id.map_or(1, |m| m + 1)),
                owned_dir: None,
            },
            recovery,
        ))
    }

    /// Ties the lifetime of a temporary log directory to this log: the
    /// directory is removed once the log has drained and shut down. Used by
    /// the registry's `wal=tmp` mode, where the log should leave nothing
    /// behind when its engine is dropped.
    pub fn retain_dir(&mut self, dir: TempDir) {
        self.owned_dir = Some(dir);
    }

    /// A fresh log-local transaction id (unique within this log's lifetime,
    /// continuing past ids seen during recovery).
    #[must_use]
    pub fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The configured fsync policy.
    #[must_use]
    pub fn fsync_mode(&self) -> FsyncMode {
        self.shared.fsync
    }

    /// Appends `record`, acknowledging according to the fsync policy: under
    /// `Always` and `Group` the record is durable when this returns; under
    /// `Off` it has merely been buffered.
    ///
    /// # Errors
    ///
    /// Returns the first flush failure once the log is poisoned; the record
    /// may or may not have reached the disk in that case.
    pub fn append<V: WalValue>(&self, record: &WalRecord<V>) -> Result<(), WalError> {
        let frame = record.encode_frame();
        assert!(
            frame.len() as u64 <= 8 + u64::from(MAX_PAYLOAD),
            "record exceeds the frame cap"
        );
        let seq = {
            let mut flush = self.shared.flush.lock();
            if let Some(e) = &flush.error {
                return Err(e.clone());
            }
            flush.appended_seq += 1;
            flush.pending.push(frame);
            flush.appended_seq
        };
        match self.shared.fsync {
            FsyncMode::Off => {
                self.shared.flusher_wake.notify_one();
                Ok(())
            }
            FsyncMode::Always => {
                // Inline write + sync on the appending thread; concurrent
                // appenders' pending records ride along in the same drain.
                self.shared.wait_durable(seq)
            }
            FsyncMode::Group => {
                self.shared.flusher_wake.notify_one();
                self.shared.wait_durable(seq)
            }
        }
    }

    /// Blocks until everything appended so far is written (and synced,
    /// unless the policy is `Off`).
    ///
    /// # Errors
    ///
    /// Returns the first flush failure when the log is poisoned.
    pub fn sync(&self) -> Result<(), WalError> {
        let target = {
            let flush = self.shared.flush.lock();
            if let Some(e) = &flush.error {
                return Err(e.clone());
            }
            flush.appended_seq
        };
        self.shared.wait_durable(target)
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut flush = self.shared.flush.lock();
            flush.shutdown = true;
        }
        self.shared.flusher_wake.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
        // The flusher exits as soon as it sees the shutdown flag with an
        // empty queue; anything raced in after its last drain is flushed
        // here so a graceful drop never loses buffered records.
        while self.shared.flush_once() {}
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let flush = self.shared.flush.lock();
        f.debug_struct("Wal")
            .field("fsync", &self.shared.fsync)
            .field("appended_seq", &flush.appended_seq)
            .field("durable_seq", &flush.durable_seq)
            .field("poisoned", &flush.error.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_common::{Key, TempDir, Timestamp};

    fn commit(id: u64, key: u64, value: u64) -> WalRecord<u64> {
        WalRecord::Commit {
            id,
            commit_ts: Some(Timestamp::new(id, 0)),
            writes: vec![(Key(key), value)],
        }
    }

    fn reopen(dir: &Path, options: WalOptions) -> (Wal, Recovery<u64>) {
        Wal::open::<u64>(dir, options).expect("log opens")
    }

    #[test]
    fn append_then_recover_roundtrip() {
        for fsync in [FsyncMode::Always, FsyncMode::Group, FsyncMode::Off] {
            let dir = TempDir::new("wal-roundtrip");
            let options = WalOptions {
                fsync,
                ..WalOptions::default()
            };
            let (wal, recovery) = reopen(dir.path(), options);
            assert!(recovery.records.is_empty());
            assert_eq!(recovery.discarded_bytes, 0);
            for i in 1..=10u64 {
                wal.append(&commit(i, i, i * 100)).unwrap();
            }
            drop(wal);

            let (_wal, recovery) = reopen(dir.path(), options);
            assert_eq!(recovery.records.len(), 10, "fsync={fsync:?}");
            assert_eq!(recovery.discarded_bytes, 0);
            assert_eq!(recovery.records[4], commit(5, 5, 500));
        }
    }

    #[test]
    fn fresh_ids_continue_past_recovered_ones() {
        let dir = TempDir::new("wal-ids");
        let (wal, _) = reopen(dir.path(), WalOptions::default());
        assert_eq!(wal.fresh_id(), 1);
        wal.append(&commit(7, 1, 1)).unwrap();
        drop(wal);
        let (wal, _) = reopen(dir.path(), WalOptions::default());
        assert_eq!(wal.fresh_id(), 8, "ids must not collide with the log");
    }

    #[test]
    fn group_commit_batches_concurrent_appenders() {
        let dir = TempDir::new("wal-group");
        let (wal, _) = reopen(
            dir.path(),
            WalOptions {
                fsync: FsyncMode::Group,
                ..WalOptions::default()
            },
        );
        let wal = std::sync::Arc::new(wal);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let wal = std::sync::Arc::clone(&wal);
                scope.spawn(move || {
                    for i in 0..25u64 {
                        wal.append(&commit(t * 100 + i + 1, t, i)).unwrap();
                    }
                });
            }
        });
        drop(std::sync::Arc::try_unwrap(wal).expect("sole owner"));
        let (_wal, recovery) = reopen(dir.path(), WalOptions::default());
        assert_eq!(recovery.records.len(), 200);
    }

    #[test]
    fn segments_roll_and_recover_in_order() {
        let dir = TempDir::new("wal-segments");
        let options = WalOptions {
            fsync: FsyncMode::Group,
            segment_bytes: 128, // tiny: force many rolls
        };
        let (wal, _) = reopen(dir.path(), options);
        for i in 1..=50u64 {
            wal.append(&commit(i, i, i)).unwrap();
        }
        drop(wal);
        let segment_files = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| segment_index(&e.file_name().to_string_lossy()).is_some())
            .count();
        assert!(segment_files > 1, "tiny segments must have rolled");
        let (_wal, recovery) = reopen(dir.path(), options);
        assert_eq!(recovery.records.len(), 50);
        let ids: Vec<u64> = recovery.records.iter().map(WalRecord::id).collect();
        assert_eq!(ids, (1..=50).collect::<Vec<_>>(), "append order preserved");
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = TempDir::new("wal-torn");
        let (wal, _) = reopen(dir.path(), WalOptions::default());
        for i in 1..=5u64 {
            wal.append(&commit(i, i, i)).unwrap();
        }
        drop(wal);

        // Tear the last record in half, as a crash mid-write would.
        let path = segment_path(dir.path(), 1);
        let bytes = std::fs::read(&path).unwrap();
        let torn_len = bytes.len() - 7;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(torn_len as u64).unwrap();
        drop(file);

        let (wal, recovery) = reopen(dir.path(), WalOptions::default());
        assert_eq!(recovery.records.len(), 4, "the torn record is gone");
        assert!(recovery.discarded_bytes > 0);
        // The tail was truncated: appending continues from a valid log.
        wal.append(&commit(99, 9, 9)).unwrap();
        drop(wal);
        let (_wal, recovery) = reopen(dir.path(), WalOptions::default());
        assert_eq!(recovery.records.len(), 5);
        assert_eq!(recovery.discarded_bytes, 0);
        assert_eq!(recovery.records[4].id(), 99);
    }

    #[test]
    fn checksum_flip_stops_the_scan_without_panicking() {
        let dir = TempDir::new("wal-flip");
        let (wal, _) = reopen(dir.path(), WalOptions::default());
        for i in 1..=5u64 {
            wal.append(&commit(i, i, i)).unwrap();
        }
        drop(wal);

        let path = segment_path(dir.path(), 1);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the third record's frame.
        let frame_len = commit(1, 1, 1).encode_frame().len();
        let offset = SEGMENT_HEADER.len() + 2 * frame_len + 10;
        bytes[offset] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_wal, recovery) = reopen(dir.path(), WalOptions::default());
        assert_eq!(
            recovery.records.len(),
            2,
            "scan stops at the corrupted record"
        );
        let expected_discard = (bytes.len() - SEGMENT_HEADER.len() - 2 * frame_len) as u64;
        assert_eq!(recovery.discarded_bytes, expected_discard);
    }

    #[test]
    fn corruption_in_an_early_segment_discards_later_segments() {
        let dir = TempDir::new("wal-cascade");
        let options = WalOptions {
            fsync: FsyncMode::Group,
            segment_bytes: 128,
        };
        let (wal, _) = reopen(dir.path(), options);
        for i in 1..=50u64 {
            wal.append(&commit(i, i, i)).unwrap();
        }
        drop(wal);

        // Corrupt the first record of segment 2: segment 1 replays, the rest
        // of segment 2 and all later segments are discarded.
        let path = segment_path(dir.path(), 2);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[SEGMENT_HEADER.len() + 4] ^= 0xFF; // checksum byte of frame 1
        std::fs::write(&path, &bytes).unwrap();

        let (_wal, recovery) = reopen(dir.path(), options);
        let recovered = recovery.records.len() as u64;
        assert!(recovered > 0 && recovered < 50);
        let ids: Vec<u64> = recovery.records.iter().map(WalRecord::id).collect();
        assert_eq!(ids, (1..=recovered).collect::<Vec<_>>());
        assert!(recovery.discarded_bytes > 0);
        // Later segments were deleted; the next open is clean.
        let (_wal, recovery) = reopen(dir.path(), options);
        assert_eq!(recovery.records.len() as u64, recovered);
        assert_eq!(recovery.discarded_bytes, 0);
    }

    #[test]
    fn sync_waits_for_buffered_records_under_fsync_off() {
        let dir = TempDir::new("wal-off-sync");
        let options = WalOptions {
            fsync: FsyncMode::Off,
            ..WalOptions::default()
        };
        let (wal, _) = reopen(dir.path(), options);
        for i in 1..=20u64 {
            wal.append(&commit(i, i, i)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (_wal, recovery) = reopen(dir.path(), options);
        assert_eq!(recovery.records.len(), 20);
    }
}
