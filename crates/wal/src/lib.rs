//! # mvtl-wal
//!
//! The durability subsystem: an append-only, length-prefixed, checksummed
//! write-ahead log with group commit, plus the wrappers that bolt it onto
//! the workspace's engines.
//!
//! * [`record`] — log records ([`WalRecord`]: commit / prepare / decision)
//!   and their framed on-disk encoding (`[len][crc32][payload]`, the same
//!   idiom as the server wire protocol).
//! * [`log`] — the segmented log itself: [`Wal`] appends with an fsync
//!   policy ([`FsyncMode`]: `always` / `group` / `off`), a flusher thread
//!   batches concurrent appends into one fsync (group commit), and
//!   [`Wal::open`] scans existing segments on startup, stopping at the
//!   first torn or corrupted frame and truncating the tail.
//! * [`engine`] — [`WalEngine`], a [`mvtl_common::TransactionalKV`] wrapper
//!   logging every commit's write set after the inner engine commits and
//!   acknowledging only once the record is durable; on open it replays the
//!   log into the inner engine via
//!   [`mvtl_common::TransactionalKV::recover_install`].
//! * [`backend`] — [`WalBackend`], the same decoration for one shard of the
//!   cross-shard protocol: prepares and coordinator decisions are logged
//!   durably *before* they are acknowledged, so presumed-abort recovery
//!   gives every prepared sub-transaction exactly one decision across a
//!   crash.
//!
//! # Example
//!
//! ```
//! use mvtl_common::{Key, Timestamp, TempDir};
//! use mvtl_wal::{FsyncMode, Wal, WalOptions, WalRecord};
//!
//! let dir = TempDir::new("wal-doc");
//! let (wal, recovered) = Wal::open::<u64>(dir.path(), WalOptions::default()).unwrap();
//! assert!(recovered.records.is_empty());
//! wal.append(&WalRecord::Commit {
//!     id: wal.fresh_id(),
//!     commit_ts: Some(Timestamp::new(7, 0)),
//!     writes: vec![(Key(1), 42u64)],
//! })
//! .unwrap(); // durable on return: the default policy is group commit
//! drop(wal);
//!
//! let (_wal, recovered) = Wal::open::<u64>(dir.path(), WalOptions::default()).unwrap();
//! assert_eq!(recovered.records.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod engine;
pub mod log;
pub mod record;

pub use backend::WalBackend;
pub use engine::{RecoveryReport, WalEngine, WalTxn};
pub use log::{
    FsyncMode, RecoveredCommit, RecoveredPrepare, Recovery, ResolvedRecovery, Wal, WalError,
    WalOptions,
};
pub use record::{crc32, WalRecord, WalValue};
