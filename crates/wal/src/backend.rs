//! [`WalBackend`]: per-shard durability for the §7 cross-shard protocol.
//!
//! Each shard of a [`ShardedStore`](mvtl_shard::ShardedStore) wears its own
//! `WalBackend`, so shards log (and fsync) independently — exactly as
//! separate servers would. The protocol-critical ordering rules live here:
//!
//! * a **prepare** is logged durably *before* it is acknowledged to the
//!   coordinator — a promise the shard must remember across a crash;
//! * the coordinator's **commit decision** is logged durably *before* the
//!   versions are installed — once decided, the outcome must not flip;
//! * **aborts log a decision record** too (without blocking on it), but a
//!   missing decision already means abort: that is the presumed-abort rule,
//!   and it is what [`WalBackend::attach`] applies to any prepare whose
//!   decision never reached the log — the recovered prepared state gets
//!   exactly one decision (an abort), which is then logged.

use crate::engine::{buffer_write, RecoveryReport};
use crate::log::{Recovery, Wal, WalError, WalOptions};
use crate::record::{WalRecord, WalValue};
use mvtl_common::{CommitInfo, Key, ProcessId, StoreStats, Timestamp, TsSet, TxError};
use mvtl_shard::{PreparedShardTxn, ShardBackend, ShardTxn};
use std::path::Path;
use std::sync::Arc;

/// A write-ahead-logged shard: decorates any [`ShardBackend`] with durable
/// commit, prepare and decision records.
pub struct WalBackend<V> {
    inner: Arc<dyn ShardBackend<V>>,
    wal: Arc<Wal>,
}

impl<V> WalBackend<V>
where
    V: WalValue + Clone + Send + Sync + 'static,
{
    /// Opens (or creates) this shard's log in `dir`, replays committed
    /// transactions into `inner` (which must be freshly built), resolves
    /// undecided prepares by presumed abort, and returns the decorated
    /// shard.
    ///
    /// # Errors
    ///
    /// Returns an error when the log cannot be opened or the shard rejects a
    /// replay.
    pub fn attach(
        inner: Arc<dyn ShardBackend<V>>,
        dir: &Path,
        options: WalOptions,
    ) -> Result<(Arc<dyn ShardBackend<V>>, RecoveryReport), WalError> {
        let (wal, recovery) = Wal::open::<V>(dir, options)?;
        Self::with_recovery(inner, wal, recovery)
    }

    /// Like [`WalBackend::attach`], but over a log the caller already opened
    /// (the registry opens every shard's log first to learn the recovered
    /// clock watermark).
    ///
    /// # Errors
    ///
    /// Returns an error when the shard rejects a replay.
    pub fn with_recovery(
        inner: Arc<dyn ShardBackend<V>>,
        wal: Wal,
        recovery: Recovery<V>,
    ) -> Result<(Arc<dyn ShardBackend<V>>, RecoveryReport), WalError> {
        let resolved = recovery.resolve();
        let mut report = RecoveryReport {
            committed: resolved.committed.len(),
            aborted_prepares: 0,
            discarded_bytes: resolved.discarded_bytes,
        };
        for commit in resolved.committed {
            let ts = commit.commit_ts.ok_or_else(|| {
                WalError(format!(
                    "commit record {} in a shard log has no timestamp",
                    commit.id
                ))
            })?;
            inner
                .recover_commit(commit.writes, ts)
                .map_err(|e| WalError(format!("replaying commit {}: {e}", commit.id)))?;
        }
        for prepare in resolved.unresolved {
            // Presumed abort: the coordinator that could still decide this
            // prepare died with the crash, so the re-created prepared state
            // gets its one decision — an abort — and the decision is logged
            // so the next recovery sees the prepare as settled.
            if let Ok(recovered) = inner.recover_prepared(prepare.writes, &prepare.interval) {
                recovered.abort();
            }
            wal.append::<V>(&WalRecord::Decision {
                id: prepare.id,
                outcome: None,
            })?;
            report.aborted_prepares += 1;
        }
        Ok((
            Arc::new(WalBackend {
                inner,
                wal: Arc::new(wal),
            }),
            report,
        ))
    }
}

impl<V> ShardBackend<V> for WalBackend<V>
where
    V: WalValue + Clone + Send + Sync + 'static,
{
    fn begin(&self, process: ProcessId, pinned: Option<Timestamp>) -> Box<dyn ShardTxn<V>> {
        Box::new(WalShardTxn {
            inner: self.inner.begin(process, pinned),
            wal: Arc::clone(&self.wal),
            writes: Vec::new(),
        })
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        self.inner.purge_below(bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        self.inner.low_watermark()
    }

    fn recover_commit(&self, writes: Vec<(Key, V)>, commit_ts: Timestamp) -> Result<(), TxError> {
        // State recovered from elsewhere must survive this log's next crash
        // too, so it is logged here as well.
        self.inner.recover_commit(writes.clone(), commit_ts)?;
        self.wal
            .append(&WalRecord::Commit {
                id: self.wal.fresh_id(),
                commit_ts: Some(commit_ts),
                writes,
            })
            .map_err(|e| TxError::Internal(format!("recovery applied but not logged: {e}")))?;
        Ok(())
    }

    fn recover_prepared(
        &self,
        writes: Vec<(Key, V)>,
        interval: &TsSet,
    ) -> Result<Box<dyn PreparedShardTxn<V>>, TxError> {
        let prepared = self.inner.recover_prepared(writes.clone(), interval)?;
        let id = self.wal.fresh_id();
        if let Err(e) = self.wal.append(&WalRecord::Prepare {
            id,
            interval: prepared.interval().clone(),
            writes,
        }) {
            prepared.abort();
            return Err(TxError::Internal(format!("prepare not logged: {e}")));
        }
        Ok(Box::new(WalPrepared {
            inner: prepared,
            wal: Arc::clone(&self.wal),
            id,
        }))
    }
}

/// [`ShardTxn`] decorator: captures the write set and logs the outcome.
struct WalShardTxn<V> {
    inner: Box<dyn ShardTxn<V>>,
    wal: Arc<Wal>,
    writes: Vec<(Key, V)>,
}

impl<V> ShardTxn<V> for WalShardTxn<V>
where
    V: WalValue + Clone + Send + Sync + 'static,
{
    fn read(&mut self, key: Key) -> Result<Option<V>, TxError> {
        self.inner.read(key)
    }

    fn write(&mut self, key: Key, value: V) -> Result<(), TxError> {
        self.inner.write(key, value.clone())?;
        buffer_write(&mut self.writes, key, value);
        Ok(())
    }

    fn read_many(&mut self, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        self.inner.read_many(keys)
    }

    fn write_many(&mut self, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        self.inner.write_many(entries.clone())?;
        for (key, value) in entries {
            buffer_write(&mut self.writes, key, value);
        }
        Ok(())
    }

    fn commit(self: Box<Self>) -> Result<CommitInfo, TxError> {
        let WalShardTxn { inner, wal, writes } = *self;
        let info = inner.commit()?;
        if !writes.is_empty() {
            wal.append(&WalRecord::Commit {
                id: wal.fresh_id(),
                commit_ts: info.commit_ts,
                writes,
            })
            .map_err(|e| TxError::Internal(format!("commit applied but not logged: {e}")))?;
        }
        Ok(info)
    }

    fn prepare(self: Box<Self>) -> Result<Box<dyn PreparedShardTxn<V>>, TxError> {
        let WalShardTxn { inner, wal, writes } = *self;
        let prepared = inner.prepare()?;
        let id = wal.fresh_id();
        // The promise must be durable before the coordinator hears it: a
        // shard that answers "prepared" and then forgets would let the
        // coordinator commit a transaction some participant lost.
        if let Err(e) = wal.append(&WalRecord::Prepare {
            id,
            interval: prepared.interval().clone(),
            writes,
        }) {
            prepared.abort();
            return Err(TxError::Internal(format!("prepare not logged: {e}")));
        }
        Ok(Box::new(WalPrepared {
            inner: prepared,
            wal,
            id,
        }))
    }

    fn abort(self: Box<Self>) {
        // Nothing to log: absent from the log means aborted.
        self.inner.abort();
    }
}

/// [`PreparedShardTxn`] decorator: the decision is durable before it takes
/// effect.
struct WalPrepared<V> {
    inner: Box<dyn PreparedShardTxn<V>>,
    wal: Arc<Wal>,
    id: u64,
}

impl<V> PreparedShardTxn<V> for WalPrepared<V>
where
    V: WalValue + Clone + Send + Sync + 'static,
{
    fn interval(&self) -> &TsSet {
        self.inner.interval()
    }

    fn commit_at(self: Box<Self>, ts: Timestamp) -> Result<CommitInfo, TxError> {
        let WalPrepared { inner, wal, id } = *self;
        if !inner.interval().contains(ts) {
            // A coordinator bug: let the inner shard produce its abort-and-
            // error path, and log nothing — presumed abort covers it.
            return inner.commit_at(ts);
        }
        // Decision before effect: once the commit record is durable the
        // outcome cannot flip, even if the crash lands between here and the
        // install (recovery replays prepare + decision as a commit).
        wal.append::<V>(&WalRecord::Decision {
            id,
            outcome: Some(ts),
        })
        .map_err(|e| TxError::Internal(format!("commit decision not logged: {e}")))?;
        inner.commit_at(ts)
    }

    fn abort(self: Box<Self>) {
        // Best effort: a logged abort lets recovery skip re-preparing, but a
        // missing one is still an abort (presumed abort).
        let _ = self.wal.append::<V>(&WalRecord::Decision {
            id: self.id,
            outcome: None,
        });
        self.inner.abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_clock::GlobalClock;
    use mvtl_common::{TempDir, TsRange};
    use mvtl_core::policy::MvtilPolicy;
    use mvtl_core::MvtlConfig;
    use mvtl_shard::MvtlBackend;

    fn fresh_inner() -> Arc<dyn ShardBackend<u64>> {
        MvtlBackend::build(
            MvtilPolicy::early(1000),
            Arc::new(GlobalClock::new()),
            MvtlConfig::default(),
        )
    }

    fn attach(dir: &Path) -> (Arc<dyn ShardBackend<u64>>, RecoveryReport) {
        WalBackend::attach(fresh_inner(), dir, WalOptions::default()).expect("attach")
    }

    fn read_committed(shard: &Arc<dyn ShardBackend<u64>>, key: Key) -> Option<u64> {
        let mut txn = shard.begin(ProcessId(9), None);
        let value = txn.read(key).expect("read");
        txn.commit().expect("read-only commit");
        value
    }

    #[test]
    fn decided_prepare_commits_across_a_crash() {
        let dir = TempDir::new("backend-decided");
        let (shard, _) = attach(dir.path());
        let mut txn = shard.begin(ProcessId(0), None);
        txn.write(Key(1), 10).unwrap();
        let prepared = txn.prepare().unwrap();
        let ts = prepared.interval().min().unwrap();
        prepared.commit_at(ts).unwrap();
        drop(shard); // crash after the decision was logged

        let (shard, report) = attach(dir.path());
        assert_eq!(report.committed, 1);
        assert_eq!(report.aborted_prepares, 0);
        assert_eq!(read_committed(&shard, Key(1)), Some(10));
    }

    #[test]
    fn undecided_prepare_resolves_to_exactly_one_abort() {
        let dir = TempDir::new("backend-undecided");
        let (shard, _) = attach(dir.path());
        let mut txn = shard.begin(ProcessId(0), None);
        txn.write(Key(1), 10).unwrap();
        let prepared = txn.prepare().unwrap();
        // Crash between prepare and decision: the coordinator never answers.
        std::mem::forget(prepared);
        drop(shard);

        let (shard, report) = attach(dir.path());
        assert_eq!(report.committed, 0);
        assert_eq!(report.aborted_prepares, 1, "presumed abort, once");
        assert_eq!(read_committed(&shard, Key(1)), None);
        drop(shard);

        // The abort decision reached the log: a third open has nothing left
        // to resolve.
        let (shard, report) = attach(dir.path());
        assert_eq!(report.aborted_prepares, 0);
        assert_eq!(read_committed(&shard, Key(1)), None);
    }

    #[test]
    fn logged_abort_decision_settles_the_prepare() {
        let dir = TempDir::new("backend-aborted");
        let (shard, _) = attach(dir.path());
        let mut txn = shard.begin(ProcessId(0), None);
        txn.write(Key(1), 10).unwrap();
        let prepared = txn.prepare().unwrap();
        prepared.abort();
        drop(shard);

        let (shard, report) = attach(dir.path());
        assert_eq!(report.committed, 0);
        assert_eq!(
            report.aborted_prepares, 0,
            "the decision was already logged"
        );
        assert_eq!(read_committed(&shard, Key(1)), None);
    }

    #[test]
    fn recovered_prepared_state_holds_its_locks() {
        let dir = TempDir::new("backend-holds");
        let (shard, _) = attach(dir.path());
        let recovered = shard
            .recover_prepared(
                vec![(Key(1), 10)],
                &TsSet::from_range(TsRange::new(Timestamp::at(5), Timestamp::at(9))),
            )
            .unwrap();
        // While the recovered prepare is live, its interval is frozen: a
        // second prepare over the same key cannot intersect it.
        let mut rival = shard.begin(ProcessId(1), Some(Timestamp::at(5)));
        rival.write(Key(1), 99).unwrap();
        // An outright prepare failure (fully blocked) is fine too.
        if let Ok(prepared) = rival.prepare() {
            assert!(
                prepared.interval().min().unwrap() > Timestamp::at(9),
                "rival may only prepare above the recovered interval"
            );
            prepared.abort();
        }
        recovered.commit_at(Timestamp::at(7)).unwrap();
        drop(shard);

        let (shard, report) = attach(dir.path());
        assert_eq!(report.committed, 1);
        assert_eq!(read_committed(&shard, Key(1)), Some(10));
    }
}
