//! # mvtl-bench
//!
//! Benchmark harness for the MVTL reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Criterion benches** (`benches/`): micro-benchmarks of the lock table and
//!   the centralized engines, plus one bench per figure of the paper that runs
//!   a smoke-scale version of the corresponding experiment so that regressions
//!   in the simulated protocols are caught by `cargo bench`.
//! * **Figure binaries** (`src/bin/fig1.rs` … `fig7.rs`, `ablation.rs`): print
//!   the full data series for each figure. Pass `--paper` for paper-scale
//!   parameter sweeps, `--smoke` for the smallest runs; the default is the
//!   `Quick` scale.
//!
//! ```bash
//! cargo run -p mvtl-bench --release --bin fig1            # quick sweep
//! cargo run -p mvtl-bench --release --bin fig1 -- --paper # paper-scale sweep
//! cargo bench -p mvtl-bench                               # all benches
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mvtl_workload::Scale;

/// Parses the common command-line convention of the figure binaries.
///
/// `--paper` selects paper-scale sweeps, `--smoke` the smallest runs; anything
/// else (including no argument) selects the quick scale.
#[must_use]
pub fn scale_from_args<I: IntoIterator<Item = String>>(args: I) -> Scale {
    let mut scale = Scale::Quick;
    for arg in args {
        match arg.as_str() {
            "--paper" => scale = Scale::Paper,
            "--smoke" => scale = Scale::Smoke,
            _ => {}
        }
    }
    scale
}

/// Parses the workload RNG seed from the command line: `--seed N` or
/// `--seed=N`, falling back to `default` when absent or unparsable.
///
/// The figure/soak/report binaries thread this seed into every
/// `RunnerOptions`/`SoakOptions` they build, so CI smoke runs are exactly
/// reproducible across reruns (`--seed 42` twice generates the same
/// transaction streams).
#[must_use]
pub fn seed_from_args<I: IntoIterator<Item = String>>(args: I, default: u64) -> u64 {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--seed" {
            if let Some(seed) = args.next().and_then(|v| v.parse().ok()) {
                return seed;
            }
        } else if let Some(value) = arg.strip_prefix("--seed=") {
            if let Ok(seed) = value.parse() {
                return seed;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scales() {
        assert_eq!(scale_from_args(Vec::<String>::new()), Scale::Quick);
        assert_eq!(scale_from_args(vec!["--paper".to_string()]), Scale::Paper);
        assert_eq!(scale_from_args(vec!["--smoke".to_string()]), Scale::Smoke);
        assert_eq!(
            scale_from_args(vec!["fig1".to_string(), "--paper".to_string()]),
            Scale::Paper
        );
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_seeds() {
        assert_eq!(seed_from_args(Vec::<String>::new(), 42), 42);
        assert_eq!(seed_from_args(strings(&["--seed", "7"]), 42), 7);
        assert_eq!(seed_from_args(strings(&["--seed=123"]), 42), 123);
        assert_eq!(
            seed_from_args(strings(&["--smoke", "--seed", "9"]), 42),
            9,
            "seed parses alongside scale flags"
        );
        assert_eq!(seed_from_args(strings(&["--seed", "pear"]), 42), 42);
        assert_eq!(seed_from_args(strings(&["--seed"]), 42), 42);
    }
}
