//! Produces the machine-readable benchmark artifact `BENCH_<scale>.json`.
//!
//! Runs the registry engine grid — every `mvtl_registry::all_specs()` engine
//! under uniform and zipf(0.99) key skew, once op-by-op and once batched —
//! through the threaded closed-loop runner, serializes the versioned
//! `BenchReport` to JSON, and **validates the artifact** before exiting:
//! the JSON must parse back into an identical report (the serde-shim
//! round-trip), every engine must appear in every grid cell, and the
//! batched run of the reference `mvtil-early` engine must not be slower
//! than its op-by-op twin on the dedup-friendly micro workload. Any
//! violation exits non-zero, so CI catches both batching regressions and
//! schema drift.
//!
//! Pass `--smoke` / `--paper` for the grid scale (default quick) and
//! `--seed N` for reproducible reruns. The artifact is written to the
//! current directory; CI uploads it with `actions/upload-artifact`.
//!
//! **Perf-regression gate**: `--baseline BENCH_smoke.json` loads a blessed
//! artifact *before* the run (the run overwrites the file), matches every
//! closed-loop cell by `(spec, engine, mode, dist, batch, clients)`, prints
//! the per-cell delta table, and exits non-zero if any matched cell's
//! throughput dropped more than 20% ([`mvtl_workload::BASELINE_ALLOWED_DROP`])
//! below what the baseline's own bless run could reproduce — its slowest
//! best-of-N round, via the recorded `round_spread`, so a timeout-quantized
//! cell is not held to its luckiest draw. A cell that appears regressed is
//! re-measured (up to
//! three confirmation passes, keeping the best number) before the gate
//! fails: closed-loop noise is one-sided, so a drop that clears on a retry
//! was noise while a structural regression reproduces on every pass. To
//! bless a new baseline, commit the regenerated `BENCH_<scale>.json` the
//! run just wrote.

use mvtl_workload::{
    bench_report, check_bench_report, compare_to_baseline, confirm_regressions, run_closed_loop,
    run_grid_cell, BenchReport, ReportOptions, RunnerOptions, Scale, WorkloadSpec,
    BASELINE_ALLOWED_DROP,
};
use std::time::Duration;

/// Parses `--baseline PATH` and loads the blessed report, panicking (exit
/// non-zero, the CI behaviour) when the file is missing or does not parse —
/// a perf gate that silently skips comparison is worse than none.
fn baseline_from_args<I: IntoIterator<Item = String>>(args: I) -> Option<BenchReport> {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--baseline" {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("--baseline requires a path"));
            let raw = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
            let report = BenchReport::from_json_str(&raw)
                .unwrap_or_else(|e| panic!("baseline {path} does not parse: {e}"));
            return Some(report);
        }
    }
    None
}

/// Best-of-3 closed-loop throughput of `spec` on the dedup-friendly micro
/// workload (32 reads per transaction, zipf(1.2) over 64 keys, one client —
/// batches full of repeated keys, no contention noise).
fn micro_tps(spec: &str, batch: usize, seed: u64) -> f64 {
    let engine = mvtl_registry::build(spec).expect("micro-bench spec must build");
    (0..3)
        .map(|round| {
            run_closed_loop(
                engine.as_ref(),
                &RunnerOptions {
                    clients: 1,
                    duration: Duration::from_millis(150),
                    spec: WorkloadSpec::new(32, 0.0, 64)
                        .with_zipf(1.2)
                        .with_batch(batch),
                    seed: seed ^ round,
                },
                |v| v,
            )
            .throughput_tps()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let seed = mvtl_bench::seed_from_args(std::env::args().skip(1), 42);
    // Load the blessed baseline *before* running: the run overwrites the
    // artifact file the baseline usually lives in.
    let baseline = baseline_from_args(std::env::args().skip(1));
    let name = match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    };
    let options = ReportOptions {
        scale,
        seed,
        ..ReportOptions::default()
    };

    let mut report = bench_report(name, &options);
    report.dedupe_rows();
    print!("{}", report.render());
    check_bench_report(&report, &options);

    // Serialize, persist, and prove the artifact round-trips through the
    // serde shim: the file on disk must parse back into an identical report.
    let rendered = report.to_json_string();
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    let reread = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let parsed = BenchReport::from_json_str(&reread)
        .unwrap_or_else(|e| panic!("{path} does not parse back: {e}"));
    assert_eq!(parsed, report, "{path}: JSON round-trip changed the report");
    println!(
        "# wrote {path} ({} rows, schema v{})",
        report.rows.len(),
        report.schema_version
    );

    // Perf-regression gate: every closed-loop cell matched against the
    // blessed baseline must keep at least (1 - allowed_drop) of its
    // throughput. The full delta table prints either way, so every speedup
    // is a tracked number, not just the failures.
    if let Some(baseline) = &baseline {
        let mut cmp = compare_to_baseline(&report, baseline);
        print!("{}", cmp.render(BASELINE_ALLOWED_DROP));
        if !cmp.regressions(BASELINE_ALLOWED_DROP).is_empty() {
            // Noise filter: closed-loop noise is one-sided (a cell can only
            // measure below its capacity), so re-measure the flagged cells —
            // a drop that clears on a retry was noise, a structural
            // regression reproduces on every pass.
            cmp = confirm_regressions(&mut report, baseline, BASELINE_ALLOWED_DROP, 3, |row| {
                println!(
                    "# re-measuring {} ({}, batch {}) to confirm the regression",
                    row.spec, row.dist, row.batch
                );
                let dist = options
                    .dists
                    .iter()
                    .copied()
                    .find(|d| d.label() == row.dist)
                    .unwrap_or_else(|| panic!("regressed cell has unknown dist {:?}", row.dist));
                run_grid_cell(&row.spec, dist, row.batch, &options)
            });
            // The artifact must carry the confirmed numbers.
            let rendered = report.to_json_string();
            std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("rewriting {path}: {e}"));
            print!("{}", cmp.render(BASELINE_ALLOWED_DROP));
        }
        let regressions = cmp.regressions(BASELINE_ALLOWED_DROP);
        assert!(
            regressions.is_empty(),
            "{} cell(s) regressed more than {:.0}% against the baseline: {}",
            regressions.len(),
            BASELINE_ALLOWED_DROP * 100.0,
            regressions
                .iter()
                .map(|d| format!(
                    "{} ({}, batch {}): {:.2}x",
                    d.spec,
                    d.dist,
                    d.batch,
                    d.ratio()
                ))
                .collect::<Vec<_>>()
                .join("; ")
        );
        println!(
            "# baseline gate passed: {} matched cells within {:.0}% of their slowest \
             blessed round",
            cmp.deltas.len(),
            BASELINE_ALLOWED_DROP * 100.0
        );
    }

    // Batch micro-gate on the reference engine: batching a dedup-friendly
    // transaction must not cost throughput. (The criterion bench
    // `batch_micro` reports the same comparison across batch sizes.)
    let unbatched = micro_tps("mvtil-early", 1, seed);
    let batched = micro_tps("mvtil-early", 32, seed);
    println!(
        "# batch-micro mvtil-early: op-by-op {unbatched:.0} tps, batched(32) {batched:.0} tps \
         ({:.2}x)",
        batched / unbatched.max(1.0)
    );
    assert!(
        batched >= unbatched,
        "batched mvtil-early fell below op-by-op ({batched:.0} < {unbatched:.0} tps)"
    );

    // Fault-layer overhead gate: wrapping every shard in FaultyBackend with
    // a schedule that never fires (probability 0) must leave the sharded
    // engine's throughput intact — the decorator's fault-free path is a few
    // atomic counter bumps, not locks or sleeps. The 0.5× floor absorbs
    // shared-runner noise while still catching anything structural.
    let plain = micro_tps("sharded?shards=4", 1, seed);
    let wrapped = micro_tps("sharded?shards=4&fault=delay:0.0:1", 1, seed);
    println!(
        "# fault-layer overhead sharded: plain {plain:.0} tps, no-op schedule {wrapped:.0} tps \
         ({:.2}x)",
        wrapped / plain.max(1.0)
    );
    assert!(
        wrapped >= 0.5 * plain,
        "a never-firing fault schedule halved sharded throughput \
         ({wrapped:.0} < 0.5 * {plain:.0} tps)"
    );

    // Durability overhead gate: the write-ahead log under group commit must
    // keep at least 0.3× the memory-only throughput of the same engine on
    // the micro workload. Group commit amortizes the fsync over every
    // transaction in a flush batch, so the logged path should be bounded by
    // batching latency, not by one disk sync per commit.
    let memory_only = micro_tps("mvtil-early", 1, seed);
    let logged = micro_tps("mvtil-early?wal=tmp&fsync=group", 1, seed);
    println!(
        "# wal-overhead mvtil-early: memory-only {memory_only:.0} tps, \
         wal+group-commit {logged:.0} tps ({:.2}x)",
        logged / memory_only.max(1.0)
    );
    assert!(
        logged >= 0.3 * memory_only,
        "group-commit logging dropped mvtil-early below the 0.3x floor \
         ({logged:.0} < 0.3 * {memory_only:.0} tps)"
    );

    // The sharded engine's batched grid rows must keep committing — the
    // one-round-per-shard path is asserted structurally in
    // crates/shard/tests/batched.rs; here we gate that it stays live at
    // report scale.
    for row in &report.rows {
        if row.engine == "sharded" && row.batch > 1 {
            assert!(
                row.committed > 0,
                "sharded batched cell ({}, batch {}) stopped committing",
                row.dist,
                row.batch
            );
        }
    }
}
