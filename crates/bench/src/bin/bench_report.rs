//! Produces the machine-readable benchmark artifact `BENCH_<scale>.json`.
//!
//! Runs the registry engine grid — every `mvtl_registry::all_specs()` engine
//! under uniform and zipf(0.99) key skew, once op-by-op and once batched —
//! through the threaded closed-loop runner, serializes the versioned
//! `BenchReport` to JSON, and **validates the artifact** before exiting:
//! the JSON must parse back into an identical report (the serde-shim
//! round-trip), every engine must appear in every grid cell, and the
//! batched run of the reference `mvtil-early` engine must not be slower
//! than its op-by-op twin on the dedup-friendly micro workload. Any
//! violation exits non-zero, so CI catches both batching regressions and
//! schema drift.
//!
//! Pass `--smoke` / `--paper` for the grid scale (default quick) and
//! `--seed N` for reproducible reruns. The artifact is written to the
//! current directory; CI uploads it with `actions/upload-artifact`.

use mvtl_workload::{
    bench_report, check_bench_report, run_closed_loop, BenchReport, ReportOptions, RunnerOptions,
    Scale, WorkloadSpec,
};
use std::time::Duration;

/// Best-of-3 closed-loop throughput of `spec` on the dedup-friendly micro
/// workload (32 reads per transaction, zipf(1.2) over 64 keys, one client —
/// batches full of repeated keys, no contention noise).
fn micro_tps(spec: &str, batch: usize, seed: u64) -> f64 {
    let engine = mvtl_registry::build(spec).expect("micro-bench spec must build");
    (0..3)
        .map(|round| {
            run_closed_loop(
                engine.as_ref(),
                &RunnerOptions {
                    clients: 1,
                    duration: Duration::from_millis(150),
                    spec: WorkloadSpec::new(32, 0.0, 64)
                        .with_zipf(1.2)
                        .with_batch(batch),
                    seed: seed ^ round,
                },
                |v| v,
            )
            .throughput_tps()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let seed = mvtl_bench::seed_from_args(std::env::args().skip(1), 42);
    let name = match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    };
    let options = ReportOptions {
        scale,
        seed,
        ..ReportOptions::default()
    };

    let mut report = bench_report(name, &options);
    report.dedupe_rows();
    print!("{}", report.render());
    check_bench_report(&report, &options);

    // Serialize, persist, and prove the artifact round-trips through the
    // serde shim: the file on disk must parse back into an identical report.
    let rendered = report.to_json_string();
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    let reread = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let parsed = BenchReport::from_json_str(&reread)
        .unwrap_or_else(|e| panic!("{path} does not parse back: {e}"));
    assert_eq!(parsed, report, "{path}: JSON round-trip changed the report");
    println!(
        "# wrote {path} ({} rows, schema v{})",
        report.rows.len(),
        report.schema_version
    );

    // Batch micro-gate on the reference engine: batching a dedup-friendly
    // transaction must not cost throughput. (The criterion bench
    // `batch_micro` reports the same comparison across batch sizes.)
    let unbatched = micro_tps("mvtil-early", 1, seed);
    let batched = micro_tps("mvtil-early", 32, seed);
    println!(
        "# batch-micro mvtil-early: op-by-op {unbatched:.0} tps, batched(32) {batched:.0} tps \
         ({:.2}x)",
        batched / unbatched.max(1.0)
    );
    assert!(
        batched >= unbatched,
        "batched mvtil-early fell below op-by-op ({batched:.0} < {unbatched:.0} tps)"
    );

    // Fault-layer overhead gate: wrapping every shard in FaultyBackend with
    // a schedule that never fires (probability 0) must leave the sharded
    // engine's throughput intact — the decorator's fault-free path is a few
    // atomic counter bumps, not locks or sleeps. The 0.5× floor absorbs
    // shared-runner noise while still catching anything structural.
    let plain = micro_tps("sharded?shards=4", 1, seed);
    let wrapped = micro_tps("sharded?shards=4&fault=delay:0.0:1", 1, seed);
    println!(
        "# fault-layer overhead sharded: plain {plain:.0} tps, no-op schedule {wrapped:.0} tps \
         ({:.2}x)",
        wrapped / plain.max(1.0)
    );
    assert!(
        wrapped >= 0.5 * plain,
        "a never-firing fault schedule halved sharded throughput \
         ({wrapped:.0} < 0.5 * {plain:.0} tps)"
    );

    // Durability overhead gate: the write-ahead log under group commit must
    // keep at least 0.3× the memory-only throughput of the same engine on
    // the micro workload. Group commit amortizes the fsync over every
    // transaction in a flush batch, so the logged path should be bounded by
    // batching latency, not by one disk sync per commit.
    let memory_only = micro_tps("mvtil-early", 1, seed);
    let logged = micro_tps("mvtil-early?wal=tmp&fsync=group", 1, seed);
    println!(
        "# wal-overhead mvtil-early: memory-only {memory_only:.0} tps, \
         wal+group-commit {logged:.0} tps ({:.2}x)",
        logged / memory_only.max(1.0)
    );
    assert!(
        logged >= 0.3 * memory_only,
        "group-commit logging dropped mvtil-early below the 0.3x floor \
         ({logged:.0} < 0.3 * {memory_only:.0} tps)"
    );

    // The sharded engine's batched grid rows must keep committing — the
    // one-round-per-shard path is asserted structurally in
    // crates/shard/tests/batched.rs; here we gate that it stays live at
    // report scale.
    for row in &report.rows {
        if row.engine == "sharded" && row.batch > 1 {
            assert!(
                row.committed > 0,
                "sharded batched cell ({}, batch {}) stopped committing",
                row.dist,
                row.batch
            );
        }
    }
}
