//! Regenerates Figure 2 (throughput and commit rate vs. number of clients, cloud test bed) of the paper. Pass `--paper` for paper-scale sweeps.

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let table = mvtl_workload::figures::fig2_concurrency_cloud(scale);
    println!("{}", table.render());
}
