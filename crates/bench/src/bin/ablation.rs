//! Runs the ablation studies called out in DESIGN.md: early-vs-late commit
//! timestamps, MVTIL interval width Δ, and the garbage-collection period.
//! Pass `--paper` for larger sweeps.

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    for table in [
        mvtl_workload::figures::ablation_commit_pick(scale),
        mvtl_workload::figures::ablation_delta(scale),
        mvtl_workload::figures::ablation_gc_period(scale),
    ] {
        println!("{}", table.render());
    }
}
