//! Regenerates Figure 5 (effect of the number of servers) of the paper. Pass `--paper` for paper-scale sweeps.

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let table = mvtl_workload::figures::fig5_servers(scale);
    println!("{}", table.render());
}
