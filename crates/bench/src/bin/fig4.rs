//! Regenerates Figure 4 (small transactions) of the paper. Pass `--paper` for paper-scale sweeps.

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let table = mvtl_workload::figures::fig4_small_transactions(scale);
    println!("{}", table.render());
}
