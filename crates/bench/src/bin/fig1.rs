//! Regenerates Figure 1 (throughput and commit rate vs. number of clients,
//! local test bed) of the paper, then runs the registry-driven engine grid:
//! every engine `mvtl_registry::all_specs()` knows — including the
//! partitioned `sharded` engines — built from its string spec and driven
//! through `dyn Engine` in a threaded closed loop, once with uniform keys and
//! once under zipf(0.99) skew.
//!
//! Pass `--paper` for paper-scale sweeps, `--smoke` for the CI smoke run. The
//! process exits non-zero if any registered engine fails to build or stops
//! committing (on either key distribution), so engine-wiring regressions fail
//! CI rather than just compile.

use mvtl_workload::KeyDist;

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let table = mvtl_workload::figures::fig1_concurrency_local(scale);
    println!("{}", table.render());

    for dist in [KeyDist::Uniform, KeyDist::Zipf { theta: 0.99 }] {
        let grid = mvtl_workload::figures::engine_grid_with_skew(scale, dist);
        println!("{}", grid.render());
        mvtl_workload::figures::check_engine_grid(&grid);
    }
}
