//! Regenerates Figure 1 (throughput and commit rate vs. number of clients,
//! local test bed) of the paper, then runs the registry-driven engine grid:
//! every engine `mvtl_registry::all_specs()` knows — including the
//! partitioned `sharded` engines — built from its string spec and driven
//! through `dyn Engine` in a threaded closed loop, once with uniform keys and
//! once under zipf(0.99) skew. Finally it drives GC-enabled variants
//! (`gc_ms`/`gc_lag_ms` appended via the same sweep plumbing), so a spec
//! layer that silently dropped the GC parameters would fail here.
//!
//! Pass `--paper` for paper-scale sweeps, `--smoke` for the CI smoke run and
//! `--seed N` to pin the GC-smoke workload RNG for reproducible reruns. The
//! process exits non-zero if any registered engine fails to build or stops
//! committing (on either key distribution), so engine-wiring regressions fail
//! CI rather than just compile.

use mvtl_registry::EngineSpec;
use mvtl_workload::{run_closed_loop, KeyDist, RunnerOptions, WorkloadSpec};
use std::time::Duration;

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let seed = mvtl_bench::seed_from_args(std::env::args().skip(1), 42);
    let table = mvtl_workload::figures::fig1_concurrency_local(scale);
    println!("{}", table.render());

    for dist in [KeyDist::Uniform, KeyDist::Zipf { theta: 0.99 }] {
        let grid = mvtl_workload::figures::engine_grid_with_skew(scale, dist);
        println!("{}", grid.render());
        mvtl_workload::figures::check_engine_grid(&grid);
    }

    // GC smoke: run one centralized and one sharded engine with the GC
    // service attached, through the same append-params plumbing the sweeps
    // use. The engine must keep committing and the service must purge.
    // Small Δ keeps MVTIL commit timestamps near the clock, inside the GC's
    // purgeable horizon (see the soak binary for the full explanation).
    for base_spec in [
        "mvtil-early?delta=64",
        "sharded?shards=8&inner=mvtil-early&delta=64",
    ] {
        let spec = EngineSpec::append_params(base_spec, "gc_ms=10&gc_lag_ms=5");
        let engine = mvtl_registry::build(&spec)
            .unwrap_or_else(|e| panic!("GC spec {spec:?} must build: {e}"));
        let metrics = run_closed_loop(
            engine.as_ref(),
            &RunnerOptions {
                clients: 4,
                duration: Duration::from_millis(200),
                spec: WorkloadSpec::new(8, 0.5, 256),
                seed,
            },
            |v| v,
        );
        println!(
            "# gc-smoke {spec}: {} committed, {} versions resident, {} purged",
            metrics.committed, metrics.stats_end.versions, metrics.stats_end.purged_versions
        );
        assert!(metrics.committed > 0, "{spec}: stopped committing under GC");
        assert!(
            metrics.stats_end.purged_versions > 0,
            "{spec}: GC service never purged (plumbing dropped gc_ms?)"
        );
    }
}
