//! Regenerates Figure 1 (throughput and commit rate vs. number of clients, local test bed) of the paper. Pass `--paper` for paper-scale sweeps.

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let table = mvtl_workload::figures::fig1_concurrency_local(scale);
    println!("{}", table.render());
}
