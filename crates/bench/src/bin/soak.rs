//! The GC soak: sustained multi-threaded load against real engines, with and
//! without the `mvtl-gc` background service, demonstrating that garbage
//! collection keeps versions + lock entries bounded (§6, the real-engine
//! analogue of Figures 6–7).
//!
//! Runs the soak for `mvtil-early`, `mvto+` and `sharded?shards=8` and exits
//! non-zero if any GC-on run fails to stay strictly below its GC-off twin or
//! never purges — so a regression in the watermark/purge plumbing fails CI
//! rather than silently unbounding memory. Pass `--smoke` for the short CI
//! run, `--paper` for a minutes-long soak, and `--seed N` to pin the
//! workload RNG for reproducible reruns.

use mvtl_workload::{gc_soak, Scale, SoakOptions, WorkloadSpec};
use std::time::Duration;

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let seed = mvtl_bench::seed_from_args(std::env::args().skip(1), 42);
    let duration = match scale {
        Scale::Smoke => Duration::from_millis(400),
        Scale::Quick => Duration::from_secs(2),
        Scale::Paper => Duration::from_secs(60),
    };
    let options = SoakOptions {
        clients: 4,
        duration,
        gc_ms: 10,
        gc_lag_ms: 5,
        spec: WorkloadSpec::new(8, 0.5, 512),
        seed,
    };
    let mut failed = false;
    // MVTIL serializes up to Δ ticks above "now" (interval shrinking pushes
    // contended commits toward the top of [now, now + Δ]), and state above
    // the active-transaction watermark is not yet safely purgeable — so Δ is
    // also the engine's GC horizon. The soak uses a small Δ to keep commit
    // timestamps near the clock; the default Δ of 100k ticks would defer
    // most purging past the end of a short run.
    for base_spec in [
        "mvtil-early?delta=64",
        "mvto+",
        "sharded?shards=8&inner=mvtil-early&delta=64",
    ] {
        let report = gc_soak(base_spec, &options);
        println!("{}", report.render());
        if !report.gc_bounds_state() {
            eprintln!("FAIL: {base_spec}: GC did not keep resident state below the GC-off run");
            failed = true;
        }
        if report.gc_on.stats_end.purged_versions == 0 {
            eprintln!("FAIL: {base_spec}: the GC service never purged anything");
            failed = true;
        }
        if report.gc_on.committed == 0 || report.gc_off.committed == 0 {
            eprintln!("FAIL: {base_spec}: a soak run stopped committing");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
