//! Regenerates Figure 6 (locks and versions over time, GC on/off) of the paper. Pass `--paper` for paper-scale sweeps.

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let table = mvtl_workload::figures::fig6_state_size(scale);
    println!("{}", table.render());
}
