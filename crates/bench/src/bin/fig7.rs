//! Regenerates Figure 7 (performance over time, GC on/off) of the paper. Pass `--paper` for paper-scale sweeps.

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let table = mvtl_workload::figures::fig7_gc_over_time(scale);
    println!("{}", table.render());
}
