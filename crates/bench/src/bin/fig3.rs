//! Regenerates Figure 3 (effect of the write fraction) of the paper. Pass `--paper` for paper-scale sweeps.

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let table = mvtl_workload::figures::fig3_write_fraction(scale);
    println!("{}", table.render());
}
