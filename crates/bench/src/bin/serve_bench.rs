//! Open-loop serve-path benchmark: the saturation-knee sweep behind the
//! schema-v2 rows of `BENCH_<scale>.json`.
//!
//! For each served engine (one single-node, one sharded) the binary first
//! measures the in-process closed-loop capacity `C` on the same workload,
//! then starts a real TCP server (`mvtl-server`) and drives it open-loop at
//! offered loads of 0.4×C, 0.8×C and 1.2×C (Poisson arrivals, seeded) plus
//! one bursty point at 0.4×C. Each point records the client-observed
//! arrival-to-completion latency distribution; the resulting rows carry
//! `offered_tps`, achieved `throughput_tps`, `shed` and `p50/p99/p999`, and
//! are merged into the `BENCH_<scale>.json` the closed-loop `bench_report`
//! binary wrote (previous open rows are replaced, closed rows kept).
//!
//! Before exiting the binary gates what the CI smoke step relies on:
//!
//! * every open row has a non-zero p99 (latency was actually measured), and
//! * at the low offered point the served path achieves at least 0.3× the
//!   in-process closed-loop capacity — the wire, framing and threading
//!   overhead must not swallow the engine.
//!
//! Pass `--smoke` / `--paper` for scale (default quick) and `--seed N` for
//! reproducible reruns.

use mvtl_common::StoreStats;
use mvtl_server::{
    run_open_loop, ArrivalProcess, DriverMetrics, DriverOptions, Server, ServerConfig,
};
use mvtl_workload::{
    run_closed_loop, BenchReport, BenchRow, RunnerOptions, Scale, WorkloadSpec,
    BENCH_SCHEMA_VERSION, MODE_CLOSED, MODE_OPEN,
};
use std::time::{Duration, Instant};

/// The engines the sweep serves: one single-node MVTIL policy and the
/// cross-shard composition (both must appear in the committed artifact).
const SERVED_SPECS: &[&str] = &["mvtil-early", "sharded?shards=8&inner=mvtil-early"];

/// Offered-load fractions of the measured closed-loop capacity. The low
/// point doubles as the CI gate anchor; the last point deliberately exceeds
/// capacity so the knee (queueing delay, shed arrivals) shows in the rows.
const LOAD_FRACTIONS: &[f64] = &[0.4, 0.8, 1.2];

/// Fraction of capacity at which the CI throughput gate is checked.
const GATE_FRACTION: f64 = 0.4;
/// The served path must achieve at least this fraction of the in-process
/// closed-loop capacity at the low offered point.
const GATE_FLOOR: f64 = 0.3;

struct ScaleParams {
    capacity_duration: Duration,
    point_duration: Duration,
}

fn params(scale: Scale) -> ScaleParams {
    match scale {
        Scale::Smoke => ScaleParams {
            capacity_duration: Duration::from_millis(200),
            point_duration: Duration::from_millis(300),
        },
        Scale::Quick => ScaleParams {
            capacity_duration: Duration::from_millis(400),
            point_duration: Duration::from_millis(600),
        },
        Scale::Paper => ScaleParams {
            capacity_duration: Duration::from_millis(1_000),
            point_duration: Duration::from_millis(1_500),
        },
    }
}

/// The workload every serve-path point runs: the grid's §8.3 shape, batched
/// so the pipelined wire path groups operations the way the in-process
/// batched runner does.
fn workload() -> WorkloadSpec {
    WorkloadSpec::new(8, 0.25, 512).with_batch(8)
}

const CONNECTIONS: usize = 4;

fn open_row(
    spec: &str,
    engine: &str,
    arrivals: ArrivalProcess,
    offered_tps: f64,
    metrics: &DriverMetrics,
    stats: StoreStats,
) -> BenchRow {
    let executed = metrics.committed + metrics.aborted;
    BenchRow {
        spec: spec.to_string(),
        engine: engine.to_string(),
        mode: MODE_OPEN.to_string(),
        arrivals: arrivals.label(),
        dist: "uniform".to_string(),
        batch: workload().batch,
        clients: CONNECTIONS,
        offered_tps,
        committed: metrics.committed,
        aborted: metrics.aborted,
        shed: metrics.shed,
        elapsed_secs: metrics.elapsed_secs,
        throughput_tps: metrics.achieved_tps(),
        // Open-loop rows are single measurements, not best-of-N.
        round_spread: 1.0,
        abort_rate: if executed == 0 {
            0.0
        } else {
            metrics.aborted as f64 / executed as f64
        },
        p50_us: metrics.histogram.p50(),
        p99_us: metrics.histogram.p99(),
        p999_us: metrics.histogram.p999(),
        locks: stats.lock_entries,
        versions: stats.versions,
        purged_versions: stats.purged_versions,
        keys: stats.keys,
    }
}

fn main() {
    let scale = mvtl_bench::scale_from_args(std::env::args().skip(1));
    let seed = mvtl_bench::seed_from_args(std::env::args().skip(1), 42);
    let name = match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    };
    let params = params(scale);
    let started = Instant::now();
    let mut open_rows: Vec<BenchRow> = Vec::new();

    for spec in SERVED_SPECS {
        // 1. In-process closed-loop capacity on the same workload: the yard
        //    stick both the offered-load sweep and the CI gate are scaled by.
        let engine = mvtl_registry::build(spec).expect("served spec must build");
        let capacity = run_closed_loop(
            engine.as_ref(),
            &RunnerOptions {
                clients: CONNECTIONS,
                duration: params.capacity_duration,
                spec: workload(),
                seed,
            },
            |v| v,
        )
        .throughput_tps()
        .max(1.0);
        println!("# serve-bench {spec}: in-process closed-loop capacity {capacity:.0} tps");

        // 2. A real TCP server fronting a fresh engine of the same spec.
        let server = Server::spawn(spec, "127.0.0.1:0").expect("server must start");
        let engine_name = mvtl_registry::EngineSpec::base_name(spec);

        // 3. The sweep: Poisson points across the knee, plus one bursty point
        //    at the gate fraction to show clumped arrivals against the same
        //    budget.
        let mut sweeps: Vec<(ArrivalProcess, f64)> = LOAD_FRACTIONS
            .iter()
            .map(|f| (ArrivalProcess::Poisson, f * capacity))
            .collect();
        sweeps.push((
            ArrivalProcess::Bursty { burst: 16 },
            GATE_FRACTION * capacity,
        ));

        let mut gate_checked = false;
        for (arrivals, offered_tps) in sweeps {
            let metrics = run_open_loop(
                server.addr(),
                &DriverOptions {
                    connections: CONNECTIONS,
                    offered_tps,
                    duration: params.point_duration,
                    spec: workload(),
                    seed,
                    arrivals,
                    queue_cap: 256,
                },
            )
            .expect("open-loop run must complete");
            let stats = mvtl_server::Connection::connect(server.addr())
                .and_then(|mut c| c.stats())
                .unwrap_or_default();
            let row = open_row(spec, engine_name, arrivals, offered_tps, &metrics, stats);
            println!(
                "# serve-bench {spec} {} offered {:.0}: achieved {:.0} tps, shed {}, \
                 p50 {} µs, p99 {} µs, p999 {} µs",
                row.arrivals,
                row.offered_tps,
                row.throughput_tps,
                row.shed,
                row.p50_us,
                row.p99_us,
                row.p999_us
            );

            // CI gates, anchored at the low-offered Poisson point.
            assert!(
                row.p99_us > 0,
                "{spec}: open-loop p99 missing — no latencies were recorded"
            );
            if arrivals == ArrivalProcess::Poisson
                && (offered_tps - GATE_FRACTION * capacity).abs() < 1e-6
            {
                gate_checked = true;
                assert!(
                    row.throughput_tps >= GATE_FLOOR * capacity,
                    "{spec}: served path achieved {:.0} tps at offered {:.0}, below \
                     {GATE_FLOOR}x the in-process capacity {capacity:.0}",
                    row.throughput_tps,
                    row.offered_tps
                );
            }
            open_rows.push(row);
        }
        assert!(gate_checked, "{spec}: sweep never hit the gate fraction");
        drop(server);
    }

    // 4. Merge into the artifact the closed-loop bench_report wrote: keep its
    //    closed rows, replace any previous open rows with this sweep.
    let path = format!("BENCH_{name}.json");
    let mut report = match std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| BenchReport::from_json_str(&s).ok())
    {
        Some(mut existing) => {
            existing.rows.retain(|row| row.mode == MODE_CLOSED);
            existing
        }
        None => BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            name: name.to_string(),
            seed,
            wall_secs: 0.0,
            rows: Vec::new(),
        },
    };
    report.wall_secs += started.elapsed().as_secs_f64();
    report.rows.extend(open_rows);
    // Repeated local runs merge into the same artifact: replace, don't
    // accumulate, rows for cells this sweep re-measured.
    report.dedupe_rows();
    let rendered = report.to_json_string();
    std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    let parsed = BenchReport::from_json_str(&rendered)
        .unwrap_or_else(|e| panic!("{path} does not parse back: {e}"));
    assert_eq!(parsed, report, "{path}: JSON round-trip changed the report");
    print!("{}", report.render());
    println!(
        "# wrote {path} ({} rows, {} open, schema v{})",
        report.rows.len(),
        report.rows.iter().filter(|r| r.mode == MODE_OPEN).count(),
        report.schema_version
    );

    // Exercise the serve_-prefixed config parser on the same spec shape the
    // server accepts, so a param regression fails the bench not just a test.
    let (config, rest) =
        ServerConfig::from_spec("mvtil-early?serve_max_txns=64").expect("serve params parse");
    assert_eq!(config.max_txns, 64);
    assert_eq!(rest, "mvtil-early");
}
