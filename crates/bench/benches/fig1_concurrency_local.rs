//! Smoke-scale benchmark of fig1-shaped transactions (20 ops, 25% writes,
//! local-test-bed key range) on registry-built engines, driven through the
//! object-safe `dyn Engine` layer: regressions in an engine's commit path or
//! the dyn dispatch layer show up as slower iterations here.
//! The full multi-client series is produced by
//! `cargo run -p mvtl-bench --bin fig1`.

use criterion::{criterion_group, criterion_main, Criterion};
use mvtl_common::{EngineExt, Key, ProcessId};
use std::hint::black_box;
use std::time::Duration;

const OPS_PER_TX: u64 = 20;
const KEYS: u64 = 400;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for spec in ["mvtil-early", "mvto+", "2pl"] {
        let engine = mvtl_registry::build(spec).expect("registry spec must build");
        let mut round = 0u64;
        group.bench_function(engine.name(), |b| {
            b.iter(|| {
                round += 1;
                let mut tx = engine.begin(ProcessId(1));
                for i in 0..OPS_PER_TX {
                    let key = Key((round * OPS_PER_TX + i * 7) % KEYS);
                    // Every 4th operation writes: the paper's 25% write mix.
                    if i % 4 == 0 {
                        let _ = tx.write(key, round);
                    } else {
                        let _ = tx.read(key);
                    }
                }
                let _ = black_box(tx.commit());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
