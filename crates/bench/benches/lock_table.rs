//! Micro-benchmarks of the freezable interval lock table and the interval-set
//! algebra — the data structures on MVTL's hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use mvtl_common::{LockMode, Timestamp, TsRange, TsSet, TxId};
use mvtl_locks::KeyLockState;
use std::hint::black_box;

fn ts(v: u64) -> Timestamp {
    Timestamp::at(v)
}

fn bench_lock_table(c: &mut Criterion) {
    c.bench_function("lock_table/acquire_freeze_release_cycle", |b| {
        b.iter(|| {
            let mut state = KeyLockState::new();
            for i in 0..32u64 {
                let tx = TxId(i + 1);
                let range = TsRange::new(ts(i * 10 + 1), ts(i * 10 + 8));
                let analysis = state.acquire_grantable(tx, LockMode::Read, range);
                black_box(&analysis);
                state.freeze(tx, LockMode::Read, TsRange::point(ts(i * 10 + 1)));
                state.release_unfrozen(tx);
            }
            black_box(state.stats())
        })
    });

    c.bench_function("lock_table/analyze_under_contention", |b| {
        let mut state = KeyLockState::new();
        for i in 0..64u64 {
            state.acquire_grantable(
                TxId(i + 1),
                LockMode::Read,
                TsRange::new(ts(i * 5), ts(i * 5 + 20)),
            );
        }
        b.iter(|| {
            let analysis =
                state.analyze(TxId(999), LockMode::Write, TsRange::new(ts(100), ts(200)));
            black_box(analysis)
        })
    });

    c.bench_function("tsset/intersection", |b| {
        let a: TsSet = (0..64u64)
            .map(|i| TsRange::new(ts(i * 10), ts(i * 10 + 4)))
            .collect();
        let bset: TsSet = (0..64u64)
            .map(|i| TsRange::new(ts(i * 7), ts(i * 7 + 3)))
            .collect();
        b.iter(|| black_box(a.intersection(&bset)))
    });
}

criterion_group!(benches, bench_lock_table);
criterion_main!(benches);
