//! Smoke-scale benchmark of the ablation experiments (early-vs-late commit
//! pick and interval width Δ). Full tables: `cargo run -p mvtl-bench --bin ablation`.

use criterion::{criterion_group, criterion_main, Criterion};
use mvtl_sim::{Protocol, SimConfig, Simulation};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for (name, protocol, delta) in [
        ("early-small-delta", Protocol::MvtilEarly, 500u64),
        ("early-large-delta", Protocol::MvtilEarly, 50_000),
        ("late-default-delta", Protocol::MvtilLate, 5_000),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = SimConfig::local_cluster(protocol)
                    .clients(12)
                    .keys(400)
                    .write_fraction(0.5)
                    .delta_us(delta)
                    .duration_secs(1)
                    .seed(23);
                black_box(Simulation::new(config).run())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
