//! Smoke-scale benchmark of the simulated experiment behind Figure 4 (small transactions).
//! The full series is produced by `cargo run -p mvtl-bench --bin fig4`.

use criterion::{criterion_group, criterion_main, Criterion};
use mvtl_sim::{Protocol, SimConfig, Simulation};
use std::hint::black_box;
use std::time::Duration;

fn config(protocol: Protocol) -> SimConfig {
    SimConfig::local_cluster(protocol)
        .ops_per_tx(8)
        .write_fraction(0.5)
        .clients(12)
        .keys(400)
        .duration_secs(1)
        .seed(17)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for protocol in [Protocol::MvtilEarly, Protocol::MvtoPlus] {
        group.bench_function(protocol.name(), |b| {
            b.iter(|| black_box(Simulation::new(config(protocol)).run()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
