//! Micro-benchmark of the batched operation surface: the same dedup-friendly
//! multi-key transaction executed op-by-op and through `read_many` /
//! `write_many`, on the reference `mvtil-early` engine and on the
//! partitioned `sharded` engine (where batching additionally collapses
//! coordination to one round per shard).

use criterion::{criterion_group, criterion_main, Criterion};
use mvtl_common::{EngineExt, Key, ProcessId};
use std::hint::black_box;

/// 32 keys with extreme duplication: `i² mod 16` only takes the values
/// {0, 1, 4, 9}, so each batch holds exactly 4 distinct keys — a
/// dedup-maximal micro workload that bounds how much the batched path can
/// win (realistic zipf batches sit well below this 8× dedup ratio).
fn batch_keys(round: u64) -> Vec<Key> {
    (0..32u64).map(|i| Key((round * 7 + i * i) % 16)).collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_micro");

    for spec in ["mvtil-early", "sharded?shards=8&inner=mvtil-early"] {
        for (label, batched) in [("op-by-op", false), ("batched", true)] {
            let engine = mvtl_registry::build(spec).expect("registry spec must build");
            // Seed one committed version per key so reads anchor on real state.
            let mut tx = engine.begin(ProcessId(1));
            tx.write_many((0..16u64).map(|k| (Key(k), k)).collect())
                .unwrap();
            tx.commit().unwrap();

            let mut round = 0u64;
            group.bench_function(&format!("{}/{label}", engine.name()), |b| {
                b.iter(|| {
                    round += 1;
                    let keys = batch_keys(round);
                    let mut tx = engine.begin(ProcessId(1));
                    if batched {
                        let _ = black_box(tx.read_many(&keys));
                        let _ = black_box(tx.write_many(vec![
                            (Key(round % 16), round),
                            (Key((round + 5) % 16), round),
                        ]));
                    } else {
                        for key in &keys {
                            let _ = black_box(tx.read(*key));
                        }
                        let _ = black_box(tx.write(Key(round % 16), round));
                        let _ = black_box(tx.write(Key((round + 5) % 16), round));
                    }
                    let _ = black_box(tx.commit());
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
