//! Micro-benchmarks of the centralized engines: one small read-write
//! transaction per iteration on every protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use mvtl_baselines::{MvtoStore, TwoPhaseLockingStore};
use mvtl_clock::GlobalClock;
use mvtl_common::{Key, ProcessId, TransactionalKV};
use mvtl_core::policy::{GhostbusterPolicy, MvtilPolicy, ToPolicy};
use mvtl_core::{MvtlConfig, MvtlStore};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn run_one<S: TransactionalKV<u64>>(store: &S, round: u64) {
    let mut tx = store.begin(ProcessId(1));
    for i in 0..4u64 {
        let key = Key((round * 4 + i) % 512);
        if i % 2 == 0 {
            let _ = store.read(&mut tx, key);
        } else {
            let _ = store.write(&mut tx, key, round);
        }
    }
    let _ = black_box(store.commit(tx));
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines_micro");

    let mvtil: MvtlStore<u64, _> = MvtlStore::new(
        MvtilPolicy::early(1_000_000),
        Arc::new(GlobalClock::new()),
        MvtlConfig::default(),
    );
    let mut round = 0u64;
    group.bench_function("mvtil-early", |b| {
        b.iter(|| {
            round += 1;
            run_one(&mvtil, round)
        })
    });

    let to: MvtlStore<u64, _> = MvtlStore::new(
        ToPolicy::new(),
        Arc::new(GlobalClock::new()),
        MvtlConfig::default(),
    );
    let mut round = 0u64;
    group.bench_function("mvtl-to", |b| {
        b.iter(|| {
            round += 1;
            run_one(&to, round)
        })
    });

    let ghost: MvtlStore<u64, _> = MvtlStore::new(
        GhostbusterPolicy::new(),
        Arc::new(GlobalClock::new()),
        MvtlConfig::default(),
    );
    let mut round = 0u64;
    group.bench_function("mvtl-ghostbuster", |b| {
        b.iter(|| {
            round += 1;
            run_one(&ghost, round)
        })
    });

    let mvto: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
    let mut round = 0u64;
    group.bench_function("mvto+", |b| {
        b.iter(|| {
            round += 1;
            run_one(&mvto, round)
        })
    });

    let tpl: TwoPhaseLockingStore<u64> =
        TwoPhaseLockingStore::new(Arc::new(GlobalClock::new()), Duration::from_millis(10));
    let mut round = 0u64;
    group.bench_function("2pl", |b| {
        b.iter(|| {
            round += 1;
            run_one(&tpl, round)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
