//! Micro-benchmarks of the centralized engines: one small read-write
//! transaction per iteration on every protocol.
//!
//! The engine list comes from `mvtl_registry::all_specs()` and every engine is
//! driven through the object-safe `dyn Engine` layer — registering a new
//! engine automatically adds it to this benchmark, with no per-engine code.

use criterion::{criterion_group, criterion_main, Criterion};
use mvtl_common::{EngineExt, Key, ProcessId};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines_micro");

    for spec in mvtl_registry::all_specs() {
        let engine = mvtl_registry::build(spec).expect("registry spec must build");
        let mut round = 0u64;
        group.bench_function(engine.name(), |b| {
            b.iter(|| {
                round += 1;
                let mut tx = engine.begin(ProcessId(1));
                for i in 0..4u64 {
                    let key = Key((round * 4 + i) % 512);
                    if i % 2 == 0 {
                        let _ = tx.read(key);
                    } else {
                        let _ = tx.write(key, round);
                    }
                }
                let _ = black_box(tx.commit());
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
