//! Result of analysing a lock acquisition request against the current state.

use mvtl_common::{Timestamp, TsSet};

/// What would happen if a transaction tried to lock a set of timestamps.
///
/// Every MVTL policy in the paper expresses its behaviour in terms of three
/// possible situations per timestamp it wants to lock:
///
/// * the timestamp is free (or only compatibly locked) — it can be **granted**;
/// * the timestamp is locked by another transaction but **not frozen** — the
///   policy may *wait* (e.g. MVTL-TO reads, pessimistic locking) or *give up*
///   (e.g. MVTL-Pref commit-time write locking, MVTIL interval shrinking);
/// * the timestamp is covered by a **frozen** conflicting lock — waiting is
///   pointless ("freezing ... tells other processes that they should not wait
///   to acquire the lock", §4.2), so the policy must adapt (re-read a newer
///   version, pick a different timestamp, or abort).
///
/// [`AcquireAnalysis`] partitions the requested timestamps accordingly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AcquireAnalysis {
    /// Timestamps that can be granted right now.
    pub grantable: TsSet,
    /// Timestamps blocked by a conflicting lock that is not frozen; the owner
    /// may still release it, so waiting can make progress.
    pub blocked_unfrozen: TsSet,
    /// Timestamps covered by a frozen conflicting lock; these will never
    /// become available.
    pub frozen_conflicts: TsSet,
}

impl AcquireAnalysis {
    /// Whether the entire requested set can be granted immediately.
    #[must_use]
    pub fn fully_grantable(&self) -> bool {
        self.blocked_unfrozen.is_empty() && self.frozen_conflicts.is_empty()
    }

    /// Whether nothing at all can be granted.
    #[must_use]
    pub fn nothing_grantable(&self) -> bool {
        self.grantable.is_empty()
    }

    /// Whether some timestamp of the request hit a frozen conflicting lock.
    #[must_use]
    pub fn hit_frozen(&self) -> bool {
        !self.frozen_conflicts.is_empty()
    }

    /// The smallest frozen-conflicting timestamp, if any; useful for policies
    /// that re-anchor a read below the first frozen write they encounter.
    #[must_use]
    pub fn first_frozen(&self) -> Option<Timestamp> {
        self.frozen_conflicts.min()
    }

    /// The largest timestamp grantable as a *prefix* of `from..`: i.e. the end
    /// of the contiguous grantable run starting at `from`. Policies that must
    /// lock a contiguous interval starting right after a version (every read in
    /// the paper) use this to find how far they can extend the read lock.
    #[must_use]
    pub fn contiguous_grantable_end(&self, from: Timestamp) -> Option<Timestamp> {
        for range in self.grantable.ranges() {
            if range.contains(from) {
                return Some(range.end);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_common::TsRange;

    fn ts(v: u64) -> Timestamp {
        Timestamp::at(v)
    }

    #[test]
    fn predicates() {
        let mut a = AcquireAnalysis::default();
        assert!(a.fully_grantable());
        assert!(a.nothing_grantable());
        a.grantable.insert_range(TsRange::new(ts(1), ts(5)));
        assert!(!a.nothing_grantable());
        a.blocked_unfrozen.insert(ts(6));
        assert!(!a.fully_grantable());
        assert!(!a.hit_frozen());
        a.frozen_conflicts.insert(ts(9));
        assert!(a.hit_frozen());
        assert_eq!(a.first_frozen(), Some(ts(9)));
    }

    #[test]
    fn contiguous_prefix() {
        let mut a = AcquireAnalysis::default();
        a.grantable.insert_range(TsRange::new(ts(3), ts(7)));
        a.grantable.insert_range(TsRange::new(ts(10), ts(12)));
        assert_eq!(a.contiguous_grantable_end(ts(3)), Some(ts(7)));
        assert_eq!(a.contiguous_grantable_end(ts(5)), Some(ts(7)));
        assert_eq!(a.contiguous_grantable_end(ts(8)), None);
        assert_eq!(a.contiguous_grantable_end(ts(10)), Some(ts(12)));
    }
}
