//! A single interval lock entry.

use mvtl_common::{LockMode, TsRange, TxId};
use serde::{Deserialize, Serialize};

/// One interval lock held on a key: an owner, a mode, a closed timestamp range
/// and a frozen bit.
///
/// This is the unit of *interval compression* (§6): "rather than keeping a lock
/// state for each timestamp, an implementation can keep a single lock state for
/// an entire interval".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockEntry {
    /// Transaction holding the lock.
    pub owner: TxId,
    /// Read or write mode.
    pub mode: LockMode,
    /// Timestamps covered by the lock.
    pub range: TsRange,
    /// Whether the holder froze the lock (it will never be released).
    pub frozen: bool,
}

impl LockEntry {
    /// Creates a new, unfrozen lock entry.
    #[must_use]
    pub fn new(owner: TxId, mode: LockMode, range: TsRange) -> Self {
        LockEntry {
            owner,
            mode,
            range,
            frozen: false,
        }
    }

    /// Whether this entry conflicts with a request by `requester` in mode
    /// `mode` at any timestamp of `range`.
    ///
    /// Locks held by the requester itself never conflict (re-entrancy /
    /// read-to-write upgrade is resolved by the caller), and read locks do not
    /// conflict with read locks.
    #[must_use]
    pub fn conflicts_with(&self, requester: TxId, mode: LockMode, range: &TsRange) -> bool {
        self.owner != requester && self.mode.conflicts_with(mode) && self.range.overlaps(range)
    }

    /// The part of this entry's range overlapping `range`, if any.
    #[must_use]
    pub fn overlap(&self, range: &TsRange) -> Option<TsRange> {
        self.range.intersection(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_common::Timestamp;

    fn r(a: u64, b: u64) -> TsRange {
        TsRange::new(Timestamp::at(a), Timestamp::at(b))
    }

    #[test]
    fn own_locks_never_conflict() {
        let e = LockEntry::new(TxId(1), LockMode::Write, r(1, 10));
        assert!(!e.conflicts_with(TxId(1), LockMode::Write, &r(5, 6)));
        assert!(e.conflicts_with(TxId(2), LockMode::Write, &r(5, 6)));
        assert!(e.conflicts_with(TxId(2), LockMode::Read, &r(5, 6)));
    }

    #[test]
    fn read_read_sharing() {
        let e = LockEntry::new(TxId(1), LockMode::Read, r(1, 10));
        assert!(!e.conflicts_with(TxId(2), LockMode::Read, &r(5, 6)));
        assert!(e.conflicts_with(TxId(2), LockMode::Write, &r(5, 6)));
    }

    #[test]
    fn disjoint_ranges_do_not_conflict() {
        let e = LockEntry::new(TxId(1), LockMode::Write, r(1, 4));
        assert!(!e.conflicts_with(TxId(2), LockMode::Write, &r(5, 9)));
        assert_eq!(e.overlap(&r(3, 9)), Some(r(3, 4)));
        assert_eq!(e.overlap(&r(5, 9)), None);
    }
}
