//! The single-object freezable readers-writer lock of §4.2.
//!
//! This type exists mainly for exposition and for unit-testing the conflict
//! rules in isolation: the engines use the interval-compressed
//! [`crate::KeyLockState`] instead, which amounts to one `FreezableLock` per
//! timestamp without materializing them.

use mvtl_common::{LockMode, TxId};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Errors returned by [`FreezableLock`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreezableLockError {
    /// The lock is held in a conflicting mode by another transaction.
    Conflict {
        /// Whether the conflicting holder froze its lock (so waiting is futile).
        frozen: bool,
    },
    /// The caller does not hold the lock in the requested mode.
    NotHeld,
    /// The lock is frozen and can no longer be released or re-acquired.
    Frozen,
}

impl fmt::Display for FreezableLockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreezableLockError::Conflict { frozen: true } => {
                write!(f, "conflicting lock is frozen")
            }
            FreezableLockError::Conflict { frozen: false } => {
                write!(f, "conflicting lock held by another transaction")
            }
            FreezableLockError::NotHeld => write!(f, "lock not held by this transaction"),
            FreezableLockError::Frozen => write!(f, "lock is frozen"),
        }
    }
}

impl Error for FreezableLockError {}

/// A freezable readers-writer lock for a single write-once object.
///
/// Semantics (§4.2):
///
/// * many transactions may hold the lock in read mode;
/// * at most one transaction may hold it in write mode, excluding all readers
///   from other transactions;
/// * a holder may *freeze* its lock, promising never to release it. A frozen
///   write lock seals the object as written; frozen read locks seal the fact
///   that the readers observed the previous state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FreezableLock {
    readers: BTreeSet<TxId>,
    frozen_readers: BTreeSet<TxId>,
    writer: Option<TxId>,
    writer_frozen: bool,
}

impl FreezableLock {
    /// Creates an unlocked freezable lock.
    #[must_use]
    pub fn new() -> Self {
        FreezableLock::default()
    }

    /// Attempts to acquire the lock for `tx` in `mode`.
    ///
    /// # Errors
    ///
    /// Returns [`FreezableLockError::Conflict`] when another transaction holds
    /// the lock in a conflicting mode; the `frozen` flag reports whether that
    /// conflicting hold is frozen (so the caller should not wait).
    pub fn try_acquire(&mut self, tx: TxId, mode: LockMode) -> Result<(), FreezableLockError> {
        match mode {
            LockMode::Read => {
                if let Some(w) = self.writer {
                    if w != tx {
                        return Err(FreezableLockError::Conflict {
                            frozen: self.writer_frozen,
                        });
                    }
                }
                self.readers.insert(tx);
                Ok(())
            }
            LockMode::Write => {
                if let Some(w) = self.writer {
                    if w != tx {
                        return Err(FreezableLockError::Conflict {
                            frozen: self.writer_frozen,
                        });
                    }
                    return Ok(());
                }
                let other_reader_frozen = self.frozen_readers.iter().any(|r| *r != tx);
                let other_reader = self.readers.iter().any(|r| *r != tx);
                if other_reader || other_reader_frozen {
                    return Err(FreezableLockError::Conflict {
                        frozen: other_reader_frozen,
                    });
                }
                self.writer = Some(tx);
                Ok(())
            }
        }
    }

    /// Freezes the lock held by `tx` in `mode`.
    ///
    /// # Errors
    ///
    /// Returns [`FreezableLockError::NotHeld`] when `tx` does not hold the
    /// lock in that mode.
    pub fn freeze(&mut self, tx: TxId, mode: LockMode) -> Result<(), FreezableLockError> {
        match mode {
            LockMode::Read => {
                if self.readers.remove(&tx) || self.frozen_readers.contains(&tx) {
                    self.frozen_readers.insert(tx);
                    Ok(())
                } else {
                    Err(FreezableLockError::NotHeld)
                }
            }
            LockMode::Write => {
                if self.writer == Some(tx) {
                    self.writer_frozen = true;
                    Ok(())
                } else {
                    Err(FreezableLockError::NotHeld)
                }
            }
        }
    }

    /// Releases every unfrozen hold of `tx` (both modes); frozen holds stay.
    pub fn release_unfrozen(&mut self, tx: TxId) {
        self.readers.remove(&tx);
        if self.writer == Some(tx) && !self.writer_frozen {
            self.writer = None;
        }
    }

    /// Whether `tx` currently holds the lock in `mode` (frozen or not).
    #[must_use]
    pub fn holds(&self, tx: TxId, mode: LockMode) -> bool {
        match mode {
            LockMode::Read => self.readers.contains(&tx) || self.frozen_readers.contains(&tx),
            LockMode::Write => self.writer == Some(tx),
        }
    }

    /// Whether the write lock is frozen (the object's fate is sealed).
    #[must_use]
    pub fn write_frozen(&self) -> bool {
        self.writer_frozen
    }

    /// Whether nobody holds the lock.
    #[must_use]
    pub fn is_unlocked(&self) -> bool {
        self.readers.is_empty() && self.frozen_readers.is_empty() && self.writer.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxId = TxId(1);
    const T2: TxId = TxId(2);
    const T3: TxId = TxId(3);

    #[test]
    fn readers_share() {
        let mut l = FreezableLock::new();
        l.try_acquire(T1, LockMode::Read).unwrap();
        l.try_acquire(T2, LockMode::Read).unwrap();
        assert!(l.holds(T1, LockMode::Read));
        assert!(l.holds(T2, LockMode::Read));
    }

    #[test]
    fn writer_excludes_others() {
        let mut l = FreezableLock::new();
        l.try_acquire(T1, LockMode::Write).unwrap();
        assert_eq!(
            l.try_acquire(T2, LockMode::Read),
            Err(FreezableLockError::Conflict { frozen: false })
        );
        assert_eq!(
            l.try_acquire(T2, LockMode::Write),
            Err(FreezableLockError::Conflict { frozen: false })
        );
        // Re-entrant for the same owner.
        l.try_acquire(T1, LockMode::Write).unwrap();
        l.try_acquire(T1, LockMode::Read).unwrap();
    }

    #[test]
    fn readers_block_writer() {
        let mut l = FreezableLock::new();
        l.try_acquire(T1, LockMode::Read).unwrap();
        assert_eq!(
            l.try_acquire(T2, LockMode::Write),
            Err(FreezableLockError::Conflict { frozen: false })
        );
        // Upgrade by the sole reader is allowed.
        l.try_acquire(T1, LockMode::Write).unwrap();
    }

    #[test]
    fn freeze_reports_to_contenders() {
        let mut l = FreezableLock::new();
        l.try_acquire(T1, LockMode::Write).unwrap();
        l.freeze(T1, LockMode::Write).unwrap();
        assert_eq!(
            l.try_acquire(T2, LockMode::Write),
            Err(FreezableLockError::Conflict { frozen: true })
        );
        // Releasing does not undo a freeze.
        l.release_unfrozen(T1);
        assert!(l.write_frozen());
        assert!(l.holds(T1, LockMode::Write));
    }

    #[test]
    fn frozen_read_locks_survive_release() {
        let mut l = FreezableLock::new();
        l.try_acquire(T1, LockMode::Read).unwrap();
        l.try_acquire(T2, LockMode::Read).unwrap();
        l.freeze(T1, LockMode::Read).unwrap();
        l.release_unfrozen(T1);
        l.release_unfrozen(T2);
        // T1's frozen read lock still blocks writers, and reports frozen.
        assert_eq!(
            l.try_acquire(T3, LockMode::Write),
            Err(FreezableLockError::Conflict { frozen: true })
        );
        assert!(!l.is_unlocked());
    }

    #[test]
    fn freeze_requires_holding() {
        let mut l = FreezableLock::new();
        assert_eq!(
            l.freeze(T1, LockMode::Write),
            Err(FreezableLockError::NotHeld)
        );
        assert_eq!(
            l.freeze(T1, LockMode::Read),
            Err(FreezableLockError::NotHeld)
        );
    }

    #[test]
    fn release_of_unheld_lock_is_noop() {
        let mut l = FreezableLock::new();
        l.release_unfrozen(T1);
        assert!(l.is_unlocked());
    }
}
