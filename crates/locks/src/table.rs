//! The interval-compressed lock state of a single key.

use crate::{AcquireAnalysis, LockEntry};
use mvtl_common::{LockMode, Timestamp, TsRange, TsSet, TxId};
use serde::{Deserialize, Serialize};

/// Statistics about the lock state of a key (or, summed, of a whole store).
///
/// §8.4.5 of the paper measures "the number of locks ... as time passes"; these
/// counters are what the state-size experiment (Figure 6) reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockStateStats {
    /// Number of interval lock entries currently stored.
    pub entries: usize,
    /// How many of those entries are frozen.
    pub frozen_entries: usize,
}

impl LockStateStats {
    /// Component-wise sum, for aggregating across keys.
    #[must_use]
    pub fn merge(self, other: LockStateStats) -> LockStateStats {
        LockStateStats {
            entries: self.entries + other.entries,
            frozen_entries: self.frozen_entries + other.frozen_entries,
        }
    }
}

/// The complete lock state of one key: a list of interval lock entries.
///
/// Conceptually this is one freezable lock per timestamp (an infinite family);
/// concretely it stores only the intervals that transactions actually locked,
/// which §6 argues is "at most one lock interval per committed transaction" for
/// the algorithms in the paper.
///
/// The structure is intentionally free of synchronization: engines wrap it in a
/// per-key latch (mutex) and, where the paper's algorithms *wait* for unfrozen
/// locks, use a condition variable around it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyLockState {
    entries: Vec<LockEntry>,
}

impl KeyLockState {
    /// Creates an empty lock state (no timestamps locked).
    #[must_use]
    pub fn new() -> Self {
        KeyLockState::default()
    }

    /// Analyses what would happen if `owner` requested locks in `mode` on every
    /// timestamp of `desired`.
    ///
    /// The result partitions `desired` into grantable timestamps, timestamps
    /// blocked by unfrozen conflicting locks (waiting may help) and timestamps
    /// blocked by frozen conflicting locks (waiting can never help).
    #[must_use]
    pub fn analyze(&self, owner: TxId, mode: LockMode, desired: TsRange) -> AcquireAnalysis {
        let mut blocked_unfrozen = TsSet::new();
        let mut frozen_conflicts = TsSet::new();
        for entry in &self.entries {
            if !entry.conflicts_with(owner, mode, &desired) {
                continue;
            }
            // The conflict is limited to the overlap with the request.
            if let Some(overlap) = entry.overlap(&desired) {
                if entry.frozen {
                    frozen_conflicts.insert_range(overlap);
                } else {
                    blocked_unfrozen.insert_range(overlap);
                }
            }
        }
        let mut grantable = TsSet::from_range(desired);
        grantable = grantable.difference(&blocked_unfrozen);
        grantable = grantable.difference(&frozen_conflicts);
        AcquireAnalysis {
            grantable,
            blocked_unfrozen,
            frozen_conflicts,
        }
    }

    /// Records that `owner` now holds locks in `mode` on every timestamp of
    /// `granted`.
    ///
    /// The caller is responsible for having checked grantability (normally via
    /// [`KeyLockState::analyze`] under the same latch). Granting is idempotent:
    /// timestamps already held by `owner` in the same mode are not duplicated.
    pub fn acquire(&mut self, owner: TxId, mode: LockMode, granted: &TsSet) {
        if granted.is_empty() {
            return;
        }
        // Subtract what the owner already holds in this mode to keep entries disjoint.
        let already = self.held(owner, mode);
        let fresh = granted.difference(&already);
        for range in fresh.ranges() {
            self.entries.push(LockEntry::new(owner, mode, *range));
        }
        self.coalesce(owner, mode);
    }

    /// Convenience wrapper: analyse `desired` and immediately acquire whatever
    /// is grantable, returning the analysis.
    pub fn acquire_grantable(
        &mut self,
        owner: TxId,
        mode: LockMode,
        desired: TsRange,
    ) -> AcquireAnalysis {
        let analysis = self.analyze(owner, mode, desired);
        self.acquire(owner, mode, &analysis.grantable);
        analysis
    }

    /// Freezes the locks `owner` holds in `mode` on the timestamps of `range`.
    ///
    /// Entries partially covered by `range` are split so that only the covered
    /// part becomes frozen. Freezing timestamps the owner does not hold is a
    /// no-op (the generic algorithm only freezes what it acquired).
    pub fn freeze(&mut self, owner: TxId, mode: LockMode, range: TsRange) {
        // In place: overwrite the covered slice of each matching entry with
        // its frozen middle and append the unfrozen remainders at the end.
        // Entry order carries no meaning, and the appended remainders are
        // disjoint from `range` by construction, so they need no re-check.
        let n = self.entries.len();
        for i in 0..n {
            let entry = self.entries[i];
            if entry.owner != owner || entry.mode != mode || entry.frozen {
                continue;
            }
            let Some(mid) = entry.range.intersection(&range) else {
                continue;
            };
            self.entries[i] = LockEntry {
                owner,
                mode,
                range: mid,
                frozen: true,
            };
            if entry.range.start < mid.start {
                self.entries.push(LockEntry::new(
                    owner,
                    mode,
                    TsRange::new(entry.range.start, mid.start.pred()),
                ));
            }
            if entry.range.end > mid.end {
                self.entries.push(LockEntry::new(
                    owner,
                    mode,
                    TsRange::new(mid.end.succ(), entry.range.end),
                ));
            }
        }
    }

    /// Releases every unfrozen lock of `owner` (both modes). Frozen locks stay
    /// forever (until purged together with their versions).
    pub fn release_unfrozen(&mut self, owner: TxId) {
        self.entries.retain(|e| e.owner != owner || e.frozen);
    }

    /// Releases the unfrozen locks of `owner` in `mode` restricted to `range`,
    /// splitting entries as needed. Used e.g. when a read backs off after
    /// discovering a frozen write lock ("release read-locks acquired above").
    pub fn release_unfrozen_range(&mut self, owner: TxId, mode: LockMode, range: TsRange) {
        // In place: swap-remove each covered entry and append its unfrozen
        // remainders. After a removal the index is re-examined (it now holds
        // the swapped-in entry); appended remainders are disjoint from
        // `range`, so reaching them is a harmless no-op.
        let mut i = 0;
        while i < self.entries.len() {
            let entry = self.entries[i];
            if entry.owner != owner || entry.mode != mode || entry.frozen {
                i += 1;
                continue;
            }
            let Some(mid) = entry.range.intersection(&range) else {
                i += 1;
                continue;
            };
            self.entries.swap_remove(i);
            if entry.range.start < mid.start {
                self.entries.push(LockEntry::new(
                    owner,
                    mode,
                    TsRange::new(entry.range.start, mid.start.pred()),
                ));
            }
            if entry.range.end > mid.end {
                self.entries.push(LockEntry::new(
                    owner,
                    mode,
                    TsRange::new(mid.end.succ(), entry.range.end),
                ));
            }
        }
    }

    /// The set of timestamps `owner` holds in `mode` (frozen or not).
    #[must_use]
    pub fn held(&self, owner: TxId, mode: LockMode) -> TsSet {
        TsSet::from_ranges(
            self.entries
                .iter()
                .filter(|e| e.owner == owner && e.mode == mode)
                .map(|e| e.range),
        )
    }

    /// The set of timestamps `owner` holds in either mode.
    #[must_use]
    pub fn held_any(&self, owner: TxId) -> TsSet {
        TsSet::from_ranges(
            self.entries
                .iter()
                .filter(|e| e.owner == owner)
                .map(|e| e.range),
        )
    }

    /// The smallest timestamp in `range` covered by a *frozen write* lock of a
    /// transaction other than `owner`, if any. Reads use this to detect that a
    /// newer version has been committed in the interval they are trying to
    /// read-lock ("if found frozen write-lock then ... retry").
    #[must_use]
    pub fn first_frozen_write_in(&self, owner: TxId, range: TsRange) -> Option<Timestamp> {
        self.entries
            .iter()
            .filter(|e| {
                e.frozen
                    && e.mode == LockMode::Write
                    && e.owner != owner
                    && e.range.overlaps(&range)
            })
            .filter_map(|e| e.overlap(&range).map(|r| r.start))
            .min()
    }

    /// Whether any transaction other than `owner` holds an *unfrozen* lock
    /// conflicting with `mode` somewhere in `range`.
    #[must_use]
    pub fn has_unfrozen_conflict(&self, owner: TxId, mode: LockMode, range: TsRange) -> bool {
        self.entries
            .iter()
            .any(|e| !e.frozen && e.conflicts_with(owner, mode, &range))
    }

    /// Removes lock entries that lie entirely below `bound`; called when the
    /// versions below `bound` are purged (§6: "this state can be discarded when
    /// the associated version of the object is purged").
    ///
    /// Returns the number of entries removed.
    pub fn purge_below(&mut self, bound: Timestamp) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.range.end >= bound);
        before - self.entries.len()
    }

    /// Current statistics for this key.
    #[must_use]
    pub fn stats(&self) -> LockStateStats {
        LockStateStats {
            entries: self.entries.len(),
            frozen_entries: self.entries.iter().filter(|e| e.frozen).count(),
        }
    }

    /// All entries, for inspection and debugging.
    #[must_use]
    pub fn entries(&self) -> &[LockEntry] {
        &self.entries
    }

    /// Whether no locks at all are recorded for this key.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge adjacent unfrozen entries of the same owner and mode to keep the
    /// representation compact (the point of interval compression).
    fn coalesce(&mut self, owner: TxId, mode: LockMode) {
        let mut set = TsSet::new();
        let mut count = 0usize;
        for e in &self.entries {
            if e.owner == owner && e.mode == mode && !e.frozen {
                set.insert_range(e.range);
                count += 1;
            }
        }
        if count <= 1 || set.ranges().len() == count {
            // Already compact: `acquire` subtracts what the owner holds, so
            // entries of one owner/mode are disjoint; when none of them merge
            // (no two touch) the representation cannot shrink. This is the
            // common case and touches no entry.
            return;
        }
        self.entries
            .retain(|e| !(e.owner == owner && e.mode == mode && !e.frozen));
        for range in set.ranges() {
            self.entries.push(LockEntry::new(owner, mode, *range));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxId = TxId(1);
    const T2: TxId = TxId(2);
    const T3: TxId = TxId(3);

    fn ts(v: u64) -> Timestamp {
        Timestamp::at(v)
    }

    fn r(a: u64, b: u64) -> TsRange {
        TsRange::new(ts(a), ts(b))
    }

    #[test]
    fn read_locks_share_write_locks_exclude() {
        let mut s = KeyLockState::new();
        let a = s.acquire_grantable(T1, LockMode::Read, r(1, 10));
        assert!(a.fully_grantable());

        // Another reader can share the whole interval.
        let a2 = s.analyze(T2, LockMode::Read, r(5, 15));
        assert!(a2.fully_grantable());

        // A writer is blocked on the overlap but free above it.
        let a3 = s.analyze(T2, LockMode::Write, r(5, 15));
        assert!(a3.blocked_unfrozen.contains(ts(5)));
        assert!(a3.blocked_unfrozen.contains(ts(10)));
        assert!(a3.grantable.contains(ts(11)));
        assert!(!a3.grantable.contains(ts(10)));
        assert!(!a3.hit_frozen());
    }

    #[test]
    fn own_locks_do_not_block_upgrade() {
        let mut s = KeyLockState::new();
        s.acquire_grantable(T1, LockMode::Read, r(1, 10));
        let a = s.analyze(T1, LockMode::Write, r(1, 10));
        assert!(a.fully_grantable());
    }

    #[test]
    fn frozen_write_reported_separately() {
        let mut s = KeyLockState::new();
        s.acquire_grantable(T1, LockMode::Write, r(5, 5));
        s.freeze(T1, LockMode::Write, r(5, 5));
        let a = s.analyze(T2, LockMode::Read, r(1, 10));
        assert!(a.hit_frozen());
        assert!(a.frozen_conflicts.contains(ts(5)));
        assert!(a.grantable.contains(ts(4)));
        assert!(a.grantable.contains(ts(6)));
        assert_eq!(s.first_frozen_write_in(T2, r(1, 10)), Some(ts(5)));
        assert_eq!(s.first_frozen_write_in(T1, r(1, 10)), None);
    }

    #[test]
    fn release_unfrozen_keeps_frozen() {
        let mut s = KeyLockState::new();
        s.acquire_grantable(T1, LockMode::Write, r(5, 9));
        s.freeze(T1, LockMode::Write, r(7, 7));
        s.release_unfrozen(T1);
        // Only the frozen point remains.
        assert_eq!(s.stats().entries, 1);
        assert_eq!(s.stats().frozen_entries, 1);
        let a = s.analyze(T2, LockMode::Write, r(5, 9));
        assert!(a.grantable.contains(ts(5)));
        assert!(a.grantable.contains(ts(9)));
        assert!(a.frozen_conflicts.contains(ts(7)));
    }

    #[test]
    fn freeze_splits_partial_ranges() {
        let mut s = KeyLockState::new();
        s.acquire_grantable(T1, LockMode::Read, r(1, 10));
        s.freeze(T1, LockMode::Read, r(4, 6));
        let stats = s.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.frozen_entries, 1);
        // The frozen middle still blocks writers even after releasing the rest.
        s.release_unfrozen(T1);
        let a = s.analyze(T2, LockMode::Write, r(1, 10));
        assert!(a.grantable.contains(ts(2)));
        assert!(a.frozen_conflicts.contains(ts(5)));
        assert!(a.grantable.contains(ts(8)));
    }

    #[test]
    fn release_range_splits() {
        let mut s = KeyLockState::new();
        s.acquire_grantable(T1, LockMode::Read, r(1, 10));
        s.release_unfrozen_range(T1, LockMode::Read, r(4, 6));
        let held = s.held(T1, LockMode::Read);
        assert!(held.contains(ts(3)));
        assert!(!held.contains(ts(5)));
        assert!(held.contains(ts(7)));
    }

    #[test]
    fn acquire_is_idempotent_and_coalesces() {
        let mut s = KeyLockState::new();
        s.acquire(T1, LockMode::Read, &TsSet::from_range(r(1, 5)));
        s.acquire(T1, LockMode::Read, &TsSet::from_range(r(3, 9)));
        s.acquire(T1, LockMode::Read, &TsSet::from_range(r(1, 9)));
        assert_eq!(s.stats().entries, 1);
        assert_eq!(s.held(T1, LockMode::Read).ranges(), &[r(1, 9)]);
    }

    #[test]
    fn held_any_merges_modes() {
        let mut s = KeyLockState::new();
        s.acquire(T1, LockMode::Read, &TsSet::from_range(r(1, 4)));
        s.acquire(T1, LockMode::Write, &TsSet::from_range(r(5, 8)));
        let any = s.held_any(T1);
        assert!(any.contains(ts(2)));
        assert!(any.contains(ts(6)));
        assert!(!any.contains(ts(9)));
    }

    #[test]
    fn multiple_writers_on_disjoint_timestamps() {
        let mut s = KeyLockState::new();
        let a1 = s.acquire_grantable(T1, LockMode::Write, r(5, 5));
        let a2 = s.acquire_grantable(T2, LockMode::Write, r(6, 6));
        assert!(a1.fully_grantable());
        assert!(a2.fully_grantable());
        // This is the essence of MVTL: two concurrent writers on the same key
        // can both hold write locks, on different timestamps.
        assert!(s.held(T1, LockMode::Write).contains(ts(5)));
        assert!(s.held(T2, LockMode::Write).contains(ts(6)));
    }

    #[test]
    fn unfrozen_conflict_predicate() {
        let mut s = KeyLockState::new();
        s.acquire_grantable(T1, LockMode::Write, r(5, 9));
        assert!(s.has_unfrozen_conflict(T2, LockMode::Read, r(7, 12)));
        assert!(!s.has_unfrozen_conflict(T2, LockMode::Read, r(10, 12)));
        assert!(!s.has_unfrozen_conflict(T1, LockMode::Read, r(5, 9)));
        s.freeze(T1, LockMode::Write, r(5, 9));
        assert!(!s.has_unfrozen_conflict(T2, LockMode::Read, r(7, 12)));
    }

    #[test]
    fn purge_below_removes_old_entries() {
        let mut s = KeyLockState::new();
        s.acquire_grantable(T1, LockMode::Read, r(1, 3));
        s.acquire_grantable(T2, LockMode::Read, r(5, 9));
        s.freeze(T1, LockMode::Read, r(1, 3));
        let removed = s.purge_below(ts(4));
        assert_eq!(removed, 1);
        assert_eq!(s.stats().entries, 1);
        assert!(s.held(T2, LockMode::Read).contains(ts(6)));
    }

    #[test]
    fn three_way_interleaving() {
        let mut s = KeyLockState::new();
        // T1 read-locks [1,10]; T2 write-locks 12; T3 wants to read [1,15].
        s.acquire_grantable(T1, LockMode::Read, r(1, 10));
        s.acquire_grantable(T2, LockMode::Write, r(12, 12));
        let a = s.analyze(T3, LockMode::Read, r(1, 15));
        assert!(a.grantable.contains(ts(5))); // shares with T1's read lock
        assert!(a.blocked_unfrozen.contains(ts(12)));
        assert!(a.grantable.contains(ts(15)));
        assert_eq!(a.contiguous_grantable_end(ts(1)), Some(ts(12).pred())); // ends right before 12
    }

    #[test]
    fn stats_merge() {
        let a = LockStateStats {
            entries: 2,
            frozen_entries: 1,
        };
        let b = LockStateStats {
            entries: 3,
            frozen_entries: 0,
        };
        assert_eq!(
            a.merge(b),
            LockStateStats {
                entries: 5,
                frozen_entries: 1
            }
        );
    }
}
