//! # mvtl-locks
//!
//! Freezable locks over individual timestamps, the mechanism at the heart of
//! multiversion timestamp locking (MVTL).
//!
//! The paper (§4.2) defines *freezable locks*: readers-writer locks over
//! write-once objects where a holder may **freeze** its lock to announce that
//! it will never release it. MVTL conceptually keeps one such lock per
//! `(key, timestamp)` pair — an infinitely large lock state — and §6 observes
//! that a practical implementation must compress this state into contiguous
//! intervals, because every algorithm in the paper only ever acquires locks on
//! a few points or intervals.
//!
//! This crate provides both views:
//!
//! * [`FreezableLock`] — the textbook single-object freezable readers-writer
//!   lock of §4.2, useful for understanding and for small tests.
//! * [`KeyLockState`] — the production representation: the complete lock state
//!   of one key stored as a list of `(owner, mode, interval, frozen)` entries.
//!   This is the "interval compression" of §6. All MVTL engines and the
//!   distributed simulation build on it.
//!
//! `KeyLockState` is a plain data structure with no internal synchronization;
//! callers (the engines) wrap it in a per-key latch, exactly like the paper's
//! implementation keeps "a latch per entry in the hash table" (§8.1).
//!
//! # Example
//!
//! ```
//! use mvtl_common::{LockMode, Timestamp, TsRange, TxId};
//! use mvtl_locks::KeyLockState;
//!
//! let mut state = KeyLockState::new();
//! let reader = TxId(1);
//! let writer = TxId(2);
//!
//! // The reader locks timestamps [3, 6] (it read the version at 2).
//! let analysis = state.analyze(reader, LockMode::Read, TsRange::new(Timestamp::at(3), Timestamp::at(6)));
//! state.acquire(reader, LockMode::Read, &analysis.grantable);
//!
//! // A writer now cannot write-lock timestamp 5...
//! let w = state.analyze(writer, LockMode::Write, TsRange::point(Timestamp::at(5)));
//! assert!(w.grantable.is_empty());
//! // ...but can write-lock timestamp 7.
//! let w = state.analyze(writer, LockMode::Write, TsRange::point(Timestamp::at(7)));
//! assert!(w.grantable.contains(Timestamp::at(7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod entry;
mod freezable;
mod table;

pub use analysis::AcquireAnalysis;
pub use entry::LockEntry;
pub use freezable::{FreezableLock, FreezableLockError};
pub use table::{KeyLockState, LockStateStats};
