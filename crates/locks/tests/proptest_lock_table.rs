//! Property-based tests of the interval lock table invariants.
//!
//! The central safety property of freezable timestamp locks: the table never
//! grants two conflicting locks on the same timestamp, and freezing is
//! permanent. These invariants are what the serializability proof of the paper
//! (Appendix A) relies on.

use mvtl_common::{LockMode, Timestamp, TsRange, TxId};
use mvtl_locks::KeyLockState;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Acquire {
        tx: u8,
        write: bool,
        start: u64,
        len: u64,
    },
    Freeze {
        tx: u8,
        write: bool,
        start: u64,
        len: u64,
    },
    ReleaseUnfrozen {
        tx: u8,
    },
    PurgeBelow {
        bound: u64,
    },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..4, any::<bool>(), 0u64..32, 0u64..8).prop_map(|(tx, write, start, len)| {
            Action::Acquire {
                tx,
                write,
                start,
                len,
            }
        }),
        (0u8..4, any::<bool>(), 0u64..32, 0u64..8).prop_map(|(tx, write, start, len)| {
            Action::Freeze {
                tx,
                write,
                start,
                len,
            }
        }),
        (0u8..4).prop_map(|tx| Action::ReleaseUnfrozen { tx }),
        (0u64..32).prop_map(|bound| Action::PurgeBelow { bound }),
    ]
}

fn mode(write: bool) -> LockMode {
    if write {
        LockMode::Write
    } else {
        LockMode::Read
    }
}

fn range(start: u64, len: u64) -> TsRange {
    TsRange::new(Timestamp::at(start), Timestamp::at(start + len))
}

/// Check that no two entries of different owners conflict on an overlapping range.
fn no_conflicting_grants(state: &KeyLockState) -> bool {
    let entries = state.entries();
    for (i, a) in entries.iter().enumerate() {
        for b in entries.iter().skip(i + 1) {
            if a.owner != b.owner && a.mode.conflicts_with(b.mode) && a.range.overlaps(&b.range) {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn never_grants_conflicting_locks(actions in proptest::collection::vec(arb_action(), 1..60)) {
        let mut state = KeyLockState::new();
        for action in actions {
            match action {
                Action::Acquire { tx, write, start, len } => {
                    // Only grant what analyze says is grantable — exactly what engines do.
                    state.acquire_grantable(TxId(tx as u64), mode(write), range(start, len));
                }
                Action::Freeze { tx, write, start, len } => {
                    state.freeze(TxId(tx as u64), mode(write), range(start, len));
                }
                Action::ReleaseUnfrozen { tx } => {
                    state.release_unfrozen(TxId(tx as u64));
                }
                Action::PurgeBelow { bound } => {
                    state.purge_below(Timestamp::at(bound));
                }
            }
            prop_assert!(no_conflicting_grants(&state),
                "conflicting grants present: {:?}", state.entries());
        }
    }

    #[test]
    fn frozen_locks_survive_release(
        start in 0u64..32, len in 0u64..8,
        fstart in 0u64..32, flen in 0u64..8,
    ) {
        let mut state = KeyLockState::new();
        let tx = TxId(1);
        state.acquire_grantable(tx, LockMode::Write, range(start, len));
        let freeze_range = range(fstart, flen);
        state.freeze(tx, LockMode::Write, freeze_range);
        let frozen_before: Vec<_> = state
            .entries()
            .iter()
            .filter(|e| e.frozen)
            .map(|e| e.range)
            .collect();
        state.release_unfrozen(tx);
        let frozen_after: Vec<_> = state
            .entries()
            .iter()
            .filter(|e| e.frozen)
            .map(|e| e.range)
            .collect();
        prop_assert_eq!(frozen_before, frozen_after);
        // Nothing unfrozen remains.
        prop_assert!(state.entries().iter().all(|e| e.frozen));
    }

    #[test]
    fn held_reflects_grants(
        grants in proptest::collection::vec((0u8..3, any::<bool>(), 0u64..32, 0u64..6), 1..12)
    ) {
        let mut state = KeyLockState::new();
        let mut granted: Vec<(TxId, LockMode, TsRange)> = Vec::new();
        for (tx, write, start, len) in grants {
            let tx = TxId(tx as u64);
            let m = mode(write);
            let r = range(start, len);
            let analysis = state.acquire_grantable(tx, m, r);
            for g in analysis.grantable.ranges() {
                granted.push((tx, m, *g));
            }
        }
        // Everything granted must be reported as held.
        for (tx, m, r) in granted {
            prop_assert!(state.held(tx, m).contains_range(&r),
                "grant {:?} {:?} {:?} not reported as held", tx, m, r);
        }
    }

    #[test]
    fn analysis_partitions_the_request(
        setup in proptest::collection::vec((0u8..3, any::<bool>(), 0u64..32, 0u64..6), 0..10),
        req_tx in 3u8..5, req_write in any::<bool>(), req_start in 0u64..32, req_len in 0u64..6,
    ) {
        let mut state = KeyLockState::new();
        for (tx, write, start, len) in setup {
            let tx = TxId(tx as u64);
            state.acquire_grantable(tx, mode(write), range(start, len));
            // Freeze a prefix of whatever was acquired to create frozen conflicts.
            if start % 2 == 0 {
                state.freeze(tx, mode(write), range(start, len / 2));
            }
        }
        let req = range(req_start, req_len);
        let analysis = state.analyze(TxId(req_tx as u64), mode(req_write), req);
        // The three buckets jointly cover the request and the grantable bucket
        // is disjoint from the other two.
        let mut covered = analysis.grantable.union(&analysis.blocked_unfrozen);
        covered = covered.union(&analysis.frozen_conflicts);
        prop_assert!(covered.contains_range(&req));
        prop_assert!(analysis.grantable.intersection(&analysis.blocked_unfrozen).is_empty());
        prop_assert!(analysis.grantable.intersection(&analysis.frozen_conflicts).is_empty());
    }
}
