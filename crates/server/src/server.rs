//! The threaded TCP server fronting any registry-built engine.
//!
//! One accept thread plus one handler thread per connection. Every handler
//! owns a map of connection-local transaction ids to RAII
//! [`Transaction`] guards; when the handler exits —
//! clean disconnect, protocol violation, I/O error, or server shutdown — the
//! map drops and **every transaction the connection still had open aborts**,
//! releasing its lock-table entries. A crashed or misbehaving client can
//! therefore never leave locks held.
//!
//! The handler flushes its response buffer only when the request stream runs
//! dry, so a pipelining client (the open-loop driver sends a whole
//! transaction in one write) pays one syscall round per burst, not per
//! request.

use crate::wire::{
    self, is_clean_eof, read_frame, write_frame, Request, Response, WireError, DEFAULT_MAX_FRAME,
};
use mvtl_common::{Engine, Transaction, TxError};
use mvtl_registry::{EngineSpec, SpecError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server knobs, settable through `serve_`-prefixed spec parameters
/// (`"mvtil-early?serve_max_txns=64"`); see [`ServerConfig::from_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Cap on a request frame's declared payload length (`serve_max_frame`,
    /// bytes). Larger declarations are protocol errors, rejected before any
    /// allocation.
    pub max_frame: u32,
    /// Cap on concurrently open transactions per connection
    /// (`serve_max_txns`). Exceeding it is a protocol error.
    pub max_txns: usize,
    /// Whether to set `TCP_NODELAY` on accepted connections
    /// (`serve_nodelay`, `0`/`1`).
    pub nodelay: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: DEFAULT_MAX_FRAME,
            max_txns: 1024,
            nodelay: true,
        }
    }
}

impl ServerConfig {
    /// Splits a full serve spec into the server configuration (from
    /// `serve_`-prefixed parameters) and the engine spec for
    /// `mvtl_registry::build`.
    ///
    /// Recognized parameters: `serve_max_frame` (bytes, > 0), `serve_max_txns`
    /// (> 0), `serve_nodelay` (`0` | `1`).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the spec is malformed or a `serve_`
    /// parameter is unknown or has an invalid value. Engine-side parameters
    /// are *not* validated here — the registry does that when the engine is
    /// built.
    pub fn from_spec(spec: &str) -> Result<(ServerConfig, String), SpecError> {
        let (params, engine_spec) = EngineSpec::split_prefixed(spec, "serve_")?;
        let mut config = ServerConfig::default();
        for (key, value) in params {
            let invalid = || SpecError::InvalidValue {
                param: format!("serve_{key}"),
                value: value.clone(),
            };
            match key.as_str() {
                "max_frame" => {
                    config.max_frame = value.parse().ok().filter(|v| *v > 0).ok_or_else(invalid)?;
                }
                "max_txns" => {
                    config.max_txns = value.parse().ok().filter(|v| *v > 0).ok_or_else(invalid)?;
                }
                "nodelay" => {
                    config.nodelay = match value.as_str() {
                        "0" => false,
                        "1" => true,
                        _ => return Err(invalid()),
                    };
                }
                _ => {
                    return Err(SpecError::UnknownParam {
                        engine: "serve".to_string(),
                        param: format!("serve_{key}"),
                    })
                }
            }
        }
        Ok((config, engine_spec))
    }
}

/// A running serve-path: a bound listener, its accept thread, and one handler
/// thread per live connection. Dropping the server stops accepting, shuts
/// down every connection (aborting its open transactions), and joins all
/// threads.
pub struct Server {
    addr: SocketAddr,
    engine_spec: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// State shared between the accept thread and the server handle.
struct Shared {
    /// Live connection streams (for shutdown) and finished handler handles.
    connections: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
}

impl Server {
    /// Builds the engine named by `spec` (any `mvtl-registry` spec, plus the
    /// `serve_` parameters of [`ServerConfig::from_spec`]) and serves it on
    /// `addr`. Pass port 0 to bind an ephemeral port; [`Server::addr`]
    /// reports the bound address.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec fails to parse/build or the listener
    /// cannot bind.
    pub fn spawn(spec: &str, addr: &str) -> Result<Server, Box<dyn std::error::Error>> {
        let (config, engine_spec) = ServerConfig::from_spec(spec)?;
        let engine: Arc<dyn Engine<u64>> = Arc::from(mvtl_registry::build(&engine_spec)?);
        let listener = TcpListener::bind(addr)?;
        Ok(Self::serve(listener, engine, engine_spec, config)?)
    }

    /// Serves an already-built engine on an already-bound listener. The
    /// handshake reports `engine_spec` to clients verbatim.
    ///
    /// # Errors
    ///
    /// Returns an error when the listener cannot report its bound address.
    pub fn serve(
        listener: TcpListener,
        engine: Arc<dyn Engine<u64>>,
        engine_spec: String,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            connections: Mutex::named("server.connections", 10, Vec::new()),
        });
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            let spec = engine_spec.clone();
            std::thread::spawn(move || {
                accept_loop(&listener, &engine, &spec, &config, &stop, &shared);
            })
        };
        Ok(Server {
            addr,
            engine_spec,
            stop,
            accept_thread: Some(accept_thread),
            shared,
        })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine spec the server was built from (also sent in the
    /// handshake).
    #[must_use]
    pub fn engine_spec(&self) -> &str {
        &self.engine_spec
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; it re-checks
        // the stop flag before handling anything.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Shut down every live connection; their handlers drop the
        // transaction maps (aborting open transactions) and exit.
        let connections = std::mem::take(&mut *self.shared.connections.lock());
        for (stream, handle) in connections {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<dyn Engine<u64>>,
    engine_spec: &str,
    config: &ServerConfig,
    stop: &Arc<AtomicBool>,
    shared: &Arc<Shared>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if config.nodelay {
            let _ = stream.set_nodelay(true);
        }
        let Ok(peer) = stream.try_clone() else {
            continue;
        };
        let handle = {
            let engine = Arc::clone(engine);
            let spec = engine_spec.to_string();
            let config = config.clone();
            std::thread::spawn(move || {
                // All exits (clean EOF, protocol error, shutdown) funnel
                // through handle_connection's return; the transaction map is
                // local to it, so the RAII aborts happen before the thread
                // dies.
                let socket = stream.try_clone();
                let _ = handle_connection(stream, engine.as_ref(), &spec, &config);
                // Actively shut the socket down: the registry above holds its
                // own clone (for Drop), and a lingering clone would keep the
                // connection open — the peer would never see EOF after a
                // protocol-violation close.
                if let Ok(socket) = socket {
                    let _ = socket.shutdown(std::net::Shutdown::Both);
                }
            })
        };
        shared.connections.lock().push((peer, handle));
        // Opportunistically reap finished handlers so a long-lived server
        // does not accumulate one parked JoinHandle per past connection.
        shared
            .connections
            .lock()
            .retain(|(_, handle)| !handle.is_finished());
    }
}

/// Outcome classification of one request: whether the connection can go on.
enum Flow {
    Continue,
    /// A protocol violation was answered; close the connection.
    Close,
}

fn handle_connection(
    stream: TcpStream,
    engine: &dyn Engine<u64>,
    engine_spec: &str,
    config: &ServerConfig,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // The per-connection transaction table. Dropping it — on ANY exit path —
    // aborts every open transaction through the Transaction RAII guard.
    let mut txns: HashMap<u32, Transaction<'_, u64>> = HashMap::new();

    write_frame(&mut writer, &wire::encode_hello(engine.name(), engine_spec))?;
    writer.flush()?;

    loop {
        let payload = match read_frame(&mut reader, config.max_frame) {
            Ok(payload) => payload,
            Err(err) if is_clean_eof(&err) => return Ok(()),
            Err(WireError::Io(err)) => return Err(err),
            Err(err) => {
                // Oversized declared length or garbage framing: tell the
                // peer why, then hang up (dropping `txns` aborts everything).
                respond(&mut writer, &Response::Protocol(err.to_string()))?;
                return Ok(());
            }
        };
        let flow = match wire::decode_request(&payload) {
            Ok(request) => handle_request(engine, config, &mut txns, request, &mut writer)?,
            Err(err) => {
                respond(&mut writer, &Response::Protocol(err.to_string()))?;
                Flow::Close
            }
        };
        if matches!(flow, Flow::Close) {
            return Ok(());
        }
        // Flush once the pipelined burst is fully consumed — before the next
        // read_frame blocks on the socket, or the client would wait forever
        // for responses sitting in this buffer. One syscall per burst, not
        // per request.
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
    }
}

fn respond<W: Write>(writer: &mut W, response: &Response) -> io::Result<()> {
    write_frame(writer, &wire::encode_response(response))?;
    writer.flush()
}

fn error_response(err: TxError) -> Response {
    match err {
        TxError::Aborted(reason) => Response::Aborted(reason),
        TxError::TransactionFinished => Response::Finished,
        TxError::Internal(msg) => Response::Internal(msg),
    }
}

fn handle_request<'e, W: Write>(
    engine: &'e dyn Engine<u64>,
    config: &ServerConfig,
    txns: &mut HashMap<u32, Transaction<'e, u64>>,
    request: Request,
    writer: &mut W,
) -> io::Result<Flow> {
    let response = match request {
        Request::Begin {
            txn,
            process,
            pinned,
        } => {
            if txns.contains_key(&txn) {
                let resp = Response::Protocol(format!("begin: transaction {txn} already live"));
                write_frame(writer, &wire::encode_response(&resp))?;
                writer.flush()?;
                return Ok(Flow::Close);
            }
            if txns.len() >= config.max_txns {
                let resp = Response::Protocol(format!(
                    "begin: connection exceeds {} open transactions",
                    config.max_txns
                ));
                write_frame(writer, &wire::encode_response(&resp))?;
                writer.flush()?;
                return Ok(Flow::Close);
            }
            let guard = Transaction::from_handle(engine.begin_handle(process, pinned));
            txns.insert(txn, guard);
            Response::Begun
        }
        Request::Read { txn, key } => match txns.get_mut(&txn) {
            None => Response::Finished,
            Some(tx) => match tx.read(key) {
                Ok(value) => Response::Value(value),
                Err(err) => {
                    // The engine aborted the transaction: tear the guard down
                    // now (RAII abort) so its locks release immediately, and
                    // answer later pipelined frames for this id with Finished.
                    txns.remove(&txn);
                    error_response(err)
                }
            },
        },
        Request::Write { txn, key, value } => match txns.get_mut(&txn) {
            None => Response::Finished,
            Some(tx) => match tx.write(key, value) {
                Ok(()) => Response::Written,
                Err(err) => {
                    txns.remove(&txn);
                    error_response(err)
                }
            },
        },
        Request::ReadMany { txn, keys } => match txns.get_mut(&txn) {
            None => Response::Finished,
            Some(tx) => match tx.read_many(&keys) {
                Ok(values) => Response::Values(values),
                Err(err) => {
                    txns.remove(&txn);
                    error_response(err)
                }
            },
        },
        Request::WriteMany { txn, entries } => match txns.get_mut(&txn) {
            None => Response::Finished,
            Some(tx) => match tx.write_many(entries) {
                Ok(()) => Response::Written,
                Err(err) => {
                    txns.remove(&txn);
                    error_response(err)
                }
            },
        },
        Request::Commit { txn } => match txns.remove(&txn) {
            None => Response::Finished,
            Some(tx) => match tx.commit() {
                Ok(info) => Response::Committed(info),
                Err(err) => error_response(err),
            },
        },
        Request::Abort { txn } => match txns.remove(&txn) {
            None => Response::Finished,
            Some(tx) => {
                tx.abort();
                Response::AbortAck
            }
        },
        Request::Stats => Response::Stats(engine.stats()),
    };
    write_frame(writer, &wire::encode_response(&response))?;
    Ok(Flow::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_spec_splits_serve_params() {
        let (config, engine) =
            ServerConfig::from_spec("mvtil-early?delta=500&serve_max_txns=7&serve_nodelay=0")
                .unwrap();
        assert_eq!(config.max_txns, 7);
        assert!(!config.nodelay);
        assert_eq!(config.max_frame, DEFAULT_MAX_FRAME);
        assert_eq!(engine, "mvtil-early?delta=500");

        let (config, engine) = ServerConfig::from_spec("sharded?shards=2").unwrap();
        assert_eq!(config, ServerConfig::default());
        assert_eq!(engine, "sharded?shards=2");
    }

    #[test]
    fn config_rejects_bad_serve_params() {
        assert!(matches!(
            ServerConfig::from_spec("mvtil-early?serve_max_txns=0"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("mvtil-early?serve_max_frame=banana"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("mvtil-early?serve_nodelay=yes"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("mvtil-early?serve_frobnicate=1"),
            Err(SpecError::UnknownParam { .. })
        ));
    }

    #[test]
    fn spawn_rejects_engine_spec_errors() {
        assert!(Server::spawn("no-such-engine", "127.0.0.1:0").is_err());
        assert!(Server::spawn("mvtil-early?delta=banana", "127.0.0.1:0").is_err());
    }
}
