//! The length-prefixed binary wire protocol of the serve-path.
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! followed by exactly that many payload bytes. The payload layouts:
//!
//! ```text
//! hello    (server → client, once per connection)
//!   [magic: u32 = "MVTL"] [version: u16] [name_len: u16] [name bytes]
//!   [spec_len: u16] [spec bytes]
//!
//! request  (client → server)
//!   [opcode: u8] [txn: u32] [body ...]
//!
//! response (server → client, one per request, in request order)
//!   [status: u8] [body ...]
//! ```
//!
//! All integers are little-endian; there is no padding. Strings are UTF-8
//! with a `u16` byte-length prefix. The protocol carries `u64` values — the
//! value type of every benchmark and of the verifier.
//!
//! Decoding is strict: a body that is shorter or longer than its opcode
//! demands, an unknown opcode, or a declared frame length above the
//! receiver's cap is a [`WireError`], and the server answers with a
//! [`Response::Protocol`] frame before closing the connection (which aborts
//! every transaction the connection still had open — the RAII drop path).

use mvtl_common::{AbortReason, CommitInfo, Key, ProcessId, StoreStats, Timestamp, TxError, TxId};
use std::io::{self, Read, Write};

/// Magic number opening the hello frame (`b"MVTL"` little-endian).
pub const MAGIC: u32 = u32::from_le_bytes(*b"MVTL");
/// Version of the wire protocol. Bump on any incompatible layout change.
pub const WIRE_VERSION: u16 = 1;
/// Default cap on a frame's declared payload length. A peer declaring more is
/// a protocol error — the receiver never allocates the declared amount first.
pub const DEFAULT_MAX_FRAME: u32 = 256 * 1024;

// Request opcodes.
const OP_BEGIN: u8 = 1;
const OP_READ: u8 = 2;
const OP_WRITE: u8 = 3;
const OP_READ_MANY: u8 = 4;
const OP_WRITE_MANY: u8 = 5;
const OP_COMMIT: u8 = 6;
const OP_ABORT: u8 = 7;
const OP_STATS: u8 = 8;

// Response status bytes. 0x00..=0x3F acknowledge success; 0x40.. report
// failures.
const ST_BEGUN: u8 = 0x00;
const ST_VALUE: u8 = 0x01;
const ST_WRITTEN: u8 = 0x02;
const ST_VALUES: u8 = 0x03;
const ST_COMMITTED: u8 = 0x04;
const ST_ABORT_ACK: u8 = 0x05;
const ST_STATS: u8 = 0x06;
const ST_ABORTED: u8 = 0x40;
const ST_FINISHED: u8 = 0x41;
const ST_INTERNAL: u8 = 0x42;
const ST_PROTOCOL: u8 = 0x43;

/// Errors arising while encoding or decoding frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The peer declared a frame longer than the local cap.
    FrameTooLarge {
        /// Length the peer declared.
        declared: u32,
        /// The local cap it exceeded.
        max: u32,
    },
    /// A payload did not match the layout its opcode/status demands.
    Malformed(&'static str),
    /// The hello frame did not carry the expected magic/version.
    BadHandshake(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::FrameTooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds cap {max}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::BadHandshake(what) => write!(f, "bad handshake: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Whether the error is a clean end-of-stream before any frame byte arrived
/// (a peer hanging up between requests, which is not a protocol violation).
#[must_use]
pub fn is_clean_eof(err: &WireError) -> bool {
    matches!(err, WireError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
}

/// One client request. `txn` is a connection-local transaction id chosen by
/// the client; the server keeps one RAII transaction guard per live id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens transaction `txn` on behalf of `process`, optionally pinning the
    /// clock reading it observes (used by schedule replays).
    Begin {
        /// Connection-local transaction id (must not be live).
        txn: u32,
        /// Process id the engine attributes the transaction to.
        process: ProcessId,
        /// Optional pinned clock reading.
        pinned: Option<Timestamp>,
    },
    /// Reads `key` within transaction `txn`.
    Read {
        /// Transaction id.
        txn: u32,
        /// Key to read.
        key: Key,
    },
    /// Writes `value` to `key` within transaction `txn`.
    Write {
        /// Transaction id.
        txn: u32,
        /// Key to write.
        key: Key,
        /// Value to install on commit.
        value: u64,
    },
    /// Batched read of `keys` (in order) within transaction `txn`.
    ReadMany {
        /// Transaction id.
        txn: u32,
        /// Keys to read, in order.
        keys: Vec<Key>,
    },
    /// Batched write of `entries` (in order) within transaction `txn`.
    WriteMany {
        /// Transaction id.
        txn: u32,
        /// `(key, value)` pairs, in order (last value wins per key).
        entries: Vec<(Key, u64)>,
    },
    /// Commits transaction `txn`, returning its [`CommitInfo`].
    Commit {
        /// Transaction id.
        txn: u32,
    },
    /// Aborts transaction `txn` explicitly.
    Abort {
        /// Transaction id.
        txn: u32,
    },
    /// Samples the engine's [`StoreStats`] (no transaction involved).
    Stats,
}

/// One server response. Success statuses mirror the request kinds so a
/// pipelining client can match responses to requests positionally *and*
/// sanity-check the kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Begin` succeeded.
    Begun,
    /// `Read` succeeded; `None` is the initial `⊥` version.
    Value(Option<u64>),
    /// `Write` succeeded.
    Written,
    /// `ReadMany` succeeded, values in request order.
    Values(Vec<Option<u64>>),
    /// `Commit` succeeded.
    Committed(CommitInfo),
    /// `Abort` was applied.
    AbortAck,
    /// `Stats` result.
    Stats(StoreStats),
    /// The operation aborted the transaction (which the server has already
    /// cleaned up — the id is no longer live).
    Aborted(AbortReason),
    /// The operation referenced a transaction id that is not live (never
    /// begun, already finished, or torn down by an earlier abort).
    Finished,
    /// An engine invariant violation (a bug, not a normal abort).
    Internal(String),
    /// The request violated the protocol; the server closes the connection
    /// right after sending this.
    Protocol(String),
}

impl Response {
    /// Converts an error response back into the [`TxError`] the engine would
    /// have produced in-process. Success responses return `None`.
    #[must_use]
    pub fn as_tx_error(&self) -> Option<TxError> {
        match self {
            Response::Aborted(reason) => Some(TxError::Aborted(reason.clone())),
            Response::Finished => Some(TxError::TransactionFinished),
            Response::Internal(msg) => Some(TxError::Internal(msg.clone())),
            Response::Protocol(msg) => Some(TxError::Internal(format!("protocol error: {msg}"))),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len()).unwrap_or(u16::MAX);
    put_u16(buf, len);
    buf.extend_from_slice(&bytes[..usize::from(len)]);
}

/// A strict cursor over a payload: every take checks the remaining length and
/// [`Cursor::finish`] rejects trailing garbage.
struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.data.len() < n {
            return Err(WireError::Malformed("payload shorter than declared"));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Like [`Cursor::take`], but returns a fixed-size array (for the
    /// `from_le_bytes` decoders) without any fallible re-slicing.
    fn take_n<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_n()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_n()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_n()?))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string field is not UTF-8"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("payload longer than its layout"))
        }
    }
}

fn put_timestamp(buf: &mut Vec<u8>, ts: Timestamp) {
    put_u64(buf, ts.value);
    put_u32(buf, ts.process);
}

fn take_timestamp(cur: &mut Cursor<'_>) -> Result<Timestamp, WireError> {
    let value = cur.u64()?;
    let process = cur.u32()?;
    Ok(Timestamp { value, process })
}

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

/// Appends one frame (`u32` length + payload) to `buf`. Used by pipelining
/// clients to pack a whole transaction into a single write.
pub fn push_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    put_u32(buf, payload.len() as u32);
    buf.extend_from_slice(payload);
}

/// Writes one frame to `w` (without flushing).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame from `r`, enforcing the payload-length cap *before*
/// allocating anything.
///
/// # Errors
///
/// Returns [`WireError::FrameTooLarge`] when the declared length exceeds
/// `max`, or [`WireError::Io`] on stream failure (including EOF; use
/// [`is_clean_eof`] to distinguish a hang-up between frames).
pub fn read_frame<R: Read>(r: &mut R, max: u32) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let declared = u32::from_le_bytes(header);
    if declared > max {
        return Err(WireError::FrameTooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Hello
// ---------------------------------------------------------------------------

/// Encodes the hello payload the server sends right after accepting.
#[must_use]
pub fn encode_hello(engine_name: &str, engine_spec: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + engine_name.len() + engine_spec.len());
    put_u32(&mut buf, MAGIC);
    put_u16(&mut buf, WIRE_VERSION);
    put_str(&mut buf, engine_name);
    put_str(&mut buf, engine_spec);
    buf
}

/// Decodes a hello payload into `(engine_name, engine_spec)`.
///
/// # Errors
///
/// Returns [`WireError::BadHandshake`] on a wrong magic or version, and
/// [`WireError::Malformed`] on layout violations.
pub fn decode_hello(payload: &[u8]) -> Result<(String, String), WireError> {
    let mut cur = Cursor::new(payload);
    let magic = cur.u32()?;
    if magic != MAGIC {
        return Err(WireError::BadHandshake(format!(
            "magic {magic:#x} is not {MAGIC:#x}"
        )));
    }
    let version = cur.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadHandshake(format!(
            "wire version {version} is not {WIRE_VERSION}"
        )));
    }
    let name = cur.str()?;
    let spec = cur.str()?;
    cur.finish()?;
    Ok((name, spec))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Encodes a request payload.
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    match req {
        Request::Begin {
            txn,
            process,
            pinned,
        } => {
            buf.push(OP_BEGIN);
            put_u32(&mut buf, *txn);
            put_u32(&mut buf, process.0);
            match pinned {
                None => buf.push(0),
                Some(ts) => {
                    buf.push(1);
                    put_timestamp(&mut buf, *ts);
                }
            }
        }
        Request::Read { txn, key } => {
            buf.push(OP_READ);
            put_u32(&mut buf, *txn);
            put_u64(&mut buf, key.0);
        }
        Request::Write { txn, key, value } => {
            buf.push(OP_WRITE);
            put_u32(&mut buf, *txn);
            put_u64(&mut buf, key.0);
            put_u64(&mut buf, *value);
        }
        Request::ReadMany { txn, keys } => {
            buf.push(OP_READ_MANY);
            put_u32(&mut buf, *txn);
            put_u32(&mut buf, keys.len() as u32);
            for key in keys {
                put_u64(&mut buf, key.0);
            }
        }
        Request::WriteMany { txn, entries } => {
            buf.push(OP_WRITE_MANY);
            put_u32(&mut buf, *txn);
            put_u32(&mut buf, entries.len() as u32);
            for (key, value) in entries {
                put_u64(&mut buf, key.0);
                put_u64(&mut buf, *value);
            }
        }
        Request::Commit { txn } => {
            buf.push(OP_COMMIT);
            put_u32(&mut buf, *txn);
        }
        Request::Abort { txn } => {
            buf.push(OP_ABORT);
            put_u32(&mut buf, *txn);
        }
        Request::Stats => {
            buf.push(OP_STATS);
            put_u32(&mut buf, 0);
        }
    }
    buf
}

/// Decodes a request payload (strict: trailing bytes are rejected).
///
/// # Errors
///
/// Returns [`WireError::Malformed`] on unknown opcodes or layout violations.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut cur = Cursor::new(payload);
    let opcode = cur.u8()?;
    let txn = cur.u32()?;
    let req = match opcode {
        OP_BEGIN => {
            let process = ProcessId(cur.u32()?);
            let pinned = match cur.u8()? {
                0 => None,
                1 => Some(take_timestamp(&mut cur)?),
                _ => return Err(WireError::Malformed("pinned flag is not 0/1")),
            };
            Request::Begin {
                txn,
                process,
                pinned,
            }
        }
        OP_READ => Request::Read {
            txn,
            key: Key(cur.u64()?),
        },
        OP_WRITE => Request::Write {
            txn,
            key: Key(cur.u64()?),
            value: cur.u64()?,
        },
        OP_READ_MANY => {
            let n = cur.u32()? as usize;
            // The frame length cap already bounds n; this guards a declared
            // count larger than the bytes actually present.
            let mut keys = Vec::with_capacity(n.min(payload.len() / 8 + 1));
            for _ in 0..n {
                keys.push(Key(cur.u64()?));
            }
            Request::ReadMany { txn, keys }
        }
        OP_WRITE_MANY => {
            let n = cur.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(payload.len() / 16 + 1));
            for _ in 0..n {
                entries.push((Key(cur.u64()?), cur.u64()?));
            }
            Request::WriteMany { txn, entries }
        }
        OP_COMMIT => Request::Commit { txn },
        OP_ABORT => Request::Abort { txn },
        OP_STATS => Request::Stats,
        _ => return Err(WireError::Malformed("unknown request opcode")),
    };
    cur.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn put_abort_reason(buf: &mut Vec<u8>, reason: &AbortReason) {
    match reason {
        AbortReason::NoCommonTimestamp => buf.push(0),
        AbortReason::WriteConflict { key } => {
            buf.push(1);
            put_u64(buf, key.0);
        }
        AbortReason::LockTimeout { key } => {
            buf.push(2);
            put_u64(buf, key.0);
        }
        AbortReason::VersionPurged { key, below } => {
            buf.push(3);
            put_u64(buf, key.0);
            put_timestamp(buf, *below);
        }
        AbortReason::CommitmentDecidedAbort => buf.push(4),
        AbortReason::UserRequested => buf.push(5),
        AbortReason::IntervalExhausted { key } => {
            buf.push(6);
            put_u64(buf, key.0);
        }
        AbortReason::PrepareTimedOut { shard } => {
            buf.push(7);
            put_u32(buf, *shard);
        }
        AbortReason::ParticipantCrashed { shard } => {
            buf.push(8);
            put_u32(buf, *shard);
        }
    }
}

fn take_abort_reason(cur: &mut Cursor<'_>) -> Result<AbortReason, WireError> {
    Ok(match cur.u8()? {
        0 => AbortReason::NoCommonTimestamp,
        1 => AbortReason::WriteConflict {
            key: Key(cur.u64()?),
        },
        2 => AbortReason::LockTimeout {
            key: Key(cur.u64()?),
        },
        3 => AbortReason::VersionPurged {
            key: Key(cur.u64()?),
            below: take_timestamp(cur)?,
        },
        4 => AbortReason::CommitmentDecidedAbort,
        5 => AbortReason::UserRequested,
        6 => AbortReason::IntervalExhausted {
            key: Key(cur.u64()?),
        },
        7 => AbortReason::PrepareTimedOut { shard: cur.u32()? },
        8 => AbortReason::ParticipantCrashed { shard: cur.u32()? },
        _ => return Err(WireError::Malformed("unknown abort-reason code")),
    })
}

/// Encodes a response payload.
#[must_use]
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    match resp {
        Response::Begun => buf.push(ST_BEGUN),
        Response::Value(value) => {
            buf.push(ST_VALUE);
            match value {
                None => buf.push(0),
                Some(v) => {
                    buf.push(1);
                    put_u64(&mut buf, *v);
                }
            }
        }
        Response::Written => buf.push(ST_WRITTEN),
        Response::Values(values) => {
            buf.push(ST_VALUES);
            put_u32(&mut buf, values.len() as u32);
            for value in values {
                match value {
                    None => buf.push(0),
                    Some(v) => {
                        buf.push(1);
                        put_u64(&mut buf, *v);
                    }
                }
            }
        }
        Response::Committed(info) => {
            buf.push(ST_COMMITTED);
            put_u64(&mut buf, info.tx.0);
            match info.commit_ts {
                None => buf.push(0),
                Some(ts) => {
                    buf.push(1);
                    put_timestamp(&mut buf, ts);
                }
            }
            put_u32(&mut buf, info.reads.len() as u32);
            for (key, ts) in &info.reads {
                put_u64(&mut buf, key.0);
                put_timestamp(&mut buf, *ts);
            }
            put_u32(&mut buf, info.writes.len() as u32);
            for key in &info.writes {
                put_u64(&mut buf, key.0);
            }
        }
        Response::AbortAck => buf.push(ST_ABORT_ACK),
        Response::Stats(stats) => {
            buf.push(ST_STATS);
            put_u64(&mut buf, stats.keys as u64);
            put_u64(&mut buf, stats.versions as u64);
            put_u64(&mut buf, stats.purged_versions as u64);
            put_u64(&mut buf, stats.lock_entries as u64);
            put_u64(&mut buf, stats.frozen_lock_entries as u64);
        }
        Response::Aborted(reason) => {
            buf.push(ST_ABORTED);
            put_abort_reason(&mut buf, reason);
        }
        Response::Finished => buf.push(ST_FINISHED),
        Response::Internal(msg) => {
            buf.push(ST_INTERNAL);
            put_str(&mut buf, msg);
        }
        Response::Protocol(msg) => {
            buf.push(ST_PROTOCOL);
            put_str(&mut buf, msg);
        }
    }
    buf
}

/// Decodes a response payload (strict: trailing bytes are rejected).
///
/// # Errors
///
/// Returns [`WireError::Malformed`] on unknown statuses or layout violations.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut cur = Cursor::new(payload);
    let status = cur.u8()?;
    let resp = match status {
        ST_BEGUN => Response::Begun,
        ST_VALUE => Response::Value(match cur.u8()? {
            0 => None,
            1 => Some(cur.u64()?),
            _ => return Err(WireError::Malformed("value flag is not 0/1")),
        }),
        ST_WRITTEN => Response::Written,
        ST_VALUES => {
            let n = cur.u32()? as usize;
            let mut values = Vec::with_capacity(n.min(payload.len() + 1));
            for _ in 0..n {
                values.push(match cur.u8()? {
                    0 => None,
                    1 => Some(cur.u64()?),
                    _ => return Err(WireError::Malformed("value flag is not 0/1")),
                });
            }
            Response::Values(values)
        }
        ST_COMMITTED => {
            let tx = TxId(cur.u64()?);
            let commit_ts = match cur.u8()? {
                0 => None,
                1 => Some(take_timestamp(&mut cur)?),
                _ => return Err(WireError::Malformed("commit-ts flag is not 0/1")),
            };
            let nreads = cur.u32()? as usize;
            let mut reads = Vec::with_capacity(nreads.min(payload.len() / 20 + 1));
            for _ in 0..nreads {
                reads.push((Key(cur.u64()?), take_timestamp(&mut cur)?));
            }
            let nwrites = cur.u32()? as usize;
            let mut writes = Vec::with_capacity(nwrites.min(payload.len() / 8 + 1));
            for _ in 0..nwrites {
                writes.push(Key(cur.u64()?));
            }
            Response::Committed(CommitInfo {
                tx,
                commit_ts,
                reads,
                writes,
            })
        }
        ST_ABORT_ACK => Response::AbortAck,
        ST_STATS => Response::Stats(StoreStats {
            keys: cur.u64()? as usize,
            versions: cur.u64()? as usize,
            purged_versions: cur.u64()? as usize,
            lock_entries: cur.u64()? as usize,
            frozen_lock_entries: cur.u64()? as usize,
        }),
        ST_ABORTED => Response::Aborted(take_abort_reason(&mut cur)?),
        ST_FINISHED => Response::Finished,
        ST_INTERNAL => Response::Internal(cur.str()?),
        ST_PROTOCOL => Response::Protocol(cur.str()?),
        _ => return Err(WireError::Malformed("unknown response status")),
    };
    cur.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let payload = encode_request(&req);
        assert_eq!(decode_request(&payload).unwrap(), req, "{req:?}");
    }

    fn roundtrip_response(resp: Response) {
        let payload = encode_response(&resp);
        assert_eq!(decode_response(&payload).unwrap(), resp, "{resp:?}");
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_request(Request::Begin {
            txn: 7,
            process: ProcessId(3),
            pinned: None,
        });
        roundtrip_request(Request::Begin {
            txn: 0,
            process: ProcessId(u32::MAX),
            pinned: Some(Timestamp {
                value: 99,
                process: 2,
            }),
        });
        roundtrip_request(Request::Read {
            txn: 1,
            key: Key(42),
        });
        roundtrip_request(Request::Write {
            txn: 1,
            key: Key(42),
            value: u64::MAX,
        });
        roundtrip_request(Request::ReadMany {
            txn: 2,
            keys: vec![Key(1), Key(2), Key(1)],
        });
        roundtrip_request(Request::WriteMany {
            txn: 2,
            entries: vec![(Key(5), 50), (Key(6), 60)],
        });
        roundtrip_request(Request::Commit { txn: 9 });
        roundtrip_request(Request::Abort { txn: 9 });
        roundtrip_request(Request::Stats);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_response(Response::Begun);
        roundtrip_response(Response::Value(None));
        roundtrip_response(Response::Value(Some(17)));
        roundtrip_response(Response::Written);
        roundtrip_response(Response::Values(vec![Some(1), None, Some(3)]));
        roundtrip_response(Response::Committed(CommitInfo {
            tx: TxId(12),
            commit_ts: Some(Timestamp {
                value: 1000,
                process: 4,
            }),
            reads: vec![(Key(1), Timestamp::ZERO), (Key(2), Timestamp::at(7))],
            writes: vec![Key(1), Key(9)],
        }));
        roundtrip_response(Response::Committed(CommitInfo {
            tx: TxId(0),
            commit_ts: None,
            reads: vec![],
            writes: vec![],
        }));
        roundtrip_response(Response::AbortAck);
        roundtrip_response(Response::Stats(StoreStats {
            keys: 1,
            versions: 2,
            purged_versions: 3,
            lock_entries: 4,
            frozen_lock_entries: 5,
        }));
        roundtrip_response(Response::Finished);
        roundtrip_response(Response::Internal("boom".to_string()));
        roundtrip_response(Response::Protocol("bad".to_string()));
    }

    #[test]
    fn every_abort_reason_round_trips() {
        for reason in [
            AbortReason::NoCommonTimestamp,
            AbortReason::WriteConflict { key: Key(1) },
            AbortReason::LockTimeout { key: Key(2) },
            AbortReason::VersionPurged {
                key: Key(3),
                below: Timestamp::at(9),
            },
            AbortReason::CommitmentDecidedAbort,
            AbortReason::UserRequested,
            AbortReason::IntervalExhausted { key: Key(4) },
            AbortReason::PrepareTimedOut { shard: 3 },
            AbortReason::ParticipantCrashed { shard: 7 },
        ] {
            roundtrip_response(Response::Aborted(reason));
        }
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_magic() {
        let hello = encode_hello("mvtil-early", "mvtil-early?delta=500");
        assert_eq!(
            decode_hello(&hello).unwrap(),
            (
                "mvtil-early".to_string(),
                "mvtil-early?delta=500".to_string()
            )
        );
        let mut bad = hello.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_hello(&bad),
            Err(WireError::BadHandshake(_))
        ));
        let mut wrong_version = hello;
        wrong_version[4] ^= 0xFF;
        assert!(matches!(
            decode_hello(&wrong_version),
            Err(WireError::BadHandshake(_))
        ));
    }

    #[test]
    fn decoding_is_strict_about_lengths() {
        // Truncated body.
        let full = encode_request(&Request::Write {
            txn: 1,
            key: Key(2),
            value: 3,
        });
        assert!(matches!(
            decode_request(&full[..full.len() - 1]),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage.
        let mut long = full.clone();
        long.push(0);
        assert!(matches!(
            decode_request(&long),
            Err(WireError::Malformed(_))
        ));
        // Unknown opcode.
        let mut unknown = full;
        unknown[0] = 0xEE;
        assert!(matches!(
            decode_request(&unknown),
            Err(WireError::Malformed(_))
        ));
        // Declared element count larger than the bytes present.
        let mut many = Vec::new();
        many.push(OP_READ_MANY);
        put_u32(&mut many, 1);
        put_u32(&mut many, 1_000_000);
        put_u64(&mut many, 42);
        assert!(matches!(
            decode_request(&many),
            Err(WireError::Malformed(_))
        ));
        // Empty payload.
        assert!(matches!(decode_request(&[]), Err(WireError::Malformed(_))));
        assert!(matches!(decode_response(&[]), Err(WireError::Malformed(_))));
    }

    #[test]
    fn frame_transport_round_trips_and_caps_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        push_frame(&mut buf, b"world");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"world");
        assert!(is_clean_eof(&read_frame(&mut r, 1024).unwrap_err()));

        // An oversized declared length is rejected before allocation.
        let huge = u32::MAX.to_le_bytes();
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(WireError::FrameTooLarge {
                declared: u32::MAX,
                max: 1024
            })
        ));
    }
}
