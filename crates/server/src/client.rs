//! Client side of the serve-path: a framed connection, a pipelined
//! whole-transaction fast path, and a [`RemoteEngine`] adapter that puts the
//! server behind the ordinary [`Engine`] trait so every in-process consumer —
//! the verifier's `replay`, the workload runner, the GC driver — works over
//! TCP unchanged.

use crate::wire::{
    self, decode_response, push_frame, read_frame, write_frame, Request, Response, WireError,
    DEFAULT_MAX_FRAME,
};
use mvtl_common::{
    AbortReason, CommitInfo, Engine, Key, ProcessId, StoreStats, Timestamp, TxError, TxHandle,
};
use mvtl_workload::TxTemplate;
use parking_lot::Mutex;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU32, Ordering};

/// How one pipelined transaction ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOutcome {
    /// The transaction committed.
    Committed(CommitInfo),
    /// The transaction aborted — either an operation aborted it server-side or
    /// commit found no serialization point.
    Aborted(AbortReason),
}

/// A framed client connection: handshake state plus buffered reader/writer
/// halves of one [`TcpStream`].
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    engine_name: String,
    engine_spec: String,
    max_frame: u32,
}

impl Connection {
    /// Connects to a serve-path endpoint and consumes its hello frame.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the connection fails or the handshake is
    /// not a valid MVTL hello of the supported wire version.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Connection, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut conn = Connection {
            reader,
            writer,
            engine_name: String::new(),
            engine_spec: String::new(),
            max_frame: DEFAULT_MAX_FRAME,
        };
        let hello = read_frame(&mut conn.reader, conn.max_frame)?;
        let (name, spec) = wire::decode_hello(&hello)?;
        conn.engine_name = name;
        conn.engine_spec = spec;
        Ok(conn)
    }

    /// The engine name the server reported in its hello frame.
    #[must_use]
    pub fn engine_name(&self) -> &str {
        &self.engine_name
    }

    /// The engine spec the server reported in its hello frame.
    #[must_use]
    pub fn engine_spec(&self) -> &str {
        &self.engine_spec
    }

    /// Sends one request and waits for its response (one round trip).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on stream failure or a malformed response.
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.writer, &wire::encode_request(req))?;
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader, self.max_frame)?;
        decode_response(&payload)
    }

    /// Sends every request in one write, then reads exactly one response per
    /// request, in order. This is the open-loop driver's fast path: a whole
    /// transaction (begin + operations + commit) costs one round trip instead
    /// of one per operation.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on stream failure or a malformed response.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, WireError> {
        let mut buf = Vec::with_capacity(reqs.len() * 32);
        for req in reqs {
            push_frame(&mut buf, &wire::encode_request(req));
        }
        self.writer.write_all(&buf)?;
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(reqs.len());
        for _ in reqs {
            let payload = read_frame(&mut self.reader, self.max_frame)?;
            responses.push(decode_response(&payload)?);
        }
        Ok(responses)
    }

    /// Runs one generated transaction over the pipelined path: begin, the
    /// template's operations (grouped into `read_many`/`write_many` runs of
    /// at most `batch`, exactly as the in-process runner batches them), and
    /// commit — all in a single write.
    ///
    /// Once an operation aborts the transaction server-side, the server
    /// answers the remaining pipelined frames for that id with `Finished`;
    /// this method reports the first abort reason as the outcome.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on stream failure, a malformed or mismatched
    /// response, or a server-reported internal/protocol error.
    pub fn run_template(
        &mut self,
        txn: u32,
        process: ProcessId,
        template: &TxTemplate,
        batch: usize,
        mut next_value: impl FnMut() -> u64,
    ) -> Result<TxnOutcome, WireError> {
        let mut reqs = Vec::with_capacity(template.ops.len() + 2);
        reqs.push(Request::Begin {
            txn,
            process,
            pinned: None,
        });
        let batch = batch.max(1);
        let ops = &template.ops;
        let mut start = 0;
        while start < ops.len() {
            let write = ops[start].1;
            let mut end = start + 1;
            while end < ops.len() && ops[end].1 == write && end - start < batch {
                end += 1;
            }
            let run = &ops[start..end];
            reqs.push(match (write, run) {
                (true, [(key, _)]) => Request::Write {
                    txn,
                    key: *key,
                    value: next_value(),
                },
                (false, [(key, _)]) => Request::Read { txn, key: *key },
                (true, run) => Request::WriteMany {
                    txn,
                    entries: run.iter().map(|(key, _)| (*key, next_value())).collect(),
                },
                (false, run) => Request::ReadMany {
                    txn,
                    keys: run.iter().map(|(key, _)| *key).collect(),
                },
            });
            start = end;
        }
        reqs.push(Request::Commit { txn });

        let responses = self.pipeline(&reqs)?;
        let mut aborted: Option<AbortReason> = None;
        for (req, resp) in reqs.iter().zip(&responses) {
            match (req, resp) {
                (_, Response::Aborted(reason)) => {
                    aborted.get_or_insert_with(|| reason.clone());
                }
                // Later frames of an already-torn-down transaction.
                (_, Response::Finished) if aborted.is_some() => {}
                (Request::Begin { .. }, Response::Begun)
                | (Request::Read { .. }, Response::Value(_))
                | (Request::Write { .. }, Response::Written)
                | (Request::ReadMany { .. }, Response::Values(_))
                | (Request::WriteMany { .. }, Response::Written) => {}
                (Request::Commit { .. }, Response::Committed(info)) => {
                    return Ok(TxnOutcome::Committed(info.clone()));
                }
                (_, Response::Internal(msg)) => {
                    return Err(WireError::Io(io::Error::other(format!(
                        "server internal error: {msg}"
                    ))));
                }
                (_, Response::Protocol(msg)) => {
                    return Err(WireError::Io(io::Error::other(format!(
                        "server protocol error: {msg}"
                    ))));
                }
                (req, resp) => {
                    let _ = (req, resp);
                    return Err(WireError::Malformed("response kind does not match request"));
                }
            }
        }
        match aborted {
            Some(reason) => Ok(TxnOutcome::Aborted(reason)),
            // Every frame acknowledged but no commit response — the server
            // violated the one-response-per-request contract.
            None => Err(WireError::Malformed(
                "pipeline ended without a commit response",
            )),
        }
    }

    /// Samples the server engine's [`StoreStats`] (one round trip).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on stream failure or an unexpected response.
    pub fn stats(&mut self) -> Result<StoreStats, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(WireError::Malformed(
                "stats request got a non-stats response",
            )),
        }
    }
}

fn wire_to_tx_error(err: WireError) -> TxError {
    TxError::Internal(format!("serve-path connection failed: {err}"))
}

/// The server seen through the ordinary [`Engine`] trait: `begin_handle`
/// opens a server-side transaction, reads/writes are one round trip each, and
/// commit/abort finish it. Every in-process consumer of `dyn Engine<u64>` —
/// `mvtl_verify::replay`, the workload runner, examples — runs over TCP
/// unchanged, which is what the in-process/served equivalence test leans on.
///
/// Handles serialize on one shared connection, matching the engine layer's
/// `&self` concurrency contract; for throughput measurements use the
/// open-loop driver, which pipelines whole transactions over one connection
/// per worker instead of paying one round trip per operation.
pub struct RemoteEngine {
    conn: Mutex<Connection>,
    /// Leaked once per connected engine: [`Engine::name`] returns
    /// `&'static str`, and the name only becomes known at handshake time.
    name: &'static str,
    next_txn: AtomicU32,
}

impl RemoteEngine {
    /// Connects and handshakes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the connection or handshake fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<RemoteEngine, WireError> {
        let conn = Connection::connect(addr)?;
        let name = Box::leak(conn.engine_name().to_string().into_boxed_str());
        Ok(RemoteEngine {
            conn: Mutex::named("server.client.conn", 20, conn),
            name,
            next_txn: AtomicU32::new(0),
        })
    }

    /// The engine spec the server reported in its hello frame.
    #[must_use]
    pub fn engine_spec(&self) -> String {
        self.conn.lock().engine_spec().to_string()
    }

    fn roundtrip(&self, req: &Request) -> Result<Response, TxError> {
        self.conn.lock().request(req).map_err(wire_to_tx_error)
    }
}

/// One open server-side transaction driven through [`TxHandle`].
struct RemoteHandle<'e> {
    engine: &'e RemoteEngine,
    txn: u32,
    /// Set when `Begin` itself failed: every operation replays the error.
    broken: Option<TxError>,
}

impl RemoteHandle<'_> {
    fn op(&mut self, req: &Request) -> Result<Response, TxError> {
        if let Some(err) = &self.broken {
            return Err(err.clone());
        }
        let resp = self.engine.roundtrip(req)?;
        match resp.as_tx_error() {
            Some(err) => Err(err),
            None => Ok(resp),
        }
    }
}

impl TxHandle<u64> for RemoteHandle<'_> {
    fn read(&mut self, key: Key) -> Result<Option<u64>, TxError> {
        match self.op(&Request::Read { txn: self.txn, key })? {
            Response::Value(value) => Ok(value),
            _ => Err(TxError::Internal("read got a non-value response".into())),
        }
    }

    fn write(&mut self, key: Key, value: u64) -> Result<(), TxError> {
        match self.op(&Request::Write {
            txn: self.txn,
            key,
            value,
        })? {
            Response::Written => Ok(()),
            _ => Err(TxError::Internal("write got a non-ack response".into())),
        }
    }

    fn read_many(&mut self, keys: &[Key]) -> Result<Vec<Option<u64>>, TxError> {
        match self.op(&Request::ReadMany {
            txn: self.txn,
            keys: keys.to_vec(),
        })? {
            Response::Values(values) => Ok(values),
            _ => Err(TxError::Internal(
                "read_many got a non-values response".into(),
            )),
        }
    }

    fn write_many(&mut self, entries: Vec<(Key, u64)>) -> Result<(), TxError> {
        match self.op(&Request::WriteMany {
            txn: self.txn,
            entries,
        })? {
            Response::Written => Ok(()),
            _ => Err(TxError::Internal(
                "write_many got a non-ack response".into(),
            )),
        }
    }

    fn commit(mut self: Box<Self>) -> Result<CommitInfo, TxError> {
        match self.op(&Request::Commit { txn: self.txn })? {
            Response::Committed(info) => Ok(info),
            _ => Err(TxError::Internal("commit got a non-commit response".into())),
        }
    }

    fn abort(self: Box<Self>) {
        if self.broken.is_some() {
            return;
        }
        // Best-effort: if the operation that aborted the transaction already
        // tore it down server-side, this answers `Finished`, which is fine.
        let _ = self.engine.roundtrip(&Request::Abort { txn: self.txn });
    }
}

impl Engine<u64> for RemoteEngine {
    fn begin_handle(
        &self,
        process: ProcessId,
        pinned: Option<Timestamp>,
    ) -> Box<dyn TxHandle<u64> + '_> {
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        let broken = match self.roundtrip(&Request::Begin {
            txn,
            process,
            pinned,
        }) {
            Ok(Response::Begun) => None,
            Ok(resp) => Some(
                resp.as_tx_error()
                    .unwrap_or_else(|| TxError::Internal("begin got a non-ack response".into())),
            ),
            Err(err) => Some(err),
        };
        Box::new(RemoteHandle {
            engine: self,
            txn,
            broken,
        })
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn stats(&self) -> StoreStats {
        self.conn.lock().stats().unwrap_or_default()
    }
}
