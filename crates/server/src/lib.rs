//! TCP serve-path for the MVTL engines.
//!
//! Everything measured so far in this workspace is in-process and
//! closed-loop. This crate adds the missing production-shaped path:
//!
//! * [`wire`] — a small length-prefixed binary protocol (no crates.io
//!   dependencies): an engine-spec handshake plus
//!   begin/read/write/read_many/write_many/commit/abort/stats frames.
//! * [`server`] — a threaded TCP server fronting any registry-built
//!   `dyn Engine<u64>`. One handler thread per connection; the handler's
//!   per-connection transaction table holds RAII guards, so a disconnect (or
//!   any error path) aborts every transaction the connection left open and
//!   releases its locks.
//! * [`client`] — a framed [`Connection`] with a pipelined
//!   whole-transaction fast path, and [`RemoteEngine`], which implements
//!   [`Engine`](mvtl_common::Engine) so the verifier's replay and every other
//!   `dyn Engine` consumer runs over TCP unchanged.
//! * [`driver`] — an open-loop load generator: seeded Poisson or bursty
//!   arrival schedules at a fixed offered rate, a bounded in-flight queue
//!   (overflow is shed and counted, never back-pressured), latency measured
//!   from the scheduled arrival instant so queueing delay is part of the
//!   number.
//! * [`hist`] — the HDR-style log-linear [`LatencyHistogram`] behind the
//!   driver's p50/p99/p999 columns.
//!
//! ```no_run
//! use mvtl_server::{DriverOptions, Server};
//!
//! let server = Server::spawn("mvtil-early", "127.0.0.1:0")?;
//! let metrics = mvtl_server::run_open_loop(server.addr(), &DriverOptions::default())?;
//! println!(
//!     "committed {} at p99 {} µs",
//!     metrics.committed,
//!     metrics.histogram.p99()
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod driver;
pub use mvtl_common::hist;
pub mod server;
pub mod wire;

pub use client::{Connection, RemoteEngine, TxnOutcome};
pub use driver::{run_open_loop, ArrivalProcess, DriverMetrics, DriverOptions};
pub use hist::LatencyHistogram;
pub use server::{Server, ServerConfig};
pub use wire::WireError;
