//! The open-loop client driver.
//!
//! The closed-loop runner in `mvtl-workload` measures capacity: each client
//! submits its next transaction the moment the previous one finishes, so the
//! system is always exactly as loaded as it can be and latency is hidden by
//! the feedback loop. Production clients do not behave like that — arrivals
//! come from outside at some *offered* rate regardless of how the server is
//! doing (the open-system model of the OLTP measurement literature). This
//! driver generates seeded Poisson or bursty arrival schedules against a
//! serve-path endpoint and measures each transaction's latency **from its
//! scheduled arrival instant**, so time spent queueing behind an overloaded
//! server counts — that is where the saturation knee becomes visible as a
//! tail-latency explosion rather than a throughput plateau.
//!
//! Arrivals are never throttled by completions. A bounded per-connection
//! queue caps memory instead: when a transaction arrives while the queue is
//! full, it is counted as *shed* and dropped, which keeps overloaded runs
//! finite without turning the driver back into a closed loop.

use crate::client::{Connection, TxnOutcome};
use crate::hist::LatencyHistogram;
use crate::wire::WireError;
use mvtl_common::ProcessId;
use mvtl_workload::WorkloadSpec;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::net::ToSocketAddrs;
use std::time::{Duration, Instant};

/// The arrival process shaping the open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential interarrival gaps of mean `1/λ`.
    Poisson,
    /// `burst` transactions arrive simultaneously every `burst/λ` — same
    /// offered rate as Poisson, maximally clumped, to expose queueing tails
    /// that average-rate measurements hide.
    Bursty {
        /// Number of simultaneous arrivals per burst (≥ 1).
        burst: u32,
    },
}

impl ArrivalProcess {
    /// A short label for reports ("poisson", "bursty(16)").
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson => "poisson".to_string(),
            ArrivalProcess::Bursty { burst } => format!("bursty({burst})"),
        }
    }
}

/// Options of one open-loop run.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Number of client connections; the offered load is split evenly across
    /// them and each runs its own seeded arrival schedule.
    pub connections: usize,
    /// Total offered load in transactions per second (> 0).
    pub offered_tps: f64,
    /// How long arrivals are generated for; queued work is drained afterwards.
    pub duration: Duration,
    /// Workload shape (ops per transaction, write fraction, key space, key
    /// distribution, batch), identical to the closed-loop runner's.
    pub spec: WorkloadSpec,
    /// Base seed; each connection derives its own stream.
    pub seed: u64,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Per-connection bound on arrivals waiting to start. An arrival finding
    /// the queue full is shed (counted, not executed).
    pub queue_cap: usize,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            connections: 4,
            offered_tps: 1_000.0,
            duration: Duration::from_millis(200),
            spec: WorkloadSpec::default(),
            seed: 42,
            arrivals: ArrivalProcess::Poisson,
            queue_cap: 1_024,
        }
    }
}

/// Aggregate results of one open-loop run.
#[derive(Debug, Clone)]
pub struct DriverMetrics {
    /// Arrivals the schedule generated (executed + shed).
    pub offered: u64,
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted (after the engine's own retry-free single
    /// attempt — the driver does not retry; an abort is a completed outcome).
    pub aborted: u64,
    /// Arrivals dropped because the in-flight queue was full.
    pub shed: u64,
    /// Wall-clock seconds from the first scheduled arrival to the last
    /// completion (includes the post-deadline drain).
    pub elapsed_secs: f64,
    /// Latency from scheduled arrival to completion, in microseconds, for
    /// every executed transaction (committed or aborted).
    pub histogram: LatencyHistogram,
}

impl DriverMetrics {
    /// Committed transactions per second of elapsed wall-clock.
    #[must_use]
    pub fn achieved_tps(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.committed as f64 / self.elapsed_secs
        }
    }

    /// Fraction of executed transactions that committed.
    #[must_use]
    pub fn commit_rate(&self) -> f64 {
        let executed = self.committed + self.aborted;
        if executed == 0 {
            0.0
        } else {
            self.committed as f64 / executed as f64
        }
    }
}

/// Draws the gap to the next arrival (or batch of arrivals) and how many
/// arrive together at that instant.
fn next_gap(arrivals: ArrivalProcess, per_conn_tps: f64, rng: &mut StdRng) -> (Duration, u32) {
    match arrivals {
        ArrivalProcess::Poisson => {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; 1-u is in (0, 1] so the log is finite.
            let secs = -(1.0 - u).ln() / per_conn_tps;
            (Duration::from_secs_f64(secs.min(1e6)), 1)
        }
        ArrivalProcess::Bursty { burst } => {
            let burst = burst.max(1);
            (
                Duration::from_secs_f64(f64::from(burst) / per_conn_tps),
                burst,
            )
        }
    }
}

/// Sleeps until `deadline`, using the OS sleep for the coarse part and a spin
/// for the last stretch so sub-millisecond interarrival gaps stay accurate.
fn sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        let Some(remaining) = deadline.checked_duration_since(now) else {
            return;
        };
        if remaining > Duration::from_millis(1) {
            std::thread::sleep(remaining - Duration::from_millis(1));
        } else {
            std::hint::spin_loop();
        }
    }
}

struct WorkerResult {
    offered: u64,
    committed: u64,
    aborted: u64,
    shed: u64,
    histogram: LatencyHistogram,
}

fn worker(
    mut conn: Connection,
    worker_index: usize,
    options: &DriverOptions,
    start: Instant,
) -> Result<WorkerResult, WireError> {
    let per_conn_tps = (options.offered_tps / options.connections as f64).max(1e-6);
    let mut rng =
        StdRng::seed_from_u64(options.seed ^ ((worker_index as u64 + 1) * 0x9E37_79B9_7F4A_7C15));
    let sampler = options.spec.key_sampler();
    let process = ProcessId(worker_index as u32 + 1);
    let deadline = start + options.duration;

    let mut result = WorkerResult {
        offered: 0,
        committed: 0,
        aborted: 0,
        shed: 0,
        histogram: LatencyHistogram::new(),
    };
    // Scheduled arrival instants waiting to start (the bounded queue).
    let mut pending: VecDeque<Instant> = VecDeque::new();
    let (gap, mut due) = next_gap(options.arrivals, per_conn_tps, &mut rng);
    let mut next_arrival = start + gap;
    let mut txn_counter: u32 = 0;
    let mut value_counter: u64 = 0;

    loop {
        // Admit every arrival whose scheduled instant has passed. The
        // schedule advances regardless of server progress — that is what
        // makes the loop open.
        let now = Instant::now();
        while next_arrival <= now && next_arrival < deadline {
            for _ in 0..due {
                result.offered += 1;
                if pending.len() < options.queue_cap {
                    pending.push_back(next_arrival);
                } else {
                    result.shed += 1;
                }
            }
            let (gap, n) = next_gap(options.arrivals, per_conn_tps, &mut rng);
            next_arrival += gap;
            due = n;
        }

        if let Some(arrival) = pending.pop_front() {
            let template = options.spec.generate_with(&sampler, &mut rng);
            txn_counter = txn_counter.wrapping_add(1);
            let outcome =
                conn.run_template(txn_counter, process, &template, options.spec.batch, || {
                    value_counter += 1;
                    value_counter
                })?;
            // Latency from the *scheduled* arrival: service time plus however
            // long the transaction sat in the queue.
            let micros = u64::try_from(arrival.elapsed().as_micros()).unwrap_or(u64::MAX);
            result.histogram.record(micros);
            match outcome {
                TxnOutcome::Committed(_) => result.committed += 1,
                TxnOutcome::Aborted(_) => result.aborted += 1,
            }
        } else if next_arrival < deadline {
            sleep_until(next_arrival);
        } else {
            // Past the deadline with an empty queue: the run is over.
            return Ok(result);
        }
    }
}

/// Runs one open-loop measurement against a serve-path endpoint: one thread
/// and one connection per `options.connections`, each generating its share of
/// the offered load on its own seeded schedule, executing transactions over
/// the pipelined path, and recording arrival-to-completion latencies.
///
/// # Errors
///
/// Returns a [`WireError`] when a connection cannot be established or fails
/// mid-run.
pub fn run_open_loop<A: ToSocketAddrs>(
    addr: A,
    options: &DriverOptions,
) -> Result<DriverMetrics, WireError> {
    let connections = options.connections.max(1);
    // Connect everything up front so the measurement starts with the fleet
    // ready, then start the shared clock.
    let mut conns = Vec::with_capacity(connections);
    for _ in 0..connections {
        conns.push(Connection::connect(&addr)?);
    }
    let start = Instant::now();
    let results: Mutex<Vec<Result<WorkerResult, WireError>>> =
        Mutex::named("server.driver.results", 30, Vec::new());

    std::thread::scope(|scope| {
        for (worker_index, conn) in conns.into_iter().enumerate() {
            let results = &results;
            scope.spawn(move || {
                let result = worker(conn, worker_index, options, start);
                results.lock().push(result);
            });
        }
    });

    let elapsed_secs = start.elapsed().as_secs_f64();
    let mut metrics = DriverMetrics {
        offered: 0,
        committed: 0,
        aborted: 0,
        shed: 0,
        elapsed_secs,
        histogram: LatencyHistogram::new(),
    };
    for result in results.into_inner() {
        let worker = result?;
        metrics.offered += worker.offered;
        metrics.committed += worker.committed;
        metrics.aborted += worker.aborted;
        metrics.shed += worker.shed;
        metrics.histogram.merge(&worker.histogram);
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_render() {
        assert_eq!(ArrivalProcess::Poisson.label(), "poisson");
        assert_eq!(ArrivalProcess::Bursty { burst: 16 }.label(), "bursty(16)");
    }

    #[test]
    fn poisson_gaps_have_the_requested_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 1_000.0;
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| {
                next_gap(ArrivalProcess::Poisson, lambda, &mut rng)
                    .0
                    .as_secs_f64()
            })
            .sum();
        let mean = total / f64::from(n);
        assert!(
            (mean - 1.0 / lambda).abs() < 0.05 / lambda,
            "mean interarrival {mean} should be ~{}",
            1.0 / lambda
        );
    }

    #[test]
    fn bursty_gaps_preserve_the_offered_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let (gap, due) = next_gap(ArrivalProcess::Bursty { burst: 8 }, 400.0, &mut rng);
        assert_eq!(due, 8);
        assert!((gap.as_secs_f64() - 0.02).abs() < 1e-9, "8 / 400 tps");
    }

    #[test]
    fn metrics_arithmetic() {
        let metrics = DriverMetrics {
            offered: 100,
            committed: 60,
            aborted: 20,
            shed: 20,
            elapsed_secs: 2.0,
            histogram: LatencyHistogram::new(),
        };
        assert!((metrics.achieved_tps() - 30.0).abs() < f64::EPSILON);
        assert!((metrics.commit_rate() - 0.75).abs() < f64::EPSILON);
    }
}
