//! Serve-path equivalence: driving an engine through the TCP server must be
//! observationally identical to driving the same engine in-process.
//!
//! For each `(engine spec, seed)` pair a random interleaved workload with
//! pinned timestamps is replayed twice — once against a registry-built engine
//! in-process and once against a [`RemoteEngine`] speaking the wire protocol
//! to a real server fronting a fresh engine of the same spec. Pinning makes
//! both runs deterministic, so the comparison is exact:
//!
//! * the same transactions commit and abort, index by index,
//! * aborted transactions abort for the same reason,
//! * both committed histories pass the MVSG serializability check, and
//! * a final read of every key returns the same values on both sides.

use mvtl_common::ops::{Op, Workload};
use mvtl_common::{Engine, EngineExt, Key, ProcessId, Timestamp, TxOutcome};
use mvtl_server::{RemoteEngine, Server};
use mvtl_verify::{check_serializable, replay, ReplayReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One single-node policy and the cross-shard composition: the serve path
/// must be transparent for both.
const SPECS: &[&str] = &["mvtil-early", "sharded?shards=4&inner=mvtil-early"];

const SEEDS: &[u64] = &[11, 23, 47];
const TRANSACTIONS: usize = 16;
const KEYS: u64 = 12;

/// Generates a seeded interleaved workload: each transaction performs 2–6
/// reads/writes over a small hot key space and then commits (occasionally
/// aborts), with the per-transaction operation lists shuffled into one global
/// order. Timestamps are pinned by index, deliberately *not* in interleaving
/// order, so timestamp-order conflicts occur deterministically.
fn random_workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining: Vec<(usize, Vec<Op>)> = (0..TRANSACTIONS)
        .map(|tx| {
            let mut ops = Vec::new();
            for _ in 0..rng.gen_range(2..=6) {
                let key = Key(rng.gen_range(0..KEYS));
                if rng.gen_bool(0.5) {
                    ops.push(Op::Read(key));
                } else {
                    ops.push(Op::Write(key, rng.gen_range(1..1_000)));
                }
            }
            ops.push(if rng.gen_bool(0.9) {
                Op::Commit
            } else {
                Op::Abort
            });
            // Reverse so the next step to issue is `pop()`.
            ops.reverse();
            (tx, ops)
        })
        .collect();

    let mut workload = Workload::new();
    for tx in 0..TRANSACTIONS {
        workload.pin_timestamp(tx, Timestamp::at((tx as u64 + 1) * 10));
    }
    while !remaining.is_empty() {
        let pick = rng.gen_range(0..remaining.len());
        let (tx, ops) = &mut remaining[pick];
        let op = ops.pop().expect("non-empty op list");
        workload.push(*tx, op);
        if ops.is_empty() {
            remaining.swap_remove(pick);
        }
    }
    workload
}

/// Reads back every key in one transaction, returning the observed values.
fn read_back(engine: &dyn Engine<u64>) -> Vec<Option<u64>> {
    let mut txn = engine.begin(ProcessId(99));
    let values = (0..KEYS)
        .map(|k| txn.read(Key(k)).expect("read-back read"))
        .collect();
    txn.commit().expect("read-back commit");
    values
}

fn assert_same_accounting(spec: &str, seed: u64, local: &ReplayReport, served: &ReplayReport) {
    assert_eq!(
        local.commits(),
        served.commits(),
        "{spec} seed {seed}: commit counts diverge"
    );
    assert_eq!(
        local.aborts(),
        served.aborts(),
        "{spec} seed {seed}: abort counts diverge"
    );
    for (tx, (l, s)) in local.outcomes.iter().zip(&served.outcomes).enumerate() {
        match (l, s) {
            (TxOutcome::Committed(_), TxOutcome::Committed(_)) => {}
            (TxOutcome::Aborted(lr), TxOutcome::Aborted(sr)) => {
                assert_eq!(
                    lr, sr,
                    "{spec} seed {seed}: tx {tx} aborted for different reasons"
                );
            }
            _ => panic!("{spec} seed {seed}: tx {tx} diverged — in-process {l:?}, served {s:?}"),
        }
    }
}

#[test]
fn served_replay_matches_in_process_replay() {
    for spec in SPECS {
        for &seed in SEEDS {
            let workload = random_workload(seed);

            let local_engine = mvtl_registry::build(spec).expect("registry spec");
            let local = replay(local_engine.as_ref(), &workload, |v| v);

            let server = Server::spawn(spec, "127.0.0.1:0").expect("server must start");
            let remote = RemoteEngine::connect(server.addr()).expect("client connect");
            let served = replay(&remote, &workload, |v| v);

            assert_same_accounting(spec, seed, &local, &served);
            assert!(
                local.commits() > 0,
                "{spec} seed {seed}: degenerate workload — nothing committed"
            );
            check_serializable(&local.history)
                .unwrap_or_else(|v| panic!("{spec} seed {seed}: in-process history: {v}"));
            check_serializable(&served.history)
                .unwrap_or_else(|v| panic!("{spec} seed {seed}: served history: {v}"));

            let local_values = read_back(local_engine.as_ref());
            let served_values = read_back(&remote);
            assert_eq!(
                local_values, served_values,
                "{spec} seed {seed}: final key values diverge"
            );
        }
    }
}
