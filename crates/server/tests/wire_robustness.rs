//! Wire-protocol robustness: malformed frames, protocol violations, and
//! mid-transaction disconnects must never wedge the server or leak locks.
//!
//! Every test drives a real TCP server. The raw-socket tests bypass the
//! client library entirely and write hand-crafted byte sequences, because the
//! client cannot be coaxed into producing the malformed traffic we need.

use mvtl_common::{Key, ProcessId};
use mvtl_server::wire::{self, Request, Response};
use mvtl_server::{Connection, Server};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn spawn_server() -> Server {
    Server::spawn("mvtil-early", "127.0.0.1:0").expect("server must start")
}

/// Connects a raw socket and consumes the server hello, leaving the stream
/// positioned at the request/response phase.
fn raw_connect(server: &Server) -> TcpStream {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let hello = wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).expect("hello frame");
    wire::decode_hello(&hello).expect("hello decodes");
    stream
}

fn send_raw_request(stream: &mut TcpStream, req: &Request) {
    wire::write_frame(stream, &wire::encode_request(req)).expect("send request");
}

fn read_raw_response(stream: &mut TcpStream) -> Response {
    let payload = wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).expect("response frame");
    wire::decode_response(&payload).expect("response decodes")
}

/// Asserts the server has hung up: the next frame read is a clean EOF.
fn assert_closed(stream: &mut TcpStream) {
    let err =
        wire::read_frame(stream, wire::DEFAULT_MAX_FRAME).expect_err("connection should be closed");
    assert!(wire::is_clean_eof(&err), "expected clean EOF, got {err}");
}

/// Samples the engine's lock-table size through a fresh stats connection.
fn lock_entries(server: &Server) -> usize {
    let mut conn = Connection::connect(server.addr()).expect("stats connection");
    conn.stats().expect("stats").lock_entries
}

/// Polls until every lock the disconnected transaction held is released.
/// Generous deadline: the assertion is about eventual cleanup, not latency.
fn wait_for_lock_release(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if lock_entries(server) == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "locks still held long after the holding connection went away"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn unknown_opcode_gets_protocol_response_and_close() {
    let server = spawn_server();
    let mut stream = raw_connect(&server);
    wire::write_frame(&mut stream, &[0xFF]).expect("send");
    stream.flush().expect("flush");
    let resp = read_raw_response(&mut stream);
    assert!(
        matches!(resp, Response::Protocol(_)),
        "expected a protocol error, got {resp:?}"
    );
    assert_closed(&mut stream);
}

#[test]
fn truncated_request_body_gets_protocol_response_and_close() {
    let server = spawn_server();
    let mut stream = raw_connect(&server);
    // Opcode 1 is Begin, whose body needs at least txn + process ids; a
    // single stray byte cannot decode.
    wire::write_frame(&mut stream, &[0x01, 0x02]).expect("send");
    stream.flush().expect("flush");
    let resp = read_raw_response(&mut stream);
    assert!(
        matches!(resp, Response::Protocol(_)),
        "expected a protocol error, got {resp:?}"
    );
    assert_closed(&mut stream);
}

#[test]
fn trailing_bytes_after_valid_request_get_protocol_response() {
    let server = spawn_server();
    let mut stream = raw_connect(&server);
    // A well-formed Stats request with one extra byte appended: the strict
    // decoder must reject it rather than silently ignore the tail.
    let mut payload = wire::encode_request(&Request::Stats);
    payload.push(0x00);
    wire::write_frame(&mut stream, &payload).expect("send");
    stream.flush().expect("flush");
    let resp = read_raw_response(&mut stream);
    assert!(
        matches!(resp, Response::Protocol(_)),
        "expected a protocol error, got {resp:?}"
    );
    assert_closed(&mut stream);
}

#[test]
fn oversized_declared_length_is_rejected_before_payload() {
    let server = spawn_server();
    let mut stream = raw_connect(&server);
    // Declare a frame far past the cap and send nothing else: the server
    // must reject on the header alone (no allocation, no payload wait).
    stream
        .write_all(&u32::MAX.to_le_bytes())
        .expect("send header");
    stream.flush().expect("flush");
    let resp = read_raw_response(&mut stream);
    match resp {
        Response::Protocol(msg) => {
            assert!(msg.contains("frame"), "unexpected message: {msg}")
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    assert_closed(&mut stream);
}

#[test]
fn configured_frame_cap_is_enforced() {
    // serve_max_frame is peeled off the engine spec; a 65-byte frame against
    // a 64-byte cap must be rejected even though it is tiny in absolute terms.
    let server =
        Server::spawn("mvtil-early?serve_max_frame=64", "127.0.0.1:0").expect("server must start");
    let mut stream = raw_connect(&server);
    wire::write_frame(&mut stream, &[0u8; 65]).expect("send");
    stream.flush().expect("flush");
    let resp = read_raw_response(&mut stream);
    assert!(
        matches!(resp, Response::Protocol(_)),
        "expected a protocol error, got {resp:?}"
    );
    assert_closed(&mut stream);
}

#[test]
fn op_on_unknown_txn_returns_finished_and_keeps_connection_usable() {
    let server = spawn_server();
    let mut conn = Connection::connect(server.addr()).expect("connect");
    let resp = conn
        .request(&Request::Read {
            txn: 42,
            key: Key(0),
        })
        .expect("request");
    assert_eq!(resp, Response::Finished);
    // Not a protocol violation: the connection must stay usable so a
    // pipelining client can keep matching responses positionally.
    let stats = conn.request(&Request::Stats).expect("stats request");
    assert!(matches!(stats, Response::Stats(_)), "got {stats:?}");
}

#[test]
fn duplicate_begin_is_a_protocol_violation_and_releases_locks() {
    let server = spawn_server();
    let mut conn = Connection::connect(server.addr()).expect("connect");
    let begun = conn
        .request(&Request::Begin {
            txn: 1,
            process: ProcessId(1),
            pinned: None,
        })
        .expect("begin");
    assert_eq!(begun, Response::Begun);
    let written = conn
        .request(&Request::Write {
            txn: 1,
            key: Key(3),
            value: 9,
        })
        .expect("write");
    assert_eq!(written, Response::Written);
    assert!(lock_entries(&server) > 0, "write should hold a lock");

    // Re-using a live id is a client bug the server refuses to guess about.
    let resp = conn
        .request(&Request::Begin {
            txn: 1,
            process: ProcessId(1),
            pinned: None,
        })
        .expect("duplicate begin gets a response before the close");
    assert!(
        matches!(resp, Response::Protocol(_)),
        "expected a protocol error, got {resp:?}"
    );
    // The close tears down the live transaction along with the connection.
    drop(conn);
    wait_for_lock_release(&server);
}

#[test]
fn mid_transaction_disconnect_aborts_and_releases_locks() {
    let server = spawn_server();
    let mut conn = Connection::connect(server.addr()).expect("connect");
    let begun = conn
        .request(&Request::Begin {
            txn: 7,
            process: ProcessId(1),
            pinned: None,
        })
        .expect("begin");
    assert_eq!(begun, Response::Begun);
    for key in 0..4 {
        let resp = conn
            .request(&Request::Write {
                txn: 7,
                key: Key(key),
                value: key,
            })
            .expect("write");
        assert_eq!(resp, Response::Written);
    }
    assert!(lock_entries(&server) > 0, "writes should hold locks");

    // Vanish without commit or abort: the server-side RAII guard must abort
    // the transaction and release every lock it held.
    drop(conn);
    wait_for_lock_release(&server);

    // The keys remain writable by a later transaction on a fresh connection.
    let mut conn = Connection::connect(server.addr()).expect("reconnect");
    let begun = conn
        .request(&Request::Begin {
            txn: 1,
            process: ProcessId(2),
            pinned: None,
        })
        .expect("begin");
    assert_eq!(begun, Response::Begun);
    let resp = conn
        .request(&Request::Write {
            txn: 1,
            key: Key(0),
            value: 99,
        })
        .expect("write");
    assert_eq!(resp, Response::Written);
    let committed = conn.request(&Request::Commit { txn: 1 }).expect("commit");
    assert!(
        matches!(committed, Response::Committed(_)),
        "got {committed:?}"
    );
}

#[test]
fn disconnect_mid_frame_aborts_and_releases_locks() {
    let server = spawn_server();
    let mut stream = raw_connect(&server);
    send_raw_request(
        &mut stream,
        &Request::Begin {
            txn: 1,
            process: ProcessId(1),
            pinned: None,
        },
    );
    send_raw_request(
        &mut stream,
        &Request::Write {
            txn: 1,
            key: Key(11),
            value: 1,
        },
    );
    stream.flush().expect("flush");
    assert_eq!(read_raw_response(&mut stream), Response::Begun);
    assert_eq!(read_raw_response(&mut stream), Response::Written);
    assert!(lock_entries(&server) > 0, "write should hold a lock");

    // Declare a 16-byte frame, deliver 3 bytes, and hang up: the server sees
    // EOF mid-frame and must treat it exactly like a clean disconnect.
    stream.write_all(&16u32.to_le_bytes()).expect("header");
    stream.write_all(&[0x01, 0x02, 0x03]).expect("partial body");
    stream.flush().expect("flush");
    drop(stream);
    wait_for_lock_release(&server);
}
