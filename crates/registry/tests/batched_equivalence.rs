//! Batched / op-by-op equivalence across **every** registered engine.
//!
//! Property: executing a random read/write sequence through the batched
//! surface (`read_many` / `write_many`, with maximal same-kind runs issued as
//! one call) commits with a result equivalent to executing the same sequence
//! op-by-op on a fresh engine of the same spec — the values every read
//! returns match, the committed write set matches, and the final committed
//! state matches. This is the contract that lets the workload runner and the
//! `bench_report` grid flip batching on without changing what an engine
//! computes, only what it costs.

use mvtl_common::{Engine, EngineExt, Key, ProcessId};
use mvtl_registry::all_specs;
use proptest::prelude::*;

const KEYS: u64 = 8;

/// One transaction body: `None` = read, `Some(v)` = write of `v`.
type OpSeq = Vec<(Key, Option<u64>)>;

fn arb_ops() -> impl Strategy<Value = OpSeq> {
    proptest::collection::vec((0u64..KEYS, 0u8..2, 0u64..100), 1..32).prop_map(|raw| {
        raw.into_iter()
            .map(|(key, kind, value)| (Key(key), (kind == 1).then_some(value)))
            .collect()
    })
}

fn build(spec: &str) -> Box<dyn Engine<u64>> {
    mvtl_registry::build(spec).unwrap_or_else(|e| panic!("spec {spec:?} must build: {e}"))
}

/// Runs `ops` op-by-op inside one transaction; returns the read values in op
/// order and the committed write-key set.
fn run_op_by_op(engine: &dyn Engine<u64>, ops: &OpSeq) -> (Vec<Option<u64>>, Vec<Key>) {
    let mut tx = engine.begin(ProcessId(1));
    let mut reads = Vec::new();
    for (key, op) in ops {
        match op {
            None => reads.push(tx.read(*key).expect("uncontended read")),
            Some(value) => tx.write(*key, *value).expect("uncontended write"),
        }
    }
    let mut writes = tx.commit().expect("uncontended commit").writes;
    writes.sort();
    (reads, writes)
}

/// Runs `ops` inside one transaction with maximal same-kind runs issued as
/// single `read_many` / `write_many` calls; same return shape as
/// [`run_op_by_op`].
fn run_batched(engine: &dyn Engine<u64>, ops: &OpSeq) -> (Vec<Option<u64>>, Vec<Key>) {
    let mut tx = engine.begin(ProcessId(1));
    let mut reads = Vec::new();
    let mut start = 0;
    while start < ops.len() {
        let writing = ops[start].1.is_some();
        let mut end = start + 1;
        while end < ops.len() && ops[end].1.is_some() == writing {
            end += 1;
        }
        if writing {
            let entries: Vec<(Key, u64)> = ops[start..end]
                .iter()
                .map(|(key, op)| (*key, op.expect("write run")))
                .collect();
            tx.write_many(entries).expect("uncontended write_many");
        } else {
            let keys: Vec<Key> = ops[start..end].iter().map(|(key, _)| *key).collect();
            reads.extend(tx.read_many(&keys).expect("uncontended read_many"));
        }
        start = end;
    }
    let mut writes = tx.commit().expect("uncontended commit").writes;
    writes.sort();
    (reads, writes)
}

/// The committed value of every key, observed by a fresh read-only
/// transaction.
fn final_state(engine: &dyn Engine<u64>) -> Vec<Option<u64>> {
    let mut tx = engine.begin(ProcessId(2));
    let state = (0..KEYS)
        .map(|k| tx.read(Key(k)).expect("read-back"))
        .collect();
    tx.commit().expect("read-only commit");
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_sequences_are_equivalent_to_op_by_op_on_every_engine(ops in arb_ops()) {
        for spec in all_specs() {
            let plain = build(spec);
            let batched = build(spec);
            let (plain_reads, plain_writes) = run_op_by_op(plain.as_ref(), &ops);
            let (batched_reads, batched_writes) = run_batched(batched.as_ref(), &ops);
            prop_assert_eq!(
                &batched_reads, &plain_reads,
                "{}: batched reads diverged on {:?}", spec, ops
            );
            prop_assert_eq!(
                &batched_writes, &plain_writes,
                "{}: committed write sets diverged on {:?}", spec, ops
            );
            prop_assert_eq!(
                final_state(batched.as_ref()),
                final_state(plain.as_ref()),
                "{}: final committed state diverged on {:?}", spec, ops
            );
        }
    }
}
