//! Registry round-trip and RAII drop-abort tests across **every** registered
//! engine: each `all_specs()` entry must build, report a matching name, commit
//! transactions, and release all engine state when an uncommitted
//! [`Transaction`](mvtl_common::Transaction) guard is dropped.

use mvtl_common::{EngineExt, Key, ProcessId, RetryOptions, TxError};
use mvtl_registry::{all_specs, build, EngineSpec};

/// Appends `params` to `spec`, using `&` when the spec already carries a
/// query (the `sharded` entries in `all_specs()` do).
fn with_params(spec: &str, params: &str) -> String {
    EngineSpec::append_params(spec, params)
}

/// The spec's base engine name (before `?`).
fn base(spec: &str) -> &str {
    EngineSpec::base_name(spec)
}

#[test]
fn every_spec_builds_and_name_matches() {
    for spec in all_specs() {
        let engine = build(spec).unwrap_or_else(|e| panic!("{spec}: failed to build: {e}"));
        assert_eq!(
            engine.name(),
            EngineSpec::parse(spec).unwrap().name,
            "{spec}: engine name must match the spec base name"
        );
    }
}

#[test]
fn every_spec_accepts_shared_parameters() {
    // The MVTL engines share timeout/shard knobs; the baselines have their own.
    for spec in all_specs() {
        let parameterized = match base(spec) {
            "mvto+" => spec.to_string(),
            "2pl" => with_params(spec, "timeout_ms=25"),
            "mvtil-early" | "mvtil-late" => with_params(spec, "delta=5000&timeout_ms=25&shards=8"),
            // `delta` only parses when the inner engine is MVTIL.
            "sharded" if spec.contains("inner=mvtil") => {
                with_params(spec, "delta=5000&timeout_ms=25&map_shards=8&pick=min")
            }
            "sharded" => with_params(spec, "timeout_ms=25&map_shards=8&pick=min"),
            _ => with_params(spec, "timeout_ms=25&shards=8"),
        };
        build(&parameterized).unwrap_or_else(|e| panic!("{parameterized}: failed to build: {e}"));
    }
}

#[test]
fn every_engine_commits_a_simple_transaction() {
    for spec in all_specs() {
        let engine = build(spec).unwrap();
        let mut tx = engine.begin(ProcessId(1));
        tx.write(Key(1), 41).unwrap();
        tx.write(Key(2), 1).unwrap();
        let info = tx
            .commit()
            .unwrap_or_else(|e| panic!("{spec}: uncontended commit failed: {e}"));
        assert_eq!(info.writes.len(), 2, "{spec}");

        let mut tx = engine.begin(ProcessId(2));
        assert_eq!(tx.read(Key(1)).unwrap(), Some(41), "{spec}");
        tx.commit()
            .unwrap_or_else(|e| panic!("{spec}: read-only commit failed: {e}"));
    }
}

/// The RAII guarantee: dropping an uncommitted transaction releases its locks
/// on **every** engine, so a second transaction can immediately write the same
/// keys. Before the `Engine` layer, a forgotten `abort` leaked lock-table
/// entries (most visibly under 2PL and MVTL-Pessimistic, whose write locks
/// would block the second writer until timeout).
#[test]
fn dropping_an_uncommitted_transaction_releases_its_locks() {
    for spec in all_specs() {
        // Short lock timeouts so a leak fails the test quickly (as an abort)
        // rather than hanging it.
        let parameterized = match base(spec) {
            "mvto+" => spec.to_string(),
            _ => with_params(spec, "timeout_ms=50"),
        };
        let engine = build(&parameterized).unwrap();

        {
            let mut tx = engine.begin(ProcessId(1));
            tx.write(Key(1), 7).unwrap();
            tx.write(Key(2), 8).unwrap();
            let _ = tx.read(Key(3)).unwrap();
            // Dropped here without commit or explicit abort.
        }

        let mut tx = engine.begin(ProcessId(2));
        tx.write(Key(1), 100).unwrap();
        tx.write(Key(2), 200).unwrap();
        tx.write(Key(3), 300).unwrap();
        let info = tx.commit().unwrap_or_else(|e| {
            panic!("{spec}: dropping an uncommitted transaction leaked locks: {e}")
        });
        assert_eq!(info.writes.len(), 3, "{spec}");

        // The aborted transaction's writes must be invisible.
        let mut tx = engine.begin(ProcessId(3));
        assert_eq!(tx.read(Key(1)).unwrap(), Some(100), "{spec}");
        assert_eq!(tx.read(Key(2)).unwrap(), Some(200), "{spec}");
        tx.commit().unwrap();
    }
}

#[test]
fn run_retry_loop_works_on_every_engine() {
    for spec in all_specs() {
        let engine = build(spec).unwrap();
        let options = RetryOptions::default().with_seed(11);
        let report = engine
            .run(ProcessId(1), &options, |tx| {
                let current = tx.read(Key(9))?.unwrap_or(0);
                tx.write(Key(9), current + 1)?;
                Ok(current)
            })
            .unwrap_or_else(|e| panic!("{spec}: run() failed: {e}"));
        assert_eq!(report.value, 0, "{spec}");
        assert!(report.attempts >= 1, "{spec}");
        assert_eq!(report.info.writes, vec![Key(9)], "{spec}");
    }
}

/// Multi-shard engines must release lock-table entries on **every**
/// participating shard when an uncommitted cross-shard transaction is
/// aborted or dropped: a follow-up transaction over the same keys (which
/// spans the same shards) must commit without hitting leaked locks.
#[test]
fn dropping_a_cross_shard_transaction_releases_every_shard() {
    const KEYS: u64 = 16; // with 8 shards, w.h.p. every shard participates
    for spec in [
        "sharded?shards=2&inner=mvtil-early&timeout_ms=50",
        "sharded?shards=8&inner=mvtil-early&timeout_ms=50",
        "sharded?shards=8&inner=mvtl-to&timeout_ms=50",
        "sharded?shards=8&inner=mvtl-pessimistic&timeout_ms=50",
    ] {
        let engine = build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));

        {
            let mut tx = engine.begin(ProcessId(1));
            for k in 0..KEYS {
                tx.write(Key(k), k).unwrap();
            }
            // Dropped without commit: every shard sub-transaction must abort.
        }

        let mut tx = engine.begin(ProcessId(2));
        for k in 0..KEYS {
            tx.write(Key(k), k + 100).unwrap();
        }
        let info = tx.commit().unwrap_or_else(|e| {
            panic!("{spec}: dropped cross-shard transaction leaked locks on some shard: {e}")
        });
        assert_eq!(info.writes.len(), KEYS as usize, "{spec}");

        // The dropped transaction's writes are invisible on every shard.
        let mut tx = engine.begin(ProcessId(3));
        for k in 0..KEYS {
            assert_eq!(tx.read(Key(k)).unwrap(), Some(k + 100), "{spec}");
        }
        tx.commit().unwrap();
    }
}

#[test]
fn non_abort_errors_are_not_retried() {
    let engine = build("mvtl-to").unwrap();
    let mut calls = 0u32;
    let err = engine
        .run(ProcessId(1), &RetryOptions::default(), |_tx| {
            calls += 1;
            Err::<(), _>(TxError::Internal("deliberate".into()))
        })
        .unwrap_err();
    assert_eq!(err, TxError::Internal("deliberate".into()));
    assert_eq!(calls, 1, "internal errors must not burn the retry budget");
}
