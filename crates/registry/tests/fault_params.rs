//! Registry surface of the fault-injection layer: the `fault=`, `fault_seed=`
//! and `commit_timeout_ms=` parameters of the `sharded` engine — rejection of
//! malformed specs, composition with the background GC service, and
//! deterministic behaviour of spec-built engines.

use mvtl_common::{AbortReason, EngineExt, Key, ProcessId, TxError};
use mvtl_registry::{build, SpecError};
use std::time::{Duration, Instant};

#[test]
fn malformed_fault_specs_are_rejected() {
    // Unknown clause name.
    assert!(matches!(
        build("sharded?fault=fizzle:0.5").map(|_| ()),
        Err(SpecError::InvalidValue { ref param, .. }) if param == "fault"
    ));
    // Probability outside [0, 1].
    assert!(matches!(
        build("sharded?fault=drop:1.5:10").map(|_| ()),
        Err(SpecError::InvalidValue { ref param, .. }) if param == "fault"
    ));
    // Missing amount where one is required.
    assert!(matches!(
        build("sharded?fault=delay:0.5").map(|_| ()),
        Err(SpecError::InvalidValue { ref param, .. }) if param == "fault"
    ));
    // The parse error's detail is surfaced in the spec error.
    let msg = build("sharded?fault=fizzle:0.5")
        .map(|_| ())
        .unwrap_err()
        .to_string();
    assert!(msg.contains("fizzle"), "detail lost: {msg}");
}

#[test]
fn fault_seed_requires_a_schedule() {
    assert!(matches!(
        build("sharded?fault_seed=7").map(|_| ()),
        Err(SpecError::Malformed { .. })
    ));
    assert!(matches!(
        build("sharded?fault_seed=banana&fault=delay:0.5:100").map(|_| ()),
        Err(SpecError::InvalidValue { ref param, .. }) if param == "fault_seed"
    ));
}

#[test]
fn commit_timeout_must_be_positive() {
    assert!(matches!(
        build("sharded?commit_timeout_ms=0").map(|_| ()),
        Err(SpecError::InvalidValue { ref param, .. }) if param == "commit_timeout_ms"
    ));
    assert!(build("sharded?commit_timeout_ms=100").is_ok());
}

#[test]
fn fault_params_are_unknown_outside_the_sharded_engine() {
    // Only the sharded engine has a prepare phase to inject into; everywhere
    // else the parameters must fail loudly instead of being ignored.
    for spec in [
        "mvtil-early?fault=delay:0.5:100",
        "mvto+?fault=drop:0.5",
        "2pl?fault_seed=7",
        "mvtil-late?commit_timeout_ms=10",
    ] {
        assert!(
            matches!(build(spec).map(|_| ()), Err(SpecError::UnknownParam { .. })),
            "{spec} must be rejected"
        );
    }
}

#[test]
fn faulty_engine_still_commits_under_a_delay_schedule() {
    // Pure delays slow operations down but never change outcomes.
    let engine = build("sharded?shards=2&fault=delay:1.0:200&fault_seed=3").unwrap();
    assert_eq!(engine.name(), "sharded");
    for round in 0..4u64 {
        let mut tx = engine.begin(ProcessId(1));
        for k in 0..6u64 {
            tx.write(Key(k), round * 100 + k).unwrap();
        }
        tx.commit().unwrap();
    }
    let mut tx = engine.begin(ProcessId(2));
    assert_eq!(tx.read(Key(0)).unwrap(), Some(300));
    tx.commit().unwrap();
}

#[test]
fn crash_schedule_outcomes_are_deterministic_across_builds() {
    // Two engines built from the same spec replay the same client sequence
    // with identical commit/abort outcomes: the fault plan draws from
    // (fault_seed, shard, seq) only.
    let run = |spec: &str| {
        let engine = build(spec).unwrap();
        let mut outcomes = Vec::new();
        for round in 0..12u64 {
            let mut tx = engine.begin(ProcessId(1));
            let mut failed = false;
            for k in 0..6u64 {
                if tx.write(Key(k), round).is_err() {
                    failed = true;
                    break;
                }
            }
            let committed = !failed && tx.commit().is_ok();
            outcomes.push(committed);
        }
        outcomes
    };
    let spec = "sharded?shards=2&fault=crash:0.4&fault_seed=11";
    let a = run(spec);
    let b = run(spec);
    assert_eq!(a, b, "same spec, same client sequence, same outcomes");
    assert!(
        a.iter().any(|c| !c),
        "a 0.4 crash rate over 12 cross-shard commits must abort something"
    );
    assert!(
        run("sharded?shards=2&fault=crash:0.4&fault_seed=12") != a
            || run("sharded?shards=2&fault=crash:0.4&fault_seed=13") != a,
        "different fault seeds must be able to draw different schedules"
    );
}

#[test]
fn stalled_prepares_time_out_through_the_registry_engine() {
    // A spec-built engine inherits the coordinator's presumed-abort recovery:
    // with every prepare stalled for 40 ms and 5 ms of patience, a
    // cross-shard commit resolves quickly by PrepareTimedOut rather than
    // waiting out the stall.
    let engine =
        build("sharded?shards=2&fault=stall:1.0:40&fault_seed=5&commit_timeout_ms=5").unwrap();
    let mut tx = engine.begin(ProcessId(1));
    for k in 0..6u64 {
        tx.write(Key(k), k).unwrap();
    }
    let started = Instant::now();
    let err = tx.commit().expect_err("stalled prepares cannot commit");
    assert!(
        matches!(err, TxError::Aborted(AbortReason::PrepareTimedOut { .. })),
        "got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_millis(35),
        "commit waited out the stall: {:?}",
        started.elapsed()
    );
}

/// Fault-matrix workload shared by the GC-composition test and its no-GC
/// control: single-shard version churn on `Key(7)` around a long-lived
/// pinned reader, plus one stalled cross-shard commit resolved by presumed
/// abort. Asserts the reader's anchored version survives throughout.
fn churn_with_pinned_reader(engine: &dyn mvtl_common::Engine<u64>) {
    // Build up versions with single-shard transactions (one participant — the
    // fast path never prepares, so stalls cannot touch it).
    for round in 0..8u64 {
        let mut tx = engine.begin(ProcessId(1));
        tx.write(Key(7), round).unwrap();
        tx.commit().unwrap();
    }

    // A long-lived reader anchors on the current state...
    let mut reader = engine.begin(ProcessId(2));
    let anchored = reader.read(Key(7)).unwrap();
    assert_eq!(anchored, Some(7));

    // ...while new versions pile up, GC (when attached) sweeps every 2 ms,
    // and a stalled cross-shard commit exercises the timeout path.
    for round in 8..24u64 {
        let mut tx = engine.begin(ProcessId(1));
        tx.write(Key(7), round).unwrap();
        tx.commit().unwrap();
    }
    let mut doomed = engine.begin(ProcessId(3));
    for k in 0..6u64 {
        doomed.write(Key(k), 1).unwrap();
    }
    assert!(doomed.commit().is_err(), "stalled commit must abort");
    std::thread::sleep(Duration::from_millis(30));

    // The reader's anchored version was never purged out from under it.
    assert_eq!(
        reader.read(Key(7)).unwrap(),
        anchored,
        "GC purged a version below the pinned watermark"
    );
}

#[test]
fn gc_respects_the_watermark_pin_under_stalls() {
    // GC service + fault wrapper compose: the sweeper keeps reclaiming
    // versions while stalled prepares are resolved by presumed abort, yet a
    // pinned reader's anchored state survives. The no-GC control fixes the
    // yardstick: same faults, same workload, nothing reclaimed.
    let fault = "sharded?shards=2&fault=stall:1.0:20&fault_seed=9&commit_timeout_ms=5";
    let control = build(fault).unwrap();
    churn_with_pinned_reader(control.as_ref());
    let unreclaimed = control.stats().versions;

    let gc = build(&format!("{fault}&gc_ms=2&gc_lag_ms=0")).unwrap();
    churn_with_pinned_reader(gc.as_ref());
    let reclaimed = (0..500).any(|_| {
        if gc.stats().versions < unreclaimed {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
        false
    });
    assert!(
        reclaimed,
        "GC reclaimed nothing under faults: {} versions vs {} without GC",
        gc.stats().versions,
        unreclaimed
    );
}
