//! Purge/read race stress: concurrent readers and writers against an
//! aggressive, watermark-ignoring purge loop.
//!
//! Every key is seeded with a committed value before the churn starts, so a
//! transactional read may *never* observe `Ok(None)` — the fixed read path
//! either returns a committed value or aborts with `VersionPurged` when the
//! purge loop removed its anchor version mid-read. A silent `None` would be a
//! fabricated empty read of a key that has committed data (the exact race in
//! the pre-fix `MvtlStore::read`, which re-acquired the cell latch after the
//! policy had anchored the version).
//!
//! The CI workflow also runs these in release mode:
//! `cargo test -q --release -p mvtl-registry -- stress`.

use mvtl_common::{EngineExt, Key, ProcessId, Timestamp, TxError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

const KEYS: u64 = 32;
const READERS: usize = 4;
const WRITERS: usize = 2;
const DURATION: Duration = Duration::from_millis(250);

/// Deterministic per-thread key stream (splitmix64).
fn next_key(state: &mut u64) -> Key {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    Key((z ^ (z >> 31)) % KEYS)
}

fn stress_purge_vs_readers(spec: &str) {
    let engine = mvtl_registry::build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
    let engine = engine.as_ref();

    // Seed every key with a committed value: from here on, a read returning
    // the initial ⊥ version would be wrong.
    for key in 0..KEYS {
        let mut tx = engine.begin(ProcessId(0));
        tx.write(Key(key), u64::MAX).unwrap();
        tx.commit()
            .unwrap_or_else(|e| panic!("{spec}: seeding {key}: {e}"));
    }

    let stop = AtomicBool::new(false);
    let silent_nones = AtomicU64::new(0);
    let committed_reads = AtomicU64::new(0);
    let purged_aborts = AtomicU64::new(0);
    let purges = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let stop = &stop;
            scope.spawn(move || {
                let mut keys = 0xC0FFEE ^ writer as u64;
                let mut counter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut tx = engine.begin(ProcessId(1 + writer as u32));
                    counter += 1;
                    if tx.write(next_key(&mut keys), counter).is_ok() {
                        let _ = tx.commit();
                    }
                }
            });
        }
        for reader in 0..READERS {
            let stop = &stop;
            let silent_nones = &silent_nones;
            let committed_reads = &committed_reads;
            let purged_aborts = &purged_aborts;
            scope.spawn(move || {
                let mut keys = 0xDECAF ^ reader as u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = next_key(&mut keys);
                    let mut tx = engine.begin(ProcessId(100 + reader as u32));
                    match tx.read(key) {
                        Ok(Some(_)) => {
                            committed_reads.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(None) => {
                            silent_nones.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TxError::Aborted(reason)) => {
                            if matches!(reason, mvtl_common::AbortReason::VersionPurged { .. }) {
                                purged_aborts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(err) => panic!("{spec}: unexpected read error: {err}"),
                    }
                }
            });
        }
        // The aggressive GC loop: purge everything purgeable, as fast as
        // possible, deliberately ignoring the watermark — the read path must
        // stay abort-or-value even under a misbehaving collector.
        {
            let stop = &stop;
            let purges = &purges;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = engine.purge_below(Timestamp::MAX);
                    purges.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let stop = &stop;
        scope.spawn(move || {
            std::thread::sleep(DURATION);
            stop.store(true, Ordering::Relaxed);
        });
    });

    assert_eq!(
        silent_nones.load(Ordering::Relaxed),
        0,
        "{spec}: a read returned Ok(None) for a key with committed values \
         ({} committed reads, {} VersionPurged aborts, {} purge sweeps)",
        committed_reads.load(Ordering::Relaxed),
        purged_aborts.load(Ordering::Relaxed),
        purges.load(Ordering::Relaxed),
    );
    assert!(
        committed_reads.load(Ordering::Relaxed) > 0,
        "{spec}: readers never saw a committed value"
    );
    assert!(
        purges.load(Ordering::Relaxed) > 0,
        "{spec}: the purge loop never ran"
    );
}

#[test]
fn stress_purge_vs_readers_mvtil_early() {
    stress_purge_vs_readers("mvtil-early");
}

#[test]
fn stress_purge_vs_readers_mvto() {
    stress_purge_vs_readers("mvto+");
}

#[test]
fn stress_purge_vs_readers_sharded() {
    stress_purge_vs_readers("sharded?shards=8");
}
