//! # mvtl-registry
//!
//! The string-spec engine registry: one uniform way to construct every
//! concurrency-control engine in the workspace as a `Box<dyn Engine<V>>`.
//!
//! The paper's whole point is comparing many protocols (six MVTL policies,
//! MVTO+, 2PL) on identical inputs. With the object-safe [`Engine`] layer, a
//! consumer only needs a way to *name* an engine; this crate provides it:
//!
//! ```text
//! "mvtil-early"                  MVTIL with early commit-timestamp pick
//! "mvtil-late?delta=5000"        MVTIL-late, interval width Δ = 5000 ticks
//! "mvtl-pref?offset=-28"         MVTL-Pref with alternative offsets
//! "mvtl-epsilon-clock?eps=16"    MVTL-ε-clock
//! "2pl?timeout_ms=10"            strict 2PL, 10 ms deadlock timeout
//! "mvto+"                        the MVTO+ baseline
//! "sharded?shards=8&inner=mvtil-early"
//!                                partitioned engine: hash-routed shards,
//!                                §7 cross-shard interval-intersection commit
//! "mvtil-early?gc_ms=100&gc_lag_ms=50"
//!                                any engine + background GC: a `mvtl-gc`
//!                                service purges below
//!                                min(low watermark, now − gc_lag) every gc_ms
//! "mvtil-early?wal=/data/log&fsync=group"
//!                                any engine + durability: a `mvtl-wal`
//!                                write-ahead log in the given directory
//!                                (`wal=tmp` for a fresh throwaway dir),
//!                                recovered on build; sharded engines log
//!                                per shard under `<dir>/shard-<i>`
//! ```
//!
//! A spec is `name` optionally followed by `?key=value&key=value` parameters.
//! [`build`] turns a spec into a ready `Box<dyn Engine<u64>>` ([`build_for`]
//! for other value types), and [`all_specs`] enumerates one canonical spec per
//! engine so sweeps (benchmarks, figure binaries, CI smoke runs) pick up new
//! engines automatically. Adding an engine to the workspace is now a one-line
//! change here, not an edit to every consumer.
//!
//! # Example
//!
//! ```
//! use mvtl_common::{EngineExt, Key, ProcessId};
//!
//! let engine = mvtl_registry::build("mvtil-early?delta=1000").unwrap();
//! assert_eq!(engine.name(), "mvtil-early");
//!
//! let mut tx = engine.begin(ProcessId(1));
//! tx.write(Key(1), 42).unwrap();
//! tx.commit().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mvtl_baselines::{MvtoStore, TwoPhaseLockingStore};
use mvtl_clock::{BatchedClock, GlobalClock};
use mvtl_common::{Engine, TempDir, Timestamp};
use mvtl_core::policy::{
    EpsilonPolicy, GhostbusterPolicy, LockingPolicy, MvtilPolicy, PessimisticPolicy, PrefPolicy,
    PrioPolicy, ToPolicy,
};
use mvtl_core::{MvtlConfig, MvtlStore};
use mvtl_faults::{FaultPlan, FaultSpec};
use mvtl_gc::{GcConfig, GcEngine};
use mvtl_shard::{FaultyBackend, IntersectionPick, MvtlBackend, ShardBackend, ShardedStore};
use mvtl_wal::{FsyncMode, Recovery, Wal, WalBackend, WalEngine, WalOptions, WalValue};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Errors produced while parsing a spec or constructing an engine from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The base name does not match any registered engine.
    UnknownEngine {
        /// The base name that failed to resolve.
        name: String,
    },
    /// A parameter is not understood by the selected engine.
    UnknownParam {
        /// The engine the spec selected.
        engine: String,
        /// The offending parameter key.
        param: String,
    },
    /// A parameter value failed to parse.
    InvalidValue {
        /// The parameter key.
        param: String,
        /// The value that failed to parse.
        value: String,
    },
    /// The spec is syntactically malformed (empty name, `key` without `=`, ...).
    Malformed {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownEngine { name } => {
                write!(f, "unknown engine {name:?}; known specs: ")?;
                for (i, spec) in all_specs().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{spec}")?;
                }
                Ok(())
            }
            SpecError::UnknownParam { engine, param } => {
                write!(
                    f,
                    "engine {engine:?} does not understand parameter {param:?}"
                )
            }
            SpecError::InvalidValue { param, value } => {
                write!(f, "invalid value {value:?} for parameter {param:?}")
            }
            SpecError::Malformed { detail } => write!(f, "malformed engine spec: {detail}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A parsed engine spec: base name plus `key=value` parameters, in spec order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSpec {
    /// The engine's base name (what [`Engine::name`] reports).
    pub name: String,
    /// The parameters, in the order they appeared.
    pub params: Vec<(String, String)>,
}

impl EngineSpec {
    /// Parses `spec` (`"name"` or `"name?key=value&key=value"`).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Malformed`] when the name is empty or a parameter
    /// lacks a `=`.
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        let (name, query) = match spec.split_once('?') {
            Some((name, query)) => (name, Some(query)),
            None => (spec, None),
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(SpecError::Malformed {
                detail: format!("empty engine name in {spec:?}"),
            });
        }
        let mut params = Vec::new();
        if let Some(query) = query {
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                let (key, value) = pair.split_once('=').ok_or_else(|| SpecError::Malformed {
                    detail: format!("parameter {pair:?} is not key=value"),
                })?;
                params.push((key.trim().to_string(), value.trim().to_string()));
            }
        }
        Ok(EngineSpec {
            name: name.to_string(),
            params,
        })
    }

    /// The base engine name of a spec string (everything before `?`).
    #[must_use]
    pub fn base_name(spec: &str) -> &str {
        spec.split('?').next().unwrap_or(spec)
    }

    /// Appends `key=value&...` parameters to a spec string, using `?` or `&`
    /// as appropriate. Sweep helpers use this to parameterize `all_specs()`
    /// entries, some of which (the `sharded` ones) already carry a query
    /// string.
    #[must_use]
    pub fn append_params(spec: &str, params: &str) -> String {
        if spec.contains('?') {
            format!("{spec}&{params}")
        } else {
            format!("{spec}?{params}")
        }
    }

    /// Peeks the value of parameter `key` without consuming it. Report and
    /// sweep tooling uses this to record the knobs a spec carries (shard
    /// count, Δ, GC interval) next to the measurements taken from the engine
    /// it built.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Splits `spec` into the parameters whose keys start with `prefix` (with
    /// the prefix stripped) and the remaining spec string, ready for
    /// [`build`].
    ///
    /// This is how front-ends layer their own knobs onto an engine spec
    /// without the registry having to know them: the `mvtl-server` crate
    /// configures itself from `serve_`-prefixed parameters
    /// (`"mvtil-early?delta=500&serve_max_txns=64"` → server cap 64, engine
    /// spec `"mvtil-early?delta=500"`), and anything left over is still
    /// validated by the engine constructor as usual.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Malformed`] when `spec` does not parse.
    pub fn split_prefixed(
        spec: &str,
        prefix: &str,
    ) -> Result<(Vec<(String, String)>, String), SpecError> {
        let parsed = EngineSpec::parse(spec)?;
        let (prefixed, rest): (Vec<_>, Vec<_>) = parsed
            .params
            .into_iter()
            .partition(|(k, _)| k.starts_with(prefix));
        let prefixed = prefixed
            .into_iter()
            .map(|(k, v)| (k[prefix.len()..].to_string(), v))
            .collect();
        let remaining = EngineSpec {
            name: parsed.name,
            params: rest,
        };
        Ok((prefixed, remaining.to_string()))
    }

    fn take(&mut self, key: &str) -> Option<String> {
        let idx = self.params.iter().position(|(k, _)| k == key)?;
        Some(self.params.remove(idx).1)
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(value) => value
                .parse()
                .map(Some)
                .map_err(|_| SpecError::InvalidValue {
                    param: key.to_string(),
                    value,
                }),
        }
    }

    /// Errors out if any parameter was not consumed by the engine constructor.
    fn finish(self) -> Result<(), SpecError> {
        match self.params.into_iter().next() {
            None => Ok(()),
            Some((param, _)) => Err(SpecError::UnknownParam {
                engine: self.name,
                param,
            }),
        }
    }
}

impl fmt::Display for EngineSpec {
    /// Renders the spec back to its string form (`name?key=value&...`),
    /// parseable by [`EngineSpec::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (key, value)) in self.params.iter().enumerate() {
            write!(f, "{}{key}={value}", if i == 0 { '?' } else { '&' })?;
        }
        Ok(())
    }
}

/// Default MVTIL interval width Δ (in clock ticks) when a spec omits `delta`.
pub const DEFAULT_DELTA: u64 = 100_000;
/// Default ε (clock-synchronization bound, in ticks) for `mvtl-epsilon-clock`.
pub const DEFAULT_EPSILON: u64 = 8;
/// Default block size (timestamps per refill) when a spec sets
/// `clock=batched` but omits `clock_block`.
pub const DEFAULT_CLOCK_BLOCK: u64 = 64;
/// Default 2PL deadlock-resolution timeout in milliseconds.
pub const DEFAULT_2PL_TIMEOUT_MS: u64 = 10;
/// Default partition count for the `sharded` engine.
pub const DEFAULT_SHARD_COUNT: usize = 8;
/// Default inner engine of the `sharded` engine's partitions.
pub const DEFAULT_SHARD_INNER: &str = "mvtil-early";
/// Default GC lag in milliseconds when a spec sets `gc_ms` but omits
/// `gc_lag_ms`: the purge bound trails the clock by this much on top of the
/// active-transaction watermark.
pub const DEFAULT_GC_LAG_MS: u64 = 50;
/// Default fault-plan seed when a spec sets `fault=` but omits `fault_seed`.
pub const DEFAULT_FAULT_SEED: u64 = 42;
/// Default coordinator prepare timeout (milliseconds) armed automatically for
/// fault schedules that can make a prepare miss the deadline (`drop`/`stall`
/// clauses), when the spec omits `commit_timeout_ms`.
pub const DEFAULT_COMMIT_TIMEOUT_MS: u64 = 250;
/// Default write-ahead-log segment size in KiB when a spec sets `wal=` but
/// omits `wal_segment_kb`.
pub const DEFAULT_WAL_SEGMENT_KB: u64 = 1024;

/// One canonical spec per registered engine, for sweeps.
///
/// Benchmarks, figure binaries and CI smoke runs iterate this list, so wiring
/// a new engine into the registry automatically enrolls it everywhere.
#[must_use]
pub fn all_specs() -> Vec<&'static str> {
    vec![
        "mvtil-early",
        "mvtil-late",
        "mvtl-to",
        "mvtl-ghostbuster",
        "mvtl-epsilon-clock",
        "mvtl-pref",
        "mvtl-prio",
        "mvtl-pessimistic",
        "mvto+",
        "2pl",
        "sharded?shards=8&inner=mvtil-early",
        "sharded?shards=2&inner=mvtl-to",
        "mvtil-early?wal=tmp&fsync=group",
    ]
}

/// Builds the engine described by `spec` storing `u64` values — the value type
/// used throughout the benchmarks and the verifier.
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec is malformed, names an unknown
/// engine, or carries an unknown/invalid parameter.
pub fn build(spec: &str) -> Result<Box<dyn Engine<u64>>, SpecError> {
    build_for::<u64>(spec)
}

/// Builds the engine described by `spec` for an arbitrary value type.
///
/// Shared parameters for every engine: `clock_start` (initial reading of the
/// global clock, default 0), `clock` (`global` | `batched`, default `global`;
/// `batched` hands each process blocks of timestamps drawn from a shared
/// allocator and is accepted only for the MVTIL engines, the one policy
/// family that assumes nothing about clock order)
/// with `clock_block` (timestamps per refill, default
/// [`DEFAULT_CLOCK_BLOCK`], max [`mvtl_clock::MAX_CLOCK_BLOCK`]; requires
/// `clock=batched`), `gc_ms` (background GC sweep interval in
/// milliseconds; absent — the default — means no GC thread) and `gc_lag_ms`
/// (purge-bound lag behind the clock, default [`DEFAULT_GC_LAG_MS`]; requires
/// `gc_ms`). With `gc_ms` set the returned engine is wrapped in a
/// [`mvtl_gc::GcEngine`] whose background service purges the engine below
/// `min(low watermark, now − gc_lag)` every `gc_ms` — for the `sharded`
/// engine one service sweeps all shards. Shared parameters for all MVTL-core
/// engines: `timeout_ms` (lock-wait timeout, default 100) and `shards`
/// (key-map shard count, default 64). Engine-specific parameters: `delta`
/// (MVTIL, ticks), `eps` (`mvtl-epsilon-clock`, ticks), `offset`
/// (`mvtl-pref`, comma-separated signed tick offsets), `timeout_ms` (2PL,
/// milliseconds).
///
/// Durability, for every engine: `wal=<dir>` attaches a `mvtl-wal`
/// write-ahead log in `<dir>` (`wal=tmp` for a fresh temporary directory
/// removed when the engine drops), replaying whatever the log already holds
/// before the engine is returned — committed write sets reappear at their
/// original timestamps and the clock starts past the largest recovered
/// commit. `fsync=always|group|off` picks the log's sync policy (default
/// `group`: batched fsyncs, commits acknowledged once durable) and
/// `wal_segment_kb` the segment-roll size (default
/// [`DEFAULT_WAL_SEGMENT_KB`]); both require `wal`. The `sharded` engine
/// logs per shard under `<dir>/shard-<i>`, where recovery also re-creates
/// prepared cross-shard sub-transactions and resolves undecided ones by
/// presumed abort. The value type must implement [`WalValue`] (as `u64` and
/// `String`, the types the workspace measures, both do).
///
/// # Errors
///
/// Returns a [`SpecError`] when the spec is malformed, names an unknown
/// engine, or carries an unknown/invalid parameter.
pub fn build_for<V>(spec: &str) -> Result<Box<dyn Engine<V>>, SpecError>
where
    V: WalValue + Clone + Send + Sync + 'static,
{
    let mut parsed = EngineSpec::parse(spec)?;
    let clock_start = parsed.take_parsed::<u64>("clock_start")?;
    let wal_config = take_wal_config(&mut parsed)?;
    // The log opens before the clock exists: recovery reports the largest
    // committed timestamp, and the clock must start past it so post-crash
    // transactions serialize after the recovered state.
    let wal = open_wals::<V>(wal_config, &parsed)?;
    let base = clock_start.unwrap_or(1);
    let start = wal
        .max_commit_ts()
        .map_or(base, |ts| base.max(ts.value + 1));
    let clock = take_clock(&mut parsed, start)?;
    let gc = take_gc_config(&mut parsed)?;
    let engine: Box<dyn Engine<V>> = match parsed.name.as_str() {
        "mvtil-early" | "mvtil-late" => {
            let delta = parsed.take_parsed("delta")?.unwrap_or(DEFAULT_DELTA);
            let policy = if parsed.name == "mvtil-early" {
                MvtilPolicy::early(delta)
            } else {
                MvtilPolicy::late(delta)
            };
            mvtl_engine(policy, clock, &mut parsed, gc, wal)?
        }
        "mvtl-to" => mvtl_engine(ToPolicy::new(), clock, &mut parsed, gc, wal)?,
        "mvtl-ghostbuster" => mvtl_engine(GhostbusterPolicy::new(), clock, &mut parsed, gc, wal)?,
        "mvtl-epsilon-clock" => {
            let eps = parsed.take_parsed("eps")?.unwrap_or(DEFAULT_EPSILON);
            mvtl_engine(EpsilonPolicy::new(eps), clock, &mut parsed, gc, wal)?
        }
        "mvtl-pref" => {
            let policy = match parsed.take("offset") {
                None => PrefPolicy::new(),
                Some(list) => PrefPolicy::with_offsets(parse_offsets(&list)?),
            };
            mvtl_engine(policy, clock, &mut parsed, gc, wal)?
        }
        "mvtl-prio" => mvtl_engine(PrioPolicy::new(), clock, &mut parsed, gc, wal)?,
        "mvtl-pessimistic" => mvtl_engine(PessimisticPolicy::new(), clock, &mut parsed, gc, wal)?,
        "mvto+" => wal_then_gc(MvtoStore::<V>::new(Arc::clone(&clock)), clock, gc, wal)?,
        "2pl" => {
            let timeout_ms = parsed
                .take_parsed("timeout_ms")?
                .unwrap_or(DEFAULT_2PL_TIMEOUT_MS);
            wal_then_gc(
                TwoPhaseLockingStore::<V>::new(
                    Arc::clone(&clock),
                    Duration::from_millis(timeout_ms),
                ),
                clock,
                gc,
                wal,
            )?
        }
        "sharded" => sharded_engine(clock, &mut parsed, gc, wal)?,
        other => {
            return Err(SpecError::UnknownEngine {
                name: other.to_string(),
            })
        }
    };
    parsed.finish()?;
    Ok(engine)
}

/// Consumes the `clock` / `clock_block` parameters and builds the spec's
/// clock source, starting at `start` (past any recovered commit).
///
/// `clock=global` (the default) is the strictly monotonic shared counter.
/// `clock=batched` hands each process blocks of `clock_block` timestamps
/// (default [`DEFAULT_CLOCK_BLOCK`]) drawn from a shared allocator — one
/// contended atomic op per block instead of per transaction. A batched clock
/// is unique and per-process monotonic but **not globally ordered**, which
/// only the MVTIL engines tolerate (their interval policy assumes nothing
/// about clock synchronization, §8.1); every other engine would suffer the
/// §5.3 serial aborts, so the spec is rejected for them.
fn take_clock(
    parsed: &mut EngineSpec,
    start: u64,
) -> Result<Arc<dyn mvtl_clock::ClockSource>, SpecError> {
    let mode = parsed.take("clock");
    let block = parsed.take_parsed::<u64>("clock_block")?;
    if block.is_some() && mode.as_deref() != Some("batched") {
        return Err(SpecError::Malformed {
            detail: "clock_block requires clock=batched (only a batched clock draws blocks)"
                .to_string(),
        });
    }
    match mode.as_deref() {
        None | Some("global") => Ok(Arc::new(GlobalClock::starting_at(start))),
        Some("batched") => {
            if !matches!(parsed.name.as_str(), "mvtil-early" | "mvtil-late") {
                return Err(SpecError::Malformed {
                    detail: format!(
                        "clock=batched only applies to the MVTIL engines, not {}: \
                         a batched clock is not globally monotonic",
                        parsed.name
                    ),
                });
            }
            let block = block.unwrap_or(DEFAULT_CLOCK_BLOCK);
            if block == 0 || block > mvtl_clock::MAX_CLOCK_BLOCK {
                return Err(SpecError::InvalidValue {
                    param: "clock_block".to_string(),
                    value: block.to_string(),
                });
            }
            Ok(Arc::new(BatchedClock::starting_at(start, block)))
        }
        Some(other) => Err(SpecError::InvalidValue {
            param: "clock".to_string(),
            value: other.to_string(),
        }),
    }
}

/// Boxes `store` as a `dyn Engine`, attaching a background [`GcEngine`]
/// sweeper when the spec carried `gc_ms`.
fn maybe_gc<V, S>(
    store: S,
    clock: Arc<dyn mvtl_clock::ClockSource>,
    gc: Option<GcConfig>,
) -> Box<dyn Engine<V>>
where
    V: Clone + Send + Sync + 'static,
    S: mvtl_common::TransactionalKV<V> + 'static,
    S::Txn: 'static,
{
    match gc {
        None => Box::new(store),
        Some(config) => Box::new(GcEngine::spawn(Arc::new(store), clock, config)),
    }
}

/// Consumes the shared `gc_ms` / `gc_lag_ms` parameters. `Some` means "wrap
/// the engine in a [`GcEngine`] with this configuration".
fn take_gc_config(parsed: &mut EngineSpec) -> Result<Option<GcConfig>, SpecError> {
    let gc_ms = parsed.take_parsed::<u64>("gc_ms")?;
    let gc_lag_ms = parsed.take_parsed::<u64>("gc_lag_ms")?;
    match (gc_ms, gc_lag_ms) {
        (None, None) => Ok(None),
        (None, Some(_)) => Err(SpecError::Malformed {
            detail: "gc_lag_ms requires gc_ms (no GC service without an interval)".to_string(),
        }),
        (Some(0), _) => Err(SpecError::InvalidValue {
            param: "gc_ms".to_string(),
            value: "0".to_string(),
        }),
        (Some(ms), lag) => Ok(Some(
            GcConfig::default()
                .with_interval(Duration::from_millis(ms))
                .with_lag(Duration::from_millis(lag.unwrap_or(DEFAULT_GC_LAG_MS))),
        )),
    }
}

/// Where a spec's write-ahead log lives: a caller-named directory, or a
/// throwaway temporary directory (`wal=tmp`) removed with the engine.
enum WalDir {
    Named(PathBuf),
    Temp(TempDir),
}

impl WalDir {
    fn path(&self) -> &Path {
        match self {
            WalDir::Named(path) => path,
            WalDir::Temp(dir) => dir.path(),
        }
    }
}

/// The consumed `wal` / `fsync` / `wal_segment_kb` parameters.
struct WalConfig {
    dir: WalDir,
    options: WalOptions,
}

/// Consumes the shared `wal` / `fsync` / `wal_segment_kb` parameters. `Some`
/// means "open a log there and wrap the engine in it".
fn take_wal_config(parsed: &mut EngineSpec) -> Result<Option<WalConfig>, SpecError> {
    let wal = parsed.take("wal");
    let fsync = parsed.take("fsync");
    let segment_kb = parsed.take_parsed::<u64>("wal_segment_kb")?;
    let Some(dir) = wal else {
        let orphan = if fsync.is_some() {
            Some("fsync")
        } else if segment_kb.is_some() {
            Some("wal_segment_kb")
        } else {
            None
        };
        return match orphan {
            None => Ok(None),
            Some(param) => Err(SpecError::Malformed {
                detail: format!("{param} requires wal (no log without a directory)"),
            }),
        };
    };
    let fsync = match fsync {
        None => FsyncMode::Group,
        Some(mode) => FsyncMode::parse(&mode).ok_or(SpecError::InvalidValue {
            param: "fsync".to_string(),
            value: mode.clone(),
        })?,
    };
    if segment_kb == Some(0) {
        return Err(SpecError::InvalidValue {
            param: "wal_segment_kb".to_string(),
            value: "0".to_string(),
        });
    }
    let options = WalOptions {
        fsync,
        segment_bytes: segment_kb.unwrap_or(DEFAULT_WAL_SEGMENT_KB) * 1024,
    };
    let dir = if dir == "tmp" {
        WalDir::Temp(TempDir::new("mvtl-wal"))
    } else {
        WalDir::Named(PathBuf::from(dir))
    };
    Ok(Some(WalConfig { dir, options }))
}

/// The opened log(s) of a spec, ready to attach: one for a single-store
/// engine, or one per shard for the `sharded` engine.
enum WalHandles<V> {
    None,
    Single(Wal, Recovery<V>),
    PerShard(Vec<(Wal, Recovery<V>)>),
}

impl<V> WalHandles<V> {
    /// The largest commit timestamp any log recovered — the global clock
    /// must start past it so post-crash transactions order after the
    /// recovered state.
    fn max_commit_ts(&self) -> Option<Timestamp> {
        match self {
            WalHandles::None => None,
            WalHandles::Single(_, recovery) => recovery.max_commit_ts(),
            WalHandles::PerShard(handles) => handles
                .iter()
                .filter_map(|(_, recovery)| recovery.max_commit_ts())
                .max(),
        }
    }
}

fn wal_spec_err(err: mvtl_wal::WalError) -> SpecError {
    SpecError::Malformed {
        detail: format!("wal attach failed: {err}"),
    }
}

/// Opens (scanning and truncating torn tails, but not yet replaying) the
/// log(s) a [`WalConfig`] describes: the `sharded` engine logs per shard
/// under `<dir>/shard-<i>`, everything else logs into the directory itself.
/// For `wal=tmp`, the temporary directory's lifetime is handed to the log
/// that drops last, so the whole tree disappears with the engine.
fn open_wals<V: WalValue>(
    config: Option<WalConfig>,
    parsed: &EngineSpec,
) -> Result<WalHandles<V>, SpecError> {
    let Some(WalConfig { dir, options }) = config else {
        return Ok(WalHandles::None);
    };
    if parsed.name == "sharded" {
        // Peek the shard count non-destructively: `sharded_engine` consumes
        // (and validates) the parameter itself later.
        let count = parsed
            .get("shards")
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(DEFAULT_SHARD_COUNT)
            .max(1);
        let mut handles = Vec::with_capacity(count);
        for i in 0..count {
            let shard_dir = dir.path().join(format!("shard-{i}"));
            handles.push(Wal::open::<V>(&shard_dir, options).map_err(wal_spec_err)?);
        }
        if let WalDir::Temp(tmp) = dir {
            // Shard backends drop in index order, so the last shard's log
            // outlives its siblings and can own the shared parent directory.
            if let Some((wal, _)) = handles.last_mut() {
                wal.retain_dir(tmp);
            }
        }
        Ok(WalHandles::PerShard(handles))
    } else {
        let (mut wal, recovery) = Wal::open::<V>(dir.path(), options).map_err(wal_spec_err)?;
        if let WalDir::Temp(tmp) = dir {
            wal.retain_dir(tmp);
        }
        Ok(WalHandles::Single(wal, recovery))
    }
}

/// Wraps `store` in a [`WalEngine`] when the spec carried `wal=` (replaying
/// whatever the log already held), then boxes it with [`maybe_gc`].
fn wal_then_gc<V, S>(
    store: S,
    clock: Arc<dyn mvtl_clock::ClockSource>,
    gc: Option<GcConfig>,
    wal: WalHandles<V>,
) -> Result<Box<dyn Engine<V>>, SpecError>
where
    V: WalValue + Clone + Send + Sync + 'static,
    S: mvtl_common::TransactionalKV<V> + 'static,
    S::Txn: 'static,
{
    match wal {
        WalHandles::None => Ok(maybe_gc(store, clock, gc)),
        WalHandles::Single(w, recovery) => {
            let (engine, _report) =
                WalEngine::with_recovery(Arc::new(store), w, recovery).map_err(wal_spec_err)?;
            Ok(maybe_gc(engine, clock, gc))
        }
        WalHandles::PerShard(_) => Err(SpecError::Malformed {
            detail: "per-shard logs only apply to the sharded engine".to_string(),
        }),
    }
}

/// Builds an `MvtlStore` around `policy`, consuming the shared MVTL
/// parameters (`timeout_ms`, `shards`) from the spec. The GC knobs are
/// recorded in the store's [`MvtlConfig`] so embedders that reach through to
/// the store see the requested maintenance policy; the service itself is
/// attached by [`build_for`].
fn mvtl_engine<V, P>(
    policy: P,
    clock: Arc<dyn mvtl_clock::ClockSource>,
    parsed: &mut EngineSpec,
    gc: Option<GcConfig>,
    wal: WalHandles<V>,
) -> Result<Box<dyn Engine<V>>, SpecError>
where
    V: WalValue + Clone + Send + Sync + 'static,
    P: LockingPolicy + 'static,
{
    let mut config = MvtlConfig::default();
    if let Some(timeout_ms) = parsed.take_parsed::<u64>("timeout_ms")? {
        config = config.with_lock_wait_timeout(Duration::from_millis(timeout_ms));
    }
    if let Some(shards) = parsed.take_parsed::<usize>("shards")? {
        config = config.with_shards(shards);
    }
    if let Some(gc) = gc {
        config = config
            .with_gc_interval(Some(gc.interval))
            .with_gc_lag(gc.lag);
    }
    // The store config is the source of truth for the service from here on:
    // the spawned sweeper's configuration is read back out of it.
    let service = GcConfig::from_store_config(&config);
    let store = MvtlStore::<V, P>::new(policy, Arc::clone(&clock), config);
    wal_then_gc(store, clock, service, wal)
}

/// Builds the partitioned `sharded` engine: `shards` hash partitions, each an
/// `MvtlStore` under the `inner` policy, all sharing one clock so that
/// cross-shard transactions reason from a common timestamp base.
///
/// Parameters consumed here: `shards` (partition count, default
/// [`DEFAULT_SHARD_COUNT`]), `inner` (partition policy, default
/// [`DEFAULT_SHARD_INNER`]; any MVTL-core engine name — the baselines cannot
/// freeze intervals and are rejected), `pick` (`min` | `max`, which end of
/// the interval intersection a cross-shard commit uses; defaults to the
/// inner engine's own bias: `max` for `mvtil-late`, `min` otherwise),
/// `map_shards` (each partition's key→cell map shard count), plus the inner
/// engine's own parameters (`delta`, `eps`, `offset`, `timeout_ms`). With
/// `gc_ms` set (consumed by [`build_for`]), the single service attached to
/// the returned engine sweeps *all* shards through
/// [`ShardedStore::purge_below`] under the store's aggregated low watermark.
///
/// Fault injection: `fault` (a `mvtl-faults` schedule string such as
/// `delay:0.4:200|crash:0.1`; every shard backend is wrapped in a
/// [`FaultyBackend`] consulting one shared seeded [`FaultPlan`]), `fault_seed`
/// (plan seed, default [`DEFAULT_FAULT_SEED`]; requires `fault`), and
/// `commit_timeout_ms` (the coordinator's prepare timeout — cross-shard
/// commits unresolved within it are presumed aborted; standalone use is fine,
/// and schedules whose faults can outlast the coordinator's patience —
/// `drop`/`stall` clauses — arm [`DEFAULT_COMMIT_TIMEOUT_MS`] automatically).
fn sharded_engine<V>(
    clock: Arc<dyn mvtl_clock::ClockSource>,
    parsed: &mut EngineSpec,
    gc: Option<GcConfig>,
    wal: WalHandles<V>,
) -> Result<Box<dyn Engine<V>>, SpecError>
where
    V: WalValue + Clone + Send + Sync + 'static,
{
    let count = parsed
        .take_parsed::<usize>("shards")?
        .unwrap_or(DEFAULT_SHARD_COUNT)
        .max(1);
    let inner = parsed
        .take("inner")
        .unwrap_or_else(|| DEFAULT_SHARD_INNER.to_string());
    let pick = match parsed.take("pick").as_deref() {
        None => {
            if inner == "mvtil-late" {
                IntersectionPick::Max
            } else {
                IntersectionPick::Min
            }
        }
        Some("min") => IntersectionPick::Min,
        Some("max") => IntersectionPick::Max,
        Some(other) => {
            return Err(SpecError::InvalidValue {
                param: "pick".to_string(),
                value: other.to_string(),
            })
        }
    };
    let fault = parsed.take("fault");
    let fault_seed = parsed.take_parsed::<u64>("fault_seed")?;
    let commit_timeout_ms = parsed.take_parsed::<u64>("commit_timeout_ms")?;
    if fault.is_none() && fault_seed.is_some() {
        return Err(SpecError::Malformed {
            detail: "fault_seed requires fault (no fault plan without a schedule)".to_string(),
        });
    }
    if commit_timeout_ms == Some(0) {
        return Err(SpecError::InvalidValue {
            param: "commit_timeout_ms".to_string(),
            value: "0".to_string(),
        });
    }
    let fault_plan = match fault {
        None => None,
        Some(schedule) => {
            let spec = FaultSpec::parse(&schedule).map_err(|err| SpecError::InvalidValue {
                param: "fault".to_string(),
                value: format!("{schedule} ({})", err.detail),
            })?;
            Some(Arc::new(FaultPlan::new(
                spec,
                fault_seed.unwrap_or(DEFAULT_FAULT_SEED),
            )))
        }
    };
    let mut config = MvtlConfig::default();
    if let Some(timeout_ms) = parsed.take_parsed::<u64>("timeout_ms")? {
        config = config.with_lock_wait_timeout(Duration::from_millis(timeout_ms));
    }
    if let Some(map_shards) = parsed.take_parsed::<usize>("map_shards")? {
        config = config.with_shards(map_shards);
    }
    if let Some(gc) = gc {
        config = config
            .with_gc_interval(Some(gc.interval))
            .with_gc_lag(gc.lag);
    }
    let service = GcConfig::from_store_config(&config);
    let backend = |policy_for: &dyn Fn() -> Arc<dyn ShardBackend<V>>| {
        (0..count).map(|_| policy_for()).collect::<Vec<_>>()
    };
    let backends: Vec<Arc<dyn ShardBackend<V>>> = match inner.as_str() {
        "mvtil-early" | "mvtil-late" => {
            let delta = parsed.take_parsed("delta")?.unwrap_or(DEFAULT_DELTA);
            let late = inner == "mvtil-late";
            backend(&|| {
                MvtlBackend::build(
                    if late {
                        MvtilPolicy::late(delta)
                    } else {
                        MvtilPolicy::early(delta)
                    },
                    Arc::clone(&clock),
                    config.clone(),
                )
            })
        }
        "mvtl-to" => {
            backend(&|| MvtlBackend::build(ToPolicy::new(), Arc::clone(&clock), config.clone()))
        }
        "mvtl-ghostbuster" => backend(&|| {
            MvtlBackend::build(GhostbusterPolicy::new(), Arc::clone(&clock), config.clone())
        }),
        "mvtl-epsilon-clock" => {
            let eps = parsed.take_parsed("eps")?.unwrap_or(DEFAULT_EPSILON);
            backend(&|| {
                MvtlBackend::build(EpsilonPolicy::new(eps), Arc::clone(&clock), config.clone())
            })
        }
        "mvtl-pref" => {
            let offsets = match parsed.take("offset") {
                None => None,
                Some(list) => Some(parse_offsets(&list)?),
            };
            backend(&|| {
                let policy = match &offsets {
                    None => PrefPolicy::new(),
                    Some(offsets) => PrefPolicy::with_offsets(offsets.clone()),
                };
                MvtlBackend::build(policy, Arc::clone(&clock), config.clone())
            })
        }
        "mvtl-prio" => {
            backend(&|| MvtlBackend::build(PrioPolicy::new(), Arc::clone(&clock), config.clone()))
        }
        "mvtl-pessimistic" => backend(&|| {
            MvtlBackend::build(PessimisticPolicy::new(), Arc::clone(&clock), config.clone())
        }),
        other => {
            // The baselines (mvto+, 2pl) cannot freeze a commit interval, so
            // they cannot participate in the §7 protocol.
            return Err(SpecError::InvalidValue {
                param: "inner".to_string(),
                value: other.to_string(),
            });
        }
    };
    let backends = match &fault_plan {
        None => backends,
        Some(plan) => FaultyBackend::wrap_all(backends, plan),
    };
    // The log wraps outside the fault layer: recovery replays through it into
    // the real backend, while live prepares/decisions reach the log only
    // after surviving injected faults — so the log never records an ack the
    // coordinator did not see.
    let backends = match wal {
        WalHandles::None => backends,
        WalHandles::PerShard(handles) => {
            // `open_wals` sized the handle list off the same peeked count.
            debug_assert_eq!(handles.len(), backends.len());
            let mut logged = Vec::with_capacity(backends.len());
            for (backend, (w, recovery)) in backends.into_iter().zip(handles) {
                let (backend, _report) =
                    WalBackend::with_recovery(backend, w, recovery).map_err(wal_spec_err)?;
                logged.push(backend);
            }
            logged
        }
        WalHandles::Single(..) => {
            return Err(SpecError::Malformed {
                detail: "the sharded engine logs per shard, not into one log".to_string(),
            })
        }
    };
    let mut store = ShardedStore::new(backends, Arc::clone(&clock), pick);
    // Arm the coordinator's presumed-abort timeout when asked for explicitly,
    // or when the schedule can withhold a prepare past any finite patience.
    let timeout_ms = commit_timeout_ms.or_else(|| {
        fault_plan
            .as_ref()
            .filter(|plan| plan.spec().needs_commit_timeout())
            .map(|_| DEFAULT_COMMIT_TIMEOUT_MS)
    });
    if let Some(ms) = timeout_ms {
        store = store.with_commit_timeout(Duration::from_millis(ms));
    }
    Ok(maybe_gc(store, clock, service))
}

fn parse_offsets(list: &str) -> Result<Vec<i64>, SpecError> {
    list.split(',')
        .map(|s| {
            s.trim()
                .parse::<i64>()
                .map_err(|_| SpecError::InvalidValue {
                    param: "offset".to_string(),
                    value: s.trim().to_string(),
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_splits_name_and_params() {
        let spec = EngineSpec::parse("mvtl-pref?offset=5&timeout_ms=20").unwrap();
        assert_eq!(spec.name, "mvtl-pref");
        assert_eq!(
            spec.params,
            vec![
                ("offset".to_string(), "5".to_string()),
                ("timeout_ms".to_string(), "20".to_string())
            ]
        );
        assert_eq!(EngineSpec::parse("2pl").unwrap().params, vec![]);
    }

    #[test]
    fn get_peeks_parameters_without_consuming() {
        let spec = EngineSpec::parse("sharded?shards=8&inner=mvtil-early").unwrap();
        assert_eq!(spec.get("shards"), Some("8"));
        assert_eq!(spec.get("inner"), Some("mvtil-early"));
        assert_eq!(spec.get("delta"), None);
        // Peeking twice works: nothing was removed.
        assert_eq!(spec.get("shards"), Some("8"));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for spec in [
            "mvtil-early",
            "sharded?shards=8&inner=mvtil-early",
            "mvtl-pref?offset=-28,3&timeout_ms=20",
        ] {
            let parsed = EngineSpec::parse(spec).unwrap();
            assert_eq!(parsed.to_string(), spec);
            assert_eq!(EngineSpec::parse(&parsed.to_string()).unwrap(), parsed);
        }
    }

    #[test]
    fn split_prefixed_peels_front_end_params_off_the_engine_spec() {
        let (serve, engine) = EngineSpec::split_prefixed(
            "sharded?shards=4&serve_max_txns=64&inner=mvtl-to&serve_nodelay=0",
            "serve_",
        )
        .unwrap();
        assert_eq!(
            serve,
            vec![
                ("max_txns".to_string(), "64".to_string()),
                ("nodelay".to_string(), "0".to_string())
            ]
        );
        assert_eq!(engine, "sharded?shards=4&inner=mvtl-to");
        assert!(build(&engine).is_ok(), "remaining spec still builds");

        // No prefixed params: the spec passes through unchanged.
        let (serve, engine) = EngineSpec::split_prefixed("mvtil-early?delta=5", "serve_").unwrap();
        assert!(serve.is_empty());
        assert_eq!(engine, "mvtil-early?delta=5");

        // Malformed specs are rejected at the split already.
        assert!(matches!(
            EngineSpec::split_prefixed("?x=1", "serve_"),
            Err(SpecError::Malformed { .. })
        ));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(matches!(
            EngineSpec::parse("?delta=5"),
            Err(SpecError::Malformed { .. })
        ));
        assert!(matches!(
            EngineSpec::parse("mvtil-early?delta"),
            Err(SpecError::Malformed { .. })
        ));
    }

    #[test]
    fn unknown_engines_and_params_are_rejected() {
        assert!(matches!(
            build("silo").map(|_| ()),
            Err(SpecError::UnknownEngine { .. })
        ));
        assert!(matches!(
            build("mvto+?delta=5").map(|_| ()),
            Err(SpecError::UnknownParam { .. })
        ));
        assert!(matches!(
            build("mvtil-early?delta=banana").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
        let msg = build("silo").map(|_| ()).unwrap_err().to_string();
        assert!(
            msg.contains("mvtil-early"),
            "error lists known specs: {msg}"
        );
    }

    #[test]
    fn offsets_parse_as_comma_separated_signed_list() {
        assert_eq!(parse_offsets("-28, 3,0").unwrap(), vec![-28, 3, 0]);
        assert!(parse_offsets("a").is_err());
        assert!(build("mvtl-pref?offset=-28,-3").is_ok());
    }

    #[test]
    fn string_values_build_too() {
        let engine = build_for::<String>("mvtil-early?delta=1000").unwrap();
        assert_eq!(engine.name(), "mvtil-early");
    }

    #[test]
    fn sharded_specs_build_with_every_mvtl_inner() {
        for inner in [
            "mvtil-early",
            "mvtil-late",
            "mvtl-to",
            "mvtl-ghostbuster",
            "mvtl-epsilon-clock",
            "mvtl-pref",
            "mvtl-prio",
            "mvtl-pessimistic",
        ] {
            let spec = format!("sharded?shards=4&inner={inner}");
            let engine = build(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(engine.name(), "sharded", "{spec}");
        }
        // Defaults and the pick/map_shards knobs parse.
        assert!(build("sharded").is_ok());
        assert!(build("sharded?shards=2&inner=mvtil-late&delta=500&pick=max&map_shards=4").is_ok());
        assert!(build_for::<String>("sharded?shards=2").is_ok());
    }

    #[test]
    fn gc_specs_build_for_every_engine_and_reject_bad_params() {
        for spec in [
            "mvtil-early?gc_ms=50&gc_lag_ms=10",
            "mvtl-to?gc_ms=50",
            "mvto+?gc_ms=50",
            "2pl?gc_ms=50",
            "sharded?shards=2&gc_ms=50&gc_lag_ms=5",
        ] {
            let engine = build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(engine.name(), EngineSpec::base_name(spec), "{spec}");
        }
        assert!(matches!(
            build("mvtil-early?gc_lag_ms=5").map(|_| ()),
            Err(SpecError::Malformed { .. })
        ));
        assert!(matches!(
            build("mvtil-early?gc_ms=0").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            build("mvtil-early?gc_ms=soon").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
    }

    #[test]
    fn batched_clock_specs_build_for_mvtil_and_round_trip() {
        use mvtl_common::{EngineExt, Key, ProcessId};
        for spec in [
            "mvtil-early?clock=batched",
            "mvtil-late?clock=batched&clock_block=16",
            "mvtil-early?clock=batched&clock_block=1&delta=1000",
            "mvtil-early?clock=global",
        ] {
            let engine = build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            // Two processes write and read back through the batched clock:
            // blocks hand out unique timestamps, so both commits land.
            let mut w = engine.begin(ProcessId(0));
            w.write(Key(1), 11).unwrap();
            w.commit()
                .unwrap_or_else(|e| panic!("{spec}: writer aborted: {e}"));
            let mut r = engine.begin(ProcessId(1));
            assert_eq!(r.read(Key(1)).unwrap(), Some(11), "{spec}");
            r.commit()
                .unwrap_or_else(|e| panic!("{spec}: reader aborted: {e}"));
        }
    }

    #[test]
    fn batched_clock_is_rejected_for_monotonicity_dependent_engines() {
        // MVTL-TO, MVTO+, 2PL, the ε-clock policy and the sharded coordinator
        // all reason from a globally ordered clock; a batched clock would
        // reintroduce the §5.3 serial aborts silently, so the spec is refused.
        for spec in [
            "mvtl-to?clock=batched",
            "mvto+?clock=batched",
            "2pl?clock=batched",
            "mvtl-epsilon-clock?clock=batched",
            "sharded?inner=mvtil-early&clock=batched",
        ] {
            assert!(
                matches!(build(spec).map(|_| ()), Err(SpecError::Malformed { .. })),
                "{spec} must be rejected"
            );
        }
        // Orphan / malformed clock knobs.
        assert!(matches!(
            build("mvtil-early?clock_block=16").map(|_| ()),
            Err(SpecError::Malformed { .. })
        ));
        assert!(matches!(
            build("mvtil-early?clock=batched&clock_block=0").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            build("mvtil-early?clock=batched&clock_block=100000").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            build("mvtil-early?clock=sundial").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
    }

    #[test]
    fn batched_clock_starts_past_recovered_commits() {
        use mvtl_common::{EngineExt, Key, ProcessId};
        let dir = TempDir::new("batched-clock-wal");
        let spec = format!(
            "mvtil-early?clock=batched&clock_block=8&wal={}",
            dir.path().display()
        );
        {
            let engine = build(&spec).unwrap();
            let mut tx = engine.begin(ProcessId(0));
            tx.write(Key(7), 70).unwrap();
            tx.commit().unwrap();
        }
        // Reopen: recovery floors the batched clock past the logged commit,
        // so the rebuilt engine orders after the recovered state.
        let engine = build(&spec).unwrap();
        let mut tx = engine.begin(ProcessId(0));
        assert_eq!(tx.read(Key(7)).unwrap(), Some(70));
        tx.write(Key(7), 71).unwrap();
        tx.commit().unwrap();
    }

    #[test]
    fn gc_wrapped_engine_purges_in_the_background() {
        use mvtl_common::{EngineExt, Key, ProcessId};
        let engine = build("mvtl-to?gc_ms=2&gc_lag_ms=0").unwrap();
        for round in 0..16u64 {
            let mut tx = engine.begin(ProcessId(1));
            tx.write(Key(1), round).unwrap();
            tx.commit().unwrap();
        }
        let bounded = (0..500).any(|_| {
            if engine.stats().versions <= 1 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
            false
        });
        assert!(bounded, "GC never swept the spec-built engine");
        let mut tx = engine.begin(ProcessId(2));
        assert_eq!(tx.read(Key(1)).unwrap(), Some(15));
        tx.commit().unwrap();
    }

    #[test]
    fn every_canonical_spec_builds() {
        for spec in all_specs() {
            let engine = build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(engine.name(), EngineSpec::base_name(spec), "{spec}");
        }
    }

    #[test]
    fn wal_specs_build_for_every_engine_family() {
        use mvtl_common::{EngineExt, Key, ProcessId};
        for base in [
            "mvtil-early",
            "mvtil-late",
            "mvtl-to",
            "mvto+",
            "2pl",
            "sharded?shards=2&inner=mvtil-early",
        ] {
            let spec = EngineSpec::append_params(base, "wal=tmp");
            let engine = build(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            let mut tx = engine.begin(ProcessId(1));
            tx.write(Key(7), 7).unwrap();
            tx.commit().unwrap_or_else(|e| panic!("{spec}: {e}"));
        }
    }

    #[test]
    fn wal_specs_persist_committed_state_across_rebuilds() {
        use mvtl_common::{EngineExt, Key, ProcessId};
        let dir = TempDir::new("registry-wal");
        let spec = format!("mvtil-early?wal={}&fsync=group", dir.path().display());
        let engine = build(&spec).unwrap();
        let mut tx = engine.begin(ProcessId(1));
        tx.write(Key(1), 41).unwrap();
        tx.write(Key(2), 42).unwrap();
        tx.commit().unwrap();
        drop(engine); // "crash": in-memory state gone, the log remains

        let engine = build(&spec).unwrap();
        let mut tx = engine.begin(ProcessId(2));
        assert_eq!(tx.read(Key(1)).unwrap(), Some(41));
        assert_eq!(tx.read(Key(2)).unwrap(), Some(42));
        // The rebuilt clock starts past the recovered commits, so a
        // post-crash overwrite serializes after them.
        tx.write(Key(1), 43).unwrap();
        tx.commit().unwrap();
        drop(engine);

        let engine = build(&spec).unwrap();
        let mut tx = engine.begin(ProcessId(3));
        assert_eq!(tx.read(Key(1)).unwrap(), Some(43));
        assert_eq!(tx.read(Key(2)).unwrap(), Some(42));
        tx.commit().unwrap();
    }

    #[test]
    fn sharded_wal_specs_log_per_shard_and_recover() {
        use mvtl_common::{EngineExt, Key, ProcessId};
        let dir = TempDir::new("registry-shard-wal");
        let spec = format!(
            "sharded?shards=2&inner=mvtil-early&wal={}",
            dir.path().display()
        );
        let engine = build(&spec).unwrap();
        let mut tx = engine.begin(ProcessId(1));
        for k in 0..8u64 {
            tx.write(Key(k), k + 100).unwrap(); // spans both shards
        }
        tx.commit().unwrap();
        drop(engine);
        assert!(dir.path().join("shard-0").is_dir());
        assert!(dir.path().join("shard-1").is_dir());

        let engine = build(&spec).unwrap();
        let mut tx = engine.begin(ProcessId(2));
        for k in 0..8u64 {
            assert_eq!(tx.read(Key(k)).unwrap(), Some(k + 100), "key {k}");
        }
        tx.commit().unwrap();
    }

    #[test]
    fn wal_params_are_validated() {
        assert!(matches!(
            build("mvtil-early?fsync=group").map(|_| ()),
            Err(SpecError::Malformed { .. })
        ));
        assert!(matches!(
            build("mvtil-early?wal_segment_kb=64").map(|_| ()),
            Err(SpecError::Malformed { .. })
        ));
        assert!(matches!(
            build("mvtil-early?wal=tmp&fsync=sometimes").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            build("mvtil-early?wal=tmp&wal_segment_kb=0").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
        // The durability knobs compose with the other shared parameters.
        assert!(build("mvtil-early?wal=tmp&fsync=off&wal_segment_kb=64&gc_ms=50").is_ok());
    }

    #[test]
    fn sharded_rejects_baseline_inners_and_bad_picks() {
        assert!(matches!(
            build("sharded?inner=mvto+").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            build("sharded?inner=2pl").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            build("sharded?pick=median").map(|_| ()),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            build("sharded?shards=8&frobnicate=1").map(|_| ()),
            Err(SpecError::UnknownParam { .. })
        ));
    }
}
