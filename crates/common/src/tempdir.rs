//! A std-only RAII temporary directory for tests.
//!
//! The offline build has no `tempfile` crate, and the durability tests need
//! throwaway directories for write-ahead logs. [`TempDir`] creates a uniquely
//! named directory under [`std::env::temp_dir`] and removes it (recursively)
//! on drop, so a panicking test still cleans up after itself.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter decorrelating directories created in the same
/// nanosecond by concurrent tests.
static COUNTER: AtomicU64 = AtomicU64::new(0);

/// An owned temporary directory, deleted recursively on drop.
///
/// # Example
///
/// ```
/// use mvtl_common::TempDir;
///
/// let dir = TempDir::new("doc-test");
/// std::fs::write(dir.path().join("probe"), b"hello").unwrap();
/// let kept = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!kept.exists());
/// ```
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory `<system tmp>/mvtl-<prefix>-<pid>-<n>`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — tests have no sensible
    /// way to continue without one.
    #[must_use]
    pub fn new(prefix: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("mvtl-{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("creating temp dir {}: {e}", path.display()));
        TempDir { path }
    }

    /// The directory's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard without deleting the directory (for debugging a
    /// failing test's on-disk state).
    #[must_use]
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            // Best effort: a failed cleanup must not turn into a panic while
            // another panic is unwinding.
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes_on_drop() {
        let dir = TempDir::new("unit");
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("nested"), b"x").unwrap();
        drop(dir);
        assert!(!path.exists(), "drop must remove the tree");
    }

    #[test]
    fn distinct_directories_per_call() {
        let a = TempDir::new("unit");
        let b = TempDir::new("unit");
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn into_path_keeps_the_directory() {
        let dir = TempDir::new("unit");
        let kept = dir.into_path();
        assert!(kept.is_dir());
        std::fs::remove_dir_all(kept).unwrap();
    }
}
