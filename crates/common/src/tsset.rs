//! Sets of timestamps represented as sorted disjoint closed intervals.

use crate::{Timestamp, TsRange};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ranges stored inline before spilling to the heap. Nearly every set on the
/// hot path — a lock request, a grant, a candidate set — is one or two
/// contiguous intervals, so two inline slots make the common case
/// allocation-free.
const INLINE_RANGES: usize = 2;

/// Filler for unused inline slots; never observable through the public API.
const SLOT_FILLER: TsRange = TsRange {
    start: Timestamp::ZERO,
    end: Timestamp::ZERO,
};

/// The canonical range storage: a fixed inline array for small sets, a heap
/// vector only when a set exceeds [`INLINE_RANGES`] disjoint intervals.
///
/// Every mutation rebuilds through [`TsSet::push_canonical`], so a freshly
/// produced set is always in the smallest representation that fits — `Heap`
/// implies more than [`INLINE_RANGES`] ranges at some point during the
/// rebuild. Equality is defined on the range sequence, not the representation.
#[derive(Clone, Serialize, Deserialize)]
enum Repr {
    /// Up to [`INLINE_RANGES`] ranges stored by value; `len` counts the live
    /// prefix of `slots`.
    Inline {
        len: u8,
        slots: [TsRange; INLINE_RANGES],
    },
    /// Spilled storage for larger sets.
    Heap(Vec<TsRange>),
}

/// A set of timestamps stored as sorted, disjoint, non-adjacent closed ranges.
///
/// `TsSet` is the workhorse of the reproduction: it represents
///
/// * the per-transaction candidate timestamps (`tx.TS` in the ε-clock and MVTIL
///   algorithms, `PossTS` in MVTL-Pref),
/// * the set of timestamps a transaction has locked on a key, and
/// * the commit-time candidate set `T` of Algorithm 1 line 13, computed by
///   intersecting the locked sets across all keys of the transaction.
///
/// All operations keep the canonical representation (sorted, disjoint, merged
/// when adjacent), so equality is structural. Sets of up to two ranges — the
/// overwhelmingly common case on the lock-table hot path — are stored inline
/// and never touch the allocator.
#[derive(Clone, Serialize, Deserialize)]
pub struct TsSet {
    repr: Repr,
}

impl Default for TsSet {
    fn default() -> Self {
        TsSet::new()
    }
}

impl PartialEq for TsSet {
    fn eq(&self, other: &Self) -> bool {
        self.ranges() == other.ranges()
    }
}

impl Eq for TsSet {}

impl TsSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        TsSet {
            repr: Repr::Inline {
                len: 0,
                slots: [SLOT_FILLER; INLINE_RANGES],
            },
        }
    }

    /// The empty set (alias, reads better in some call sites).
    #[must_use]
    pub fn empty() -> Self {
        Self::new()
    }

    /// A set containing a single closed range.
    #[must_use]
    pub fn from_range(range: TsRange) -> Self {
        let mut slots = [SLOT_FILLER; INLINE_RANGES];
        slots[0] = range;
        TsSet {
            repr: Repr::Inline { len: 1, slots },
        }
    }

    /// A set containing a single timestamp.
    #[must_use]
    pub fn from_point(t: Timestamp) -> Self {
        Self::from_range(TsRange::point(t))
    }

    /// Builds a set from arbitrary (possibly overlapping, unsorted) ranges.
    #[must_use]
    pub fn from_ranges<I: IntoIterator<Item = TsRange>>(iter: I) -> Self {
        let mut set = TsSet::new();
        for r in iter {
            set.insert_range(r);
        }
        set
    }

    /// Appends `range` after every range already stored. The caller guarantees
    /// canonical order (sorted, disjoint, non-adjacent); this is the single
    /// point where inline storage spills to the heap.
    fn push_canonical(&mut self, range: TsRange) {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                let n = usize::from(*len);
                if n < INLINE_RANGES {
                    slots[n] = range;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(INLINE_RANGES * 2);
                    spilled.extend_from_slice(&slots[..n]);
                    spilled.push(range);
                    self.repr = Repr::Heap(spilled);
                }
            }
            Repr::Heap(ranges) => ranges.push(range),
        }
    }

    /// Whether the set contains no timestamps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges().is_empty()
    }

    /// Number of disjoint ranges in the canonical representation.
    #[must_use]
    pub fn range_count(&self) -> usize {
        self.ranges().len()
    }

    /// The ranges of the canonical representation, sorted and disjoint.
    #[must_use]
    pub fn ranges(&self) -> &[TsRange] {
        match &self.repr {
            Repr::Inline { len, slots } => &slots[..usize::from(*len)],
            Repr::Heap(ranges) => ranges,
        }
    }

    /// Whether `t` belongs to the set.
    #[must_use]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.ranges()
            .binary_search_by(|r| {
                if r.end < t {
                    std::cmp::Ordering::Less
                } else if r.start > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Whether every timestamp of `range` belongs to the set.
    #[must_use]
    pub fn contains_range(&self, range: &TsRange) -> bool {
        self.ranges().iter().any(|r| r.contains_range(range))
    }

    /// The smallest timestamp in the set, if any.
    #[must_use]
    pub fn min(&self) -> Option<Timestamp> {
        self.ranges().first().map(|r| r.start)
    }

    /// The largest timestamp in the set, if any.
    #[must_use]
    pub fn max(&self) -> Option<Timestamp> {
        self.ranges().last().map(|r| r.end)
    }

    /// Inserts one closed range, merging as needed.
    pub fn insert_range(&mut self, range: TsRange) {
        let mut new_start = range.start;
        let mut new_end = range.end;
        let mut merged = TsSet::new();
        let mut placed = false;
        for r in self.ranges() {
            if r.touches(&TsRange::new(new_start, new_end)) {
                new_start = new_start.min(r.start);
                new_end = new_end.max(r.end);
            } else if r.end < new_start {
                merged.push_canonical(*r);
            } else {
                if !placed {
                    merged.push_canonical(TsRange::new(new_start, new_end));
                    placed = true;
                }
                merged.push_canonical(*r);
            }
        }
        if !placed {
            merged.push_canonical(TsRange::new(new_start, new_end));
        }
        *self = merged;
    }

    /// Inserts a single timestamp.
    pub fn insert(&mut self, t: Timestamp) {
        self.insert_range(TsRange::point(t));
    }

    /// Removes every timestamp of `range` from the set.
    pub fn remove_range(&mut self, range: TsRange) {
        if !self.ranges().iter().any(|r| r.overlaps(&range)) {
            return;
        }
        let mut out = TsSet::new();
        for r in self.ranges() {
            if !r.overlaps(&range) {
                out.push_canonical(*r);
                continue;
            }
            // Left remainder.
            if r.start < range.start {
                out.push_canonical(TsRange::new(r.start, range.start.pred()));
            }
            // Right remainder.
            if r.end > range.end {
                out.push_canonical(TsRange::new(range.end.succ(), r.end));
            }
        }
        *self = out;
    }

    /// Keeps only the timestamps also contained in `range`.
    pub fn intersect_range(&mut self, range: TsRange) {
        let mut out = TsSet::new();
        for r in self.ranges() {
            if let Some(i) = r.intersection(&range) {
                out.push_canonical(i);
            }
        }
        *self = out;
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &TsSet) -> TsSet {
        let mut out = self.clone();
        for r in other.ranges() {
            out.insert_range(*r);
        }
        out
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &TsSet) -> TsSet {
        let mut out = TsSet::new();
        let a_ranges = self.ranges();
        let b_ranges = other.ranges();
        let (mut i, mut j) = (0usize, 0usize);
        while i < a_ranges.len() && j < b_ranges.len() {
            let a = a_ranges[i];
            let b = b_ranges[j];
            if let Some(r) = a.intersection(&b) {
                out.push_canonical(r);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(&self, other: &TsSet) -> TsSet {
        let mut out = self.clone();
        for r in other.ranges() {
            out.remove_range(*r);
        }
        out
    }

    /// Iterates over the individual timestamps of the set.
    ///
    /// Only useful in tests for small sets; production code always works on
    /// ranges.
    pub fn iter_points(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.ranges().iter().flat_map(|r| PointIter {
            next: Some(r.start),
            end: r.end,
        })
    }

    /// Number of points in the set, saturating; only meaningful for sets whose
    /// ranges are narrow (statistics and tests).
    #[must_use]
    pub fn approx_len(&self) -> u64 {
        self.ranges()
            .iter()
            .map(|r| r.approx_width().unwrap_or(u64::MAX).saturating_add(1))
            .fold(0u64, u64::saturating_add)
    }
}

struct PointIter {
    next: Option<Timestamp>,
    end: Timestamp,
}

impl Iterator for PointIter {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        let cur = self.next?;
        if cur > self.end {
            return None;
        }
        self.next = if cur == self.end {
            None
        } else {
            Some(cur.succ())
        };
        Some(cur)
    }
}

impl fmt::Debug for TsSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.ranges().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<TsRange> for TsSet {
    fn from_iter<I: IntoIterator<Item = TsRange>>(iter: I) -> Self {
        TsSet::from_ranges(iter)
    }
}

impl FromIterator<Timestamp> for TsSet {
    fn from_iter<I: IntoIterator<Item = Timestamp>>(iter: I) -> Self {
        TsSet::from_ranges(iter.into_iter().map(TsRange::point))
    }
}

impl Extend<TsRange> for TsSet {
    fn extend<I: IntoIterator<Item = TsRange>>(&mut self, iter: I) {
        for r in iter {
            self.insert_range(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::at(v)
    }

    fn r(a: u64, b: u64) -> TsRange {
        TsRange::new(ts(a), ts(b))
    }

    #[test]
    fn insert_merges_overlapping_ranges() {
        let mut s = TsSet::new();
        s.insert_range(r(1, 5));
        s.insert_range(r(10, 20));
        s.insert_range(r(4, 12));
        assert_eq!(s.ranges().len(), 1);
        assert_eq!(s.min(), Some(ts(1)));
        assert_eq!(s.max(), Some(ts(20)));
    }

    #[test]
    fn insert_merges_adjacent_ranges() {
        let mut s = TsSet::new();
        s.insert_range(r(1, 5));
        // [5.1 .. 9] is adjacent to nothing at value granularity but
        // touches [1,5] because 5.0.succ() == 5.1.
        s.insert_range(TsRange::new(ts(5).succ(), ts(9)));
        assert_eq!(s.range_count(), 1);
        assert!(s.contains(ts(7)));
    }

    #[test]
    fn disjoint_ranges_stay_disjoint() {
        let mut s = TsSet::new();
        s.insert_range(r(10, 20));
        s.insert_range(r(1, 3));
        s.insert_range(r(30, 40));
        assert_eq!(s.range_count(), 3);
        assert_eq!(s.ranges()[0], r(1, 3));
        assert_eq!(s.ranges()[2], r(30, 40));
    }

    #[test]
    fn contains_points() {
        let s = TsSet::from_ranges([r(1, 3), r(7, 9)]);
        assert!(s.contains(ts(1)));
        assert!(s.contains(ts(9)));
        assert!(!s.contains(ts(5)));
        assert!(!s.contains(ts(0)));
        assert!(!s.contains(ts(10)));
    }

    #[test]
    fn remove_splits_ranges() {
        let mut s = TsSet::from_range(r(1, 10));
        s.remove_range(r(4, 6));
        assert_eq!(s.range_count(), 2);
        assert!(s.contains(ts(3)));
        assert!(!s.contains(ts(5)));
        assert!(s.contains(ts(7)));
        // Boundaries at sub-value granularity.
        assert!(s.contains(ts(4).pred()));
        assert!(s.contains(ts(6).succ()));
    }

    #[test]
    fn remove_entire_range() {
        let mut s = TsSet::from_range(r(5, 9));
        s.remove_range(r(1, 20));
        assert!(s.is_empty());
    }

    #[test]
    fn intersection_of_sets() {
        let a = TsSet::from_ranges([r(1, 10), r(20, 30)]);
        let b = TsSet::from_ranges([r(5, 25)]);
        let i = a.intersection(&b);
        assert_eq!(i.ranges(), &[r(5, 10), r(20, 25)]);
        assert_eq!(i, b.intersection(&a));
    }

    #[test]
    fn union_and_difference() {
        let a = TsSet::from_ranges([r(1, 5)]);
        let b = TsSet::from_ranges([r(3, 8), r(10, 12)]);
        let u = a.union(&b);
        assert!(u.contains(ts(1)) && u.contains(ts(8)) && u.contains(ts(11)));
        let d = b.difference(&a);
        assert!(!d.contains(ts(4)));
        assert!(d.contains(ts(6)));
        assert!(d.contains(ts(10)));
    }

    #[test]
    fn min_max_and_iteration() {
        // Keep the ranges narrow (same clock value) so point iteration stays small.
        let s = TsSet::from_ranges([
            TsRange::new(Timestamp::new(2, 0), Timestamp::new(2, 3)),
            TsRange::new(Timestamp::new(7, 1), Timestamp::new(7, 1)),
        ]);
        assert_eq!(s.min(), Some(Timestamp::new(2, 0)));
        assert_eq!(s.max(), Some(Timestamp::new(7, 1)));
        let pts: Vec<Timestamp> = s.iter_points().collect();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], Timestamp::new(2, 0));
        assert_eq!(pts[4], Timestamp::new(7, 1));
    }

    #[test]
    fn intersect_range_in_place() {
        let mut s = TsSet::from_ranges([r(1, 10), r(20, 30)]);
        s.intersect_range(r(8, 22));
        assert_eq!(s.ranges(), &[r(8, 10), r(20, 22)]);
    }

    #[test]
    fn empty_set_behaviour() {
        let s = TsSet::new();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(!s.contains(ts(0)));
        assert_eq!(s.intersection(&TsSet::from_range(r(1, 2))), TsSet::new());
    }

    #[test]
    fn from_iterators() {
        let s: TsSet = [ts(1), ts(2), ts(5)].into_iter().collect();
        assert!(s.contains(ts(1)));
        assert!(s.contains(ts(5)));
        assert!(!s.contains(ts(4)));
        let t: TsSet = [r(1, 2), r(4, 6)].into_iter().collect();
        assert_eq!(t.range_count(), 2);
    }

    #[test]
    fn inline_storage_spills_and_equality_ignores_representation() {
        // Grow past the inline capacity and shrink back down: the set must
        // behave identically to its small-set form at every step.
        let mut s = TsSet::new();
        for i in 0..6u64 {
            s.insert_range(r(i * 10 + 1, i * 10 + 3));
        }
        assert_eq!(s.range_count(), 6);
        for i in 0..6u64 {
            assert!(s.contains(ts(i * 10 + 2)));
            assert!(!s.contains(ts(i * 10 + 5)));
        }
        // Collapse every gap: the merged single-range set compares equal to a
        // freshly built inline one.
        s.insert_range(r(1, 53));
        assert_eq!(s.range_count(), 1);
        assert_eq!(s, TsSet::from_range(r(1, 53)));
        // Shrink a spilled set via intersection and compare against inline.
        let big = TsSet::from_ranges([r(1, 2), r(4, 5), r(7, 8), r(10, 11)]);
        let mut narrowed = big.clone();
        narrowed.intersect_range(r(4, 8));
        assert_eq!(narrowed, TsSet::from_ranges([r(4, 5), r(7, 8)]));
    }
}
