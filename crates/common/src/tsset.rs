//! Sets of timestamps represented as sorted disjoint closed intervals.

use crate::{Timestamp, TsRange};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of timestamps stored as sorted, disjoint, non-adjacent closed ranges.
///
/// `TsSet` is the workhorse of the reproduction: it represents
///
/// * the per-transaction candidate timestamps (`tx.TS` in the ε-clock and MVTIL
///   algorithms, `PossTS` in MVTL-Pref),
/// * the set of timestamps a transaction has locked on a key, and
/// * the commit-time candidate set `T` of Algorithm 1 line 13, computed by
///   intersecting the locked sets across all keys of the transaction.
///
/// All operations keep the canonical representation (sorted, disjoint, merged
/// when adjacent), so equality is structural.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TsSet {
    ranges: Vec<TsRange>,
}

impl TsSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        TsSet { ranges: Vec::new() }
    }

    /// The empty set (alias, reads better in some call sites).
    #[must_use]
    pub fn empty() -> Self {
        Self::new()
    }

    /// A set containing a single closed range.
    #[must_use]
    pub fn from_range(range: TsRange) -> Self {
        TsSet {
            ranges: vec![range],
        }
    }

    /// A set containing a single timestamp.
    #[must_use]
    pub fn from_point(t: Timestamp) -> Self {
        Self::from_range(TsRange::point(t))
    }

    /// Builds a set from arbitrary (possibly overlapping, unsorted) ranges.
    #[must_use]
    pub fn from_ranges<I: IntoIterator<Item = TsRange>>(iter: I) -> Self {
        let mut set = TsSet::new();
        for r in iter {
            set.insert_range(r);
        }
        set
    }

    /// Whether the set contains no timestamps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of disjoint ranges in the canonical representation.
    #[must_use]
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// The ranges of the canonical representation, sorted and disjoint.
    #[must_use]
    pub fn ranges(&self) -> &[TsRange] {
        &self.ranges
    }

    /// Whether `t` belongs to the set.
    #[must_use]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if r.end < t {
                    std::cmp::Ordering::Less
                } else if r.start > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Whether every timestamp of `range` belongs to the set.
    #[must_use]
    pub fn contains_range(&self, range: &TsRange) -> bool {
        self.ranges.iter().any(|r| r.contains_range(range))
    }

    /// The smallest timestamp in the set, if any.
    #[must_use]
    pub fn min(&self) -> Option<Timestamp> {
        self.ranges.first().map(|r| r.start)
    }

    /// The largest timestamp in the set, if any.
    #[must_use]
    pub fn max(&self) -> Option<Timestamp> {
        self.ranges.last().map(|r| r.end)
    }

    /// Inserts one closed range, merging as needed.
    pub fn insert_range(&mut self, range: TsRange) {
        // Find all existing ranges that touch `range` and merge them into one.
        let mut new_start = range.start;
        let mut new_end = range.end;
        let mut merged: Vec<TsRange> = Vec::with_capacity(self.ranges.len() + 1);
        let mut placed = false;
        for r in &self.ranges {
            if r.touches(&TsRange::new(new_start, new_end)) {
                new_start = new_start.min(r.start);
                new_end = new_end.max(r.end);
            } else if r.end < new_start {
                merged.push(*r);
            } else {
                if !placed {
                    merged.push(TsRange::new(new_start, new_end));
                    placed = true;
                }
                merged.push(*r);
            }
        }
        if !placed {
            merged.push(TsRange::new(new_start, new_end));
        }
        self.ranges = merged;
    }

    /// Inserts a single timestamp.
    pub fn insert(&mut self, t: Timestamp) {
        self.insert_range(TsRange::point(t));
    }

    /// Removes every timestamp of `range` from the set.
    pub fn remove_range(&mut self, range: TsRange) {
        let mut out: Vec<TsRange> = Vec::with_capacity(self.ranges.len() + 1);
        for r in &self.ranges {
            if !r.overlaps(&range) {
                out.push(*r);
                continue;
            }
            // Left remainder.
            if r.start < range.start {
                out.push(TsRange::new(r.start, range.start.pred()));
            }
            // Right remainder.
            if r.end > range.end {
                out.push(TsRange::new(range.end.succ(), r.end));
            }
        }
        self.ranges = out;
    }

    /// Keeps only the timestamps also contained in `range`.
    pub fn intersect_range(&mut self, range: TsRange) {
        let mut out = Vec::with_capacity(self.ranges.len());
        for r in &self.ranges {
            if let Some(i) = r.intersection(&range) {
                out.push(i);
            }
        }
        self.ranges = out;
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &TsSet) -> TsSet {
        let mut out = self.clone();
        for r in &other.ranges {
            out.insert_range(*r);
        }
        out
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &TsSet) -> TsSet {
        let mut out = TsSet::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ranges.len() && j < other.ranges.len() {
            let a = self.ranges[i];
            let b = other.ranges[j];
            if let Some(r) = a.intersection(&b) {
                out.ranges.push(r);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(&self, other: &TsSet) -> TsSet {
        let mut out = self.clone();
        for r in &other.ranges {
            out.remove_range(*r);
        }
        out
    }

    /// Iterates over the individual timestamps of the set.
    ///
    /// Only useful in tests for small sets; production code always works on
    /// ranges.
    pub fn iter_points(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.ranges.iter().flat_map(|r| PointIter {
            next: Some(r.start),
            end: r.end,
        })
    }

    /// Number of points in the set, saturating; only meaningful for sets whose
    /// ranges are narrow (statistics and tests).
    #[must_use]
    pub fn approx_len(&self) -> u64 {
        self.ranges
            .iter()
            .map(|r| r.approx_width().unwrap_or(u64::MAX).saturating_add(1))
            .fold(0u64, u64::saturating_add)
    }
}

struct PointIter {
    next: Option<Timestamp>,
    end: Timestamp,
}

impl Iterator for PointIter {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        let cur = self.next?;
        if cur > self.end {
            return None;
        }
        self.next = if cur == self.end {
            None
        } else {
            Some(cur.succ())
        };
        Some(cur)
    }
}

impl fmt::Debug for TsSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<TsRange> for TsSet {
    fn from_iter<I: IntoIterator<Item = TsRange>>(iter: I) -> Self {
        TsSet::from_ranges(iter)
    }
}

impl FromIterator<Timestamp> for TsSet {
    fn from_iter<I: IntoIterator<Item = Timestamp>>(iter: I) -> Self {
        TsSet::from_ranges(iter.into_iter().map(TsRange::point))
    }
}

impl Extend<TsRange> for TsSet {
    fn extend<I: IntoIterator<Item = TsRange>>(&mut self, iter: I) {
        for r in iter {
            self.insert_range(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::at(v)
    }

    fn r(a: u64, b: u64) -> TsRange {
        TsRange::new(ts(a), ts(b))
    }

    #[test]
    fn insert_merges_overlapping_ranges() {
        let mut s = TsSet::new();
        s.insert_range(r(1, 5));
        s.insert_range(r(10, 20));
        s.insert_range(r(4, 12));
        assert_eq!(s.ranges().len(), 1);
        assert_eq!(s.min(), Some(ts(1)));
        assert_eq!(s.max(), Some(ts(20)));
    }

    #[test]
    fn insert_merges_adjacent_ranges() {
        let mut s = TsSet::new();
        s.insert_range(r(1, 5));
        // [5.1 .. 9] is adjacent to nothing at value granularity but
        // touches [1,5] because 5.0.succ() == 5.1.
        s.insert_range(TsRange::new(ts(5).succ(), ts(9)));
        assert_eq!(s.range_count(), 1);
        assert!(s.contains(ts(7)));
    }

    #[test]
    fn disjoint_ranges_stay_disjoint() {
        let mut s = TsSet::new();
        s.insert_range(r(10, 20));
        s.insert_range(r(1, 3));
        s.insert_range(r(30, 40));
        assert_eq!(s.range_count(), 3);
        assert_eq!(s.ranges()[0], r(1, 3));
        assert_eq!(s.ranges()[2], r(30, 40));
    }

    #[test]
    fn contains_points() {
        let s = TsSet::from_ranges([r(1, 3), r(7, 9)]);
        assert!(s.contains(ts(1)));
        assert!(s.contains(ts(9)));
        assert!(!s.contains(ts(5)));
        assert!(!s.contains(ts(0)));
        assert!(!s.contains(ts(10)));
    }

    #[test]
    fn remove_splits_ranges() {
        let mut s = TsSet::from_range(r(1, 10));
        s.remove_range(r(4, 6));
        assert_eq!(s.range_count(), 2);
        assert!(s.contains(ts(3)));
        assert!(!s.contains(ts(5)));
        assert!(s.contains(ts(7)));
        // Boundaries at sub-value granularity.
        assert!(s.contains(ts(4).pred()));
        assert!(s.contains(ts(6).succ()));
    }

    #[test]
    fn remove_entire_range() {
        let mut s = TsSet::from_range(r(5, 9));
        s.remove_range(r(1, 20));
        assert!(s.is_empty());
    }

    #[test]
    fn intersection_of_sets() {
        let a = TsSet::from_ranges([r(1, 10), r(20, 30)]);
        let b = TsSet::from_ranges([r(5, 25)]);
        let i = a.intersection(&b);
        assert_eq!(i.ranges(), &[r(5, 10), r(20, 25)]);
        assert_eq!(i, b.intersection(&a));
    }

    #[test]
    fn union_and_difference() {
        let a = TsSet::from_ranges([r(1, 5)]);
        let b = TsSet::from_ranges([r(3, 8), r(10, 12)]);
        let u = a.union(&b);
        assert!(u.contains(ts(1)) && u.contains(ts(8)) && u.contains(ts(11)));
        let d = b.difference(&a);
        assert!(!d.contains(ts(4)));
        assert!(d.contains(ts(6)));
        assert!(d.contains(ts(10)));
    }

    #[test]
    fn min_max_and_iteration() {
        // Keep the ranges narrow (same clock value) so point iteration stays small.
        let s = TsSet::from_ranges([
            TsRange::new(Timestamp::new(2, 0), Timestamp::new(2, 3)),
            TsRange::new(Timestamp::new(7, 1), Timestamp::new(7, 1)),
        ]);
        assert_eq!(s.min(), Some(Timestamp::new(2, 0)));
        assert_eq!(s.max(), Some(Timestamp::new(7, 1)));
        let pts: Vec<Timestamp> = s.iter_points().collect();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], Timestamp::new(2, 0));
        assert_eq!(pts[4], Timestamp::new(7, 1));
    }

    #[test]
    fn intersect_range_in_place() {
        let mut s = TsSet::from_ranges([r(1, 10), r(20, 30)]);
        s.intersect_range(r(8, 22));
        assert_eq!(s.ranges(), &[r(8, 10), r(20, 22)]);
    }

    #[test]
    fn empty_set_behaviour() {
        let s = TsSet::new();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(!s.contains(ts(0)));
        assert_eq!(s.intersection(&TsSet::from_range(r(1, 2))), TsSet::new());
    }

    #[test]
    fn from_iterators() {
        let s: TsSet = [ts(1), ts(2), ts(5)].into_iter().collect();
        assert!(s.contains(ts(1)));
        assert!(s.contains(ts(5)));
        assert!(!s.contains(ts(4)));
        let t: TsSet = [r(1, 2), r(4, 6)].into_iter().collect();
        assert_eq!(t.range_count(), 2);
    }
}
