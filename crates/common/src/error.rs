//! Error types shared by every engine in the workspace.

use crate::{Key, Timestamp};
use std::error::Error;
use std::fmt;

/// The reason a transaction was aborted.
///
/// Every engine (all MVTL policies, MVTO+, 2PL) maps its own failure paths onto
/// this shared vocabulary so that the workload harness can aggregate abort
/// statistics uniformly and the theorem checks (`mvtl-verify`) can distinguish
/// abort causes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// No single timestamp was locked across all accessed keys at commit time
    /// (Algorithm 1 line 14): the MVTL commit-candidate set `T` was empty.
    NoCommonTimestamp,
    /// A write could not be validated or locked because of a conflicting read
    /// or write by another transaction (MVTO+ write rejection, MVTIL interval
    /// exhaustion, 2PL conflict resolved by abort).
    WriteConflict {
        /// Key on which the conflict occurred.
        key: Key,
    },
    /// A read or lock wait exceeded the deadlock-resolution timeout (§4.3 and
    /// the 2PL baseline of §8.1 both resolve deadlocks by timeout).
    LockTimeout {
        /// Key the transaction was waiting on.
        key: Key,
    },
    /// The transaction needed a version that has been purged by the timestamp
    /// service / garbage collector (§6, §8.1).
    VersionPurged {
        /// Key whose old version was purged.
        key: Key,
        /// Timestamp the transaction wanted to read below.
        below: Timestamp,
    },
    /// The commitment object (distributed MVTL, §7/§H) decided abort, e.g.
    /// because a server suspected the coordinator of having failed.
    CommitmentDecidedAbort,
    /// The user requested the abort.
    UserRequested,
    /// The transaction's candidate interval became empty while executing
    /// (MVTIL interval shrinking left nothing lockable).
    IntervalExhausted {
        /// Key access that exhausted the interval.
        key: Key,
    },
    /// The cross-shard coordinator (§7) timed out waiting for a participant's
    /// prepare response and resolved the commit by presumed abort.
    PrepareTimedOut {
        /// Index of the shard that had not answered when the timeout fired.
        shard: u32,
    },
    /// A participant shard crashed mid-prepare: its volatile lock state was
    /// lost between `prepare` and the coordinator's decision, so the
    /// sub-transaction (and therefore the whole transaction) is presumed
    /// aborted.
    ParticipantCrashed {
        /// Index of the shard that crashed.
        shard: u32,
    },
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::NoCommonTimestamp => {
                write!(f, "no common locked timestamp across accessed keys")
            }
            AbortReason::WriteConflict { key } => write!(f, "write conflict on {key}"),
            AbortReason::LockTimeout { key } => write!(f, "lock wait timed out on {key}"),
            AbortReason::VersionPurged { key, below } => {
                write!(f, "needed version of {key} below {below} was purged")
            }
            AbortReason::CommitmentDecidedAbort => {
                write!(f, "commitment object decided abort")
            }
            AbortReason::UserRequested => write!(f, "abort requested by user"),
            AbortReason::IntervalExhausted { key } => {
                write!(f, "candidate timestamp interval exhausted at {key}")
            }
            AbortReason::PrepareTimedOut { shard } => {
                write!(f, "prepare on shard {shard} timed out; presumed abort")
            }
            AbortReason::ParticipantCrashed { shard } => {
                write!(f, "shard {shard} crashed mid-prepare; presumed abort")
            }
        }
    }
}

/// Errors returned by transactional operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// The transaction was aborted for the given reason. After this error the
    /// transaction must not be used further (other than being dropped).
    Aborted(AbortReason),
    /// The operation was applied to a transaction that already finished.
    TransactionFinished,
    /// An engine-specific invariant violation; indicates a bug, not a normal
    /// abort. Carried as a message so it can cross crate boundaries.
    Internal(String),
}

impl TxError {
    /// Convenience constructor for an abort error.
    #[must_use]
    pub fn aborted(reason: AbortReason) -> Self {
        TxError::Aborted(reason)
    }

    /// Returns the abort reason if this error is an abort.
    #[must_use]
    pub fn abort_reason(&self) -> Option<&AbortReason> {
        match self {
            TxError::Aborted(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the error represents a (normal) abort rather than misuse or a bug.
    #[must_use]
    pub fn is_abort(&self) -> bool {
        matches!(self, TxError::Aborted(_))
    }
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Aborted(reason) => write!(f, "transaction aborted: {reason}"),
            TxError::TransactionFinished => {
                write!(f, "operation on a transaction that already finished")
            }
            TxError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl Error for TxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_reason_accessors() {
        let e = TxError::aborted(AbortReason::NoCommonTimestamp);
        assert!(e.is_abort());
        assert_eq!(e.abort_reason(), Some(&AbortReason::NoCommonTimestamp));
        assert!(!TxError::TransactionFinished.is_abort());
        assert_eq!(TxError::Internal("x".into()).abort_reason(), None);
    }

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let reasons = [
            AbortReason::NoCommonTimestamp,
            AbortReason::WriteConflict { key: Key(1) },
            AbortReason::LockTimeout { key: Key(2) },
            AbortReason::VersionPurged {
                key: Key(3),
                below: Timestamp::at(9),
            },
            AbortReason::CommitmentDecidedAbort,
            AbortReason::UserRequested,
            AbortReason::IntervalExhausted { key: Key(4) },
            AbortReason::PrepareTimedOut { shard: 3 },
            AbortReason::ParticipantCrashed { shard: 7 },
        ];
        for r in reasons {
            let s = TxError::aborted(r).to_string();
            assert!(!s.is_empty());
            assert!(s.starts_with("transaction aborted"));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(TxError::TransactionFinished);
        assert!(e.to_string().contains("already finished"));
    }
}
