//! # mvtl-common
//!
//! Shared vocabulary types for the reproduction of *"Locking Timestamps versus
//! Locking Objects"* (Aguilera, David, Guerraoui, Wang — PODC 2018).
//!
//! The paper's central idea is to lock **individual timestamps** of objects
//! instead of whole objects. Everything in this crate exists to make that idea
//! precise and reusable across the rest of the workspace:
//!
//! * [`Timestamp`] — a totally ordered `(value, process)` pair, exactly as in
//!   §4.1 of the paper ("to ensure processes pick distinct timestamps, we add a
//!   process id to a timestamp").
//! * [`TsRange`] and [`TsSet`] — closed intervals of timestamps and sets of such
//!   intervals. These are the *interval compression* of §6: the lock state and
//!   the per-transaction candidate sets (`tx.TS`, `PossTS`) are always stored as
//!   a small number of contiguous intervals rather than per-point state.
//! * [`TxId`], [`ProcessId`], [`Key`] — identifiers.
//! * [`TxError`] / [`AbortReason`] — the error vocabulary shared by every engine.
//! * [`ops`] — the workload model of §2 (sequences of reads/writes/commits
//!   indexed by transaction), used by the verifier and the workload generators.
//! * [`kv`] — the `TransactionalKV` trait implemented by every engine in the
//!   workspace (all MVTL policies, MVTO+, 2PL), so benchmarks, tests and the
//!   serializability checker can drive them uniformly.
//! * [`engine`] — the object-safe [`Engine`] layer over `TransactionalKV`:
//!   boxed [`TxHandle`]s, the RAII [`Transaction`] guard (abort on drop), and
//!   the [`EngineExt::run`] retry loop. `Box<dyn Engine<V>>` is what the
//!   string-spec registry (`mvtl-registry`) hands out and what every consumer
//!   drives.
//! * [`watermark`] — the [`ActiveTxnRegistry`]: in-flight transactions pin the
//!   timestamps they anchor reads on, and its low watermark tells the garbage
//!   collector (`mvtl-gc`) how far state can safely be purged (§6).
//!
//! # Example
//!
//! ```
//! use mvtl_common::{Timestamp, TsRange, TsSet};
//!
//! let t = Timestamp::new(10, 1);
//! let range = TsRange::new(t, Timestamp::new(20, 1));
//! let mut set = TsSet::from_range(range);
//! set.intersect_range(TsRange::new(Timestamp::new(15, 0), Timestamp::MAX));
//! assert!(set.contains(Timestamp::new(16, 3)));
//! assert!(!set.contains(Timestamp::new(10, 1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod error;
pub mod hist;
mod ids;
pub mod kv;
pub mod ops;
mod tempdir;
mod timestamp;
mod tsset;
pub mod watermark;

pub use engine::{Engine, EngineExt, RetryOptions, RunReport, Transaction, TxHandle};
pub use error::{AbortReason, TxError};
pub use ids::{Key, ProcessId, TxId};
pub use kv::{CommitInfo, StoreStats, TransactionalKV, TxOutcome};
pub use tempdir::TempDir;
pub use timestamp::{Timestamp, TsRange};
pub use tsset::TsSet;
pub use watermark::{ActiveTxnRegistry, TxnPin};

/// The status of a transaction, from the point of view of any engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxStatus {
    /// The transaction is executing operations.
    Active,
    /// The transaction committed; it carries the commit timestamp where one
    /// exists (single-version engines such as 2PL report `None`).
    Committed,
    /// The transaction aborted.
    Aborted,
}

impl std::fmt::Display for TxStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxStatus::Active => write!(f, "active"),
            TxStatus::Committed => write!(f, "committed"),
            TxStatus::Aborted => write!(f, "aborted"),
        }
    }
}

/// Lock modes used throughout the workspace.
///
/// The paper's *freezable locks* (§4.2) are readers-writer locks over
/// write-once objects (individual timestamps), so only two modes exist.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum LockMode {
    /// Shared mode: many transactions may hold read locks on the same timestamp.
    Read,
    /// Exclusive mode: at most one transaction may hold the write lock on a
    /// timestamp, and no other transaction may hold a read lock on it.
    Write,
}

impl LockMode {
    /// Whether a lock in mode `self` held by one transaction conflicts with a
    /// request in mode `other` from a *different* transaction.
    #[must_use]
    pub fn conflicts_with(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Write, _) | (_, LockMode::Write))
    }
}

impl std::fmt::Display for LockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockMode::Read => write!(f, "read"),
            LockMode::Write => write!(f, "write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_mode_conflict_matrix() {
        assert!(!LockMode::Read.conflicts_with(LockMode::Read));
        assert!(LockMode::Read.conflicts_with(LockMode::Write));
        assert!(LockMode::Write.conflicts_with(LockMode::Read));
        assert!(LockMode::Write.conflicts_with(LockMode::Write));
    }

    #[test]
    fn tx_status_display() {
        assert_eq!(TxStatus::Active.to_string(), "active");
        assert_eq!(TxStatus::Committed.to_string(), "committed");
        assert_eq!(TxStatus::Aborted.to_string(), "aborted");
    }
}
