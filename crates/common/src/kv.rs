//! The transactional key-value interface implemented by every engine.
//!
//! The paper studies multiversion algorithms "in their broadest scope" (§1); we
//! model the transactional storage system of §2 as a key-value store with
//! `begin` / `read` / `write` / `commit` and drive every concurrency-control
//! engine in the workspace (all MVTL policies, MVTO+, 2PL) through this single
//! trait. That is what lets the workload harness, the serializability checker
//! and the benchmarks compare protocols on identical inputs.

use crate::{AbortReason, Key, ProcessId, Timestamp, TxError, TxId};

/// Aggregate state-size statistics of an engine, used by the Figure 6
/// experiments ("number of locks and versions as time passes") and by the
/// garbage collector's bounded-state checks.
///
/// Engines that have no multiversion state (e.g. single-version 2PL) report
/// the parts they track and leave the rest zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of keys that currently own engine state (cells).
    pub keys: usize,
    /// Total committed versions currently stored.
    pub versions: usize,
    /// Total versions removed by purging so far.
    pub purged_versions: usize,
    /// Total interval lock entries currently stored.
    pub lock_entries: usize,
    /// How many of those lock entries are frozen.
    pub frozen_lock_entries: usize,
}

impl StoreStats {
    /// The resident state an engine accumulates over time: stored versions
    /// plus lock entries. This is the quantity the §6 garbage collector must
    /// keep bounded.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.versions + self.lock_entries
    }

    /// Component-wise sum, for aggregating across shards.
    #[must_use]
    pub fn merge(self, other: StoreStats) -> StoreStats {
        StoreStats {
            keys: self.keys + other.keys,
            versions: self.versions + other.versions,
            purged_versions: self.purged_versions + other.purged_versions,
            lock_entries: self.lock_entries + other.lock_entries,
            frozen_lock_entries: self.frozen_lock_entries + other.frozen_lock_entries,
        }
    }
}

/// Information reported by a successful commit.
///
/// Besides the commit timestamp, engines report the exact versions read and the
/// keys written so that `mvtl-verify` can build the multiversion serialization
/// graph of Appendix A without peeking into engine internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitInfo {
    /// Runtime id of the transaction.
    pub tx: TxId,
    /// Serialization timestamp, when the engine has one (all multiversion
    /// engines do; single-version 2PL reports `None`).
    pub commit_ts: Option<Timestamp>,
    /// For each key read: the timestamp of the version whose value was
    /// returned (`tr` in Algorithm 1). [`Timestamp::ZERO`] denotes the initial
    /// `⊥` version.
    pub reads: Vec<(Key, Timestamp)>,
    /// Keys written by the transaction.
    pub writes: Vec<Key>,
}

impl CommitInfo {
    /// Whether the transaction was read-only.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

/// Outcome of running a whole transaction attempt, used by the workload runner
/// for statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxOutcome {
    /// The attempt committed.
    Committed(CommitInfo),
    /// The attempt aborted for the given reason.
    Aborted(AbortReason),
}

impl TxOutcome {
    /// Whether this outcome is a commit.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        matches!(self, TxOutcome::Committed(_))
    }

    /// The commit info if the outcome is a commit.
    #[must_use]
    pub fn commit_info(&self) -> Option<&CommitInfo> {
        match self {
            TxOutcome::Committed(info) => Some(info),
            TxOutcome::Aborted(_) => None,
        }
    }
}

/// A serializable transactional key-value store.
///
/// All engines in the workspace implement this trait. `V` is the value type;
/// the paper's evaluation uses small strings, the benchmarks here use `u64`.
///
/// This trait has an associated `Txn` type and is therefore not object-safe;
/// it is the surface an *engine author* implements. Consumers (workload
/// runners, the verifier, benchmarks) should program against the object-safe
/// [`Engine`](crate::Engine) layer instead, which every `TransactionalKV`
/// engine gets for free via a blanket impl — see the
/// [`EngineExt::run`](crate::EngineExt::run) retry loop for the idiomatic
/// transfer example.
pub trait TransactionalKV<V>: Send + Sync {
    /// Per-transaction handle.
    type Txn: Send;

    /// Begins a transaction on behalf of `process`, optionally pinning the
    /// clock value the transaction observes.
    ///
    /// Pinning exists so that the verifier can replay the paper's schedules
    /// ("T1 gets timestamp 1, T2 gets timestamp 2, ..."); normal callers use
    /// [`TransactionalKV::begin`].
    fn begin_at(&self, process: ProcessId, pinned: Option<Timestamp>) -> Self::Txn;

    /// Begins a transaction whose timestamp(s) come from the engine's clock.
    fn begin(&self, process: ProcessId) -> Self::Txn {
        self.begin_at(process, None)
    }

    /// Reads `key` within the transaction. Returns `Ok(None)` when the key has
    /// never been written (the initial `⊥` version).
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when the engine decides the transaction
    /// cannot proceed (lock timeout, purged version, ...). After an abort error
    /// the transaction must be passed to [`TransactionalKV::abort`].
    fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<V>, TxError>;

    /// Writes `value` to `key` within the transaction. The write is not visible
    /// to other transactions until commit.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when acquiring write locks eagerly fails
    /// (policies that lock at write time) or when the transaction already
    /// finished.
    fn write(&self, txn: &mut Self::Txn, key: Key, value: V) -> Result<(), TxError>;

    // --- Batched operations -------------------------------------------------
    //
    // The batched surface exists so engines can amortize per-key overhead
    // (latch round-trips, interval negotiation) across a whole multi-key
    // operation. The defaults are plain loops, so every engine keeps working
    // unchanged; engines with a cheaper native path (`MvtlStore`'s sorted
    // deduplicated lock pass, `ShardedStore`'s one-round-per-shard routing)
    // override them.

    /// Reads every key of `keys` within the transaction, returning the values
    /// in input order (`None` for the initial `⊥` version).
    ///
    /// Equivalent to calling [`TransactionalKV::read`] once per key, except
    /// that engines may deduplicate repeated keys (one lock negotiation per
    /// distinct key) and acquire locks in a canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when the engine decides the transaction
    /// cannot proceed; the transaction is aborted in that case, exactly as for
    /// a failing single read.
    fn read_many(&self, txn: &mut Self::Txn, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        keys.iter().map(|key| self.read(txn, *key)).collect()
    }

    /// Writes every `(key, value)` pair of `entries` within the transaction,
    /// in order (for repeated keys the last value wins, as with sequential
    /// writes).
    ///
    /// Equivalent to calling [`TransactionalKV::write`] once per entry, except
    /// that engines may acquire the write locks for the whole batch in one
    /// sorted, deduplicated pass.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when eager lock acquisition fails; the
    /// transaction is aborted in that case.
    fn write_many(&self, txn: &mut Self::Txn, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        for (key, value) in entries {
            self.write(txn, key, value)?;
        }
        Ok(())
    }

    /// Attempts to commit the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when no serialization point could be found;
    /// the transaction is fully cleaned up in that case.
    fn commit(&self, txn: Self::Txn) -> Result<CommitInfo, TxError>;

    /// Aborts the transaction, releasing any state it holds.
    fn abort(&self, txn: Self::Txn);

    /// A short human-readable name for reports ("mvtil-early", "mvto+", "2pl", ...).
    fn name(&self) -> &'static str;

    // --- Maintenance surface (§6 / §8.1: the timestamp service) ------------
    //
    // These default-implemented methods are what a garbage collector needs
    // from an engine. Engines without purgeable state keep the no-op
    // defaults; multiversion engines override all three.

    /// Aggregate state-size statistics (keys, versions, lock entries).
    ///
    /// The default reports all zeros, for engines that track no such state.
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    /// Purges versions and lock state older than `bound`, keeping the most
    /// recent version of each key so that reads at or above `bound` still
    /// succeed (§6). Returns `(versions_removed, lock_entries_removed)`.
    ///
    /// Purging is only *safe* when `bound` does not exceed the engine's
    /// [`low_watermark`](TransactionalKV::low_watermark) (plus any slack the
    /// caller maintains); a transaction that still needs a purged version
    /// aborts with [`AbortReason::VersionPurged`] rather than reading stale
    /// or missing data. The default is a no-op.
    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        let _ = bound;
        (0, 0)
    }

    /// The smallest timestamp any in-flight transaction may still anchor a
    /// read on, or `None` when no transaction is active (or the engine does
    /// not track one). A garbage collector must not purge at or above this
    /// bound without risking `VersionPurged` aborts of live transactions.
    fn low_watermark(&self) -> Option<Timestamp> {
        None
    }

    // --- Recovery surface (durability, `mvtl-wal`) --------------------------

    /// Re-installs one recovered committed transaction's write set, exactly
    /// as it was originally committed.
    ///
    /// This is the replay half of crash recovery: the write-ahead log stores
    /// `(writes, commit_ts)` per committed transaction, and replaying must
    /// install the versions *at their original timestamps* — not through a
    /// fresh transaction whose policy would pick new ones — so that
    /// post-crash reads reference the same `(key, commit_ts)` versions the
    /// pre-crash history committed and the combined history stays checkable
    /// by the multiversion serialization graph. Engines that serialize by
    /// timestamp receive `Some(commit_ts)`; single-version engines receive
    /// `None` and apply the writes in replay (log) order.
    ///
    /// # Errors
    ///
    /// The default returns [`TxError::Internal`]: the engine does not support
    /// recovery, and the registry refuses to build `wal=` specs over it.
    fn recover_install(
        &self,
        writes: Vec<(Key, V)>,
        commit_ts: Option<Timestamp>,
    ) -> Result<(), TxError> {
        let _ = (writes, commit_ts);
        Err(TxError::Internal(format!(
            "engine '{}' does not support WAL recovery",
            self.name()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_info_read_only() {
        let info = CommitInfo {
            tx: TxId(1),
            commit_ts: Some(Timestamp::at(4)),
            reads: vec![(Key(1), Timestamp::ZERO)],
            writes: vec![],
        };
        assert!(info.is_read_only());
        let outcome = TxOutcome::Committed(info.clone());
        assert!(outcome.is_commit());
        assert_eq!(outcome.commit_info(), Some(&info));
        assert!(!TxOutcome::Aborted(AbortReason::UserRequested).is_commit());
        assert!(TxOutcome::Aborted(AbortReason::UserRequested)
            .commit_info()
            .is_none());
    }
}
