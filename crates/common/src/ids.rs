//! Identifier newtypes: transactions, processes and keys.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a transaction.
///
/// Transaction ids are only used to attribute lock ownership and to label
/// vertices of the multiversion serialization graph; they carry no ordering
/// semantics (serialization order is given by commit timestamps).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId(pub u64);

impl TxId {
    /// Allocates a fresh process-wide unique transaction id.
    #[must_use]
    pub fn fresh() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TxId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

impl From<u64> for TxId {
    fn from(v: u64) -> Self {
        TxId(v)
    }
}

/// Identifier of a process (a client thread, or a simulated client).
///
/// Process ids break ties between equal clock values inside [`crate::Timestamp`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ProcessId(pub u32);

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// Key (object identifier) of the transactional store.
///
/// The paper's evaluation uses small 8-character string keys; a 64-bit integer
/// key preserves the access pattern while avoiding allocation on the hot path.
/// Callers with string keys can hash them into a `Key` (see
/// [`Key::from_name`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Key(pub u64);

impl Key {
    /// Builds a key by hashing an arbitrary string name (FNV-1a).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Key(hash)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_tx_ids_are_unique() {
        let ids: HashSet<TxId> = (0..1000).map(|_| TxId::fresh()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn key_from_name_is_deterministic_and_spreads() {
        assert_eq!(Key::from_name("alice"), Key::from_name("alice"));
        assert_ne!(Key::from_name("alice"), Key::from_name("bob"));
        let keys: HashSet<Key> = (0..1000)
            .map(|i| Key::from_name(&format!("key-{i}")))
            .collect();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TxId(7).to_string(), "tx7");
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(Key(9).to_string(), "k9");
    }
}
