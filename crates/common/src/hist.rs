//! An HDR-style log-linear latency histogram with fixed buckets.
//!
//! Values (microseconds in the driver, but the histogram is unit-agnostic)
//! are binned into 32 sub-buckets per power-of-two octave, so every recorded
//! value is represented with at most 1/32 ≈ 3.1% relative error while the
//! whole `u64` range fits in a fixed ~1.9k-bucket table. Recording is O(1)
//! with no allocation; histograms from concurrent workers merge by bucket-wise
//! addition, which is how the open-loop driver aggregates per-connection
//! tails.

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: one linear region of `SUB` buckets for values below
/// `SUB`, then 32 sub-buckets for each octave `[2^m, 2^(m+1))`, m in 5..=63 —
/// 59 octaves plus the linear region.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Maps a value to its bucket index. Exact below `SUB`; above, the bucket
/// spans `2^(m-5)` values where `m` is the value's highest set bit.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS
    let sub = (value >> (msb - SUB_BITS)) & (SUB - 1);
    ((msb - SUB_BITS + 1) as usize) * SUB as usize + sub as usize
}

/// The largest value a bucket covers — quantiles report this bound, so they
/// never understate a tail.
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let msb = index / SUB - 1 + u64::from(SUB_BITS);
    let sub = index % SUB;
    let width = 1u64 << (msb - u64::from(SUB_BITS));
    ((SUB + sub) * width).saturating_add(width - 1)
}

/// A fixed-bucket log-linear histogram; see the module docs.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every recording of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, exact (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound on the smallest
    /// recorded value `v` such that at least `ceil(q · count)` recordings are
    /// ≤ `v`, accurate to the bucket width (≤ 3.2% above `v`, and never
    /// above [`LatencyHistogram::max`]). Returns 0 when empty.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// The median (`p50`).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// The 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// The 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut values: Vec<u64> = (0..4_096).collect();
        for shift in 12..64 {
            let base = 1u64 << shift;
            values.extend([base, base + base / 32, base + base / 2]);
            values.push(base.saturating_add(base - 1));
        }
        values.push(u64::MAX);
        values.sort_unstable();
        let mut last = 0usize;
        for value in values {
            let index = bucket_index(value);
            assert!(index < BUCKETS, "value {value} → index {index}");
            assert!(index >= last, "index must not decrease ({value})");
            last = index;
        }
    }

    #[test]
    fn bucket_upper_bounds_its_members() {
        for value in (0..5_000u64)
            .chain((0..40).map(|s| 1u64 << s))
            .chain([u64::MAX - 1, u64::MAX])
        {
            let upper = bucket_upper(bucket_index(value));
            assert!(upper >= value, "upper {upper} < value {value}");
            // Relative error of the representative is bounded by the bucket
            // width: 1/32 of the value's octave.
            if value >= SUB {
                assert!(
                    (upper - value) as f64 <= value as f64 / 16.0,
                    "value {value} upper {upper}"
                );
            } else {
                assert_eq!(upper, value, "linear region is exact");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut hist = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 31] {
            hist.record(v);
        }
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 31);
        assert_eq!(hist.value_at_quantile(0.0), 0);
        assert_eq!(hist.p50(), 2);
        assert_eq!(hist.value_at_quantile(1.0), 31);
    }

    #[test]
    fn quantiles_track_a_uniform_ramp_within_bucket_error() {
        let mut hist = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            hist.record(v);
        }
        for (q, expected) in [(0.50, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = hist.value_at_quantile(q) as f64;
            assert!(
                got >= expected && got <= expected * 1.04,
                "q={q}: got {got}, expected ~{expected}"
            );
        }
        assert!((hist.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [5u64, 50, 500_000, u64::MAX] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.value_at_quantile(q), whole.value_at_quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.mean(), 0.0);
        assert_eq!(hist.p50(), 0);
        assert_eq!(hist.p999(), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        for value in [0u64, 1, 31, 32, 1_000_003, u64::MAX] {
            let mut hist = LatencyHistogram::new();
            hist.record(value);
            assert_eq!(hist.count(), 1);
            assert_eq!(hist.min(), value);
            assert_eq!(hist.max(), value);
            assert_eq!(hist.mean(), value as f64);
            // Every quantile of a one-sample distribution is that sample —
            // and the max() clamp keeps wide buckets from overstating it.
            for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
                assert_eq!(hist.value_at_quantile(q), value, "value {value} q {q}");
            }
        }
    }

    #[test]
    fn top_octave_saturates_without_overflow_or_wraparound() {
        let mut hist = LatencyHistogram::new();
        // The highest octave: bucket_upper would overflow without its
        // saturating_add; every index must stay inside the fixed table.
        for value in [u64::MAX, u64::MAX - 1, u64::MAX / 2 + 1, 1u64 << 63] {
            assert!(bucket_index(value) < BUCKETS, "value {value} out of table");
            hist.record(value);
        }
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.max(), u64::MAX);
        assert_eq!(hist.value_at_quantile(1.0), u64::MAX);
        assert!(
            hist.p50() >= 1u64 << 63,
            "median collapsed below the octave"
        );
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        // A shape with a long tail: heavy head, sparse spread-out rest.
        let mut hist = LatencyHistogram::new();
        let mut state = 0x9E37_79B9u64;
        for i in 0..10_000u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let value = if i % 10 == 0 {
                state % 1_000_000
            } else {
                state % 200
            };
            hist.record(value);
        }
        let mut last = 0u64;
        for q in (0..=1_000).map(|i| i as f64 / 1_000.0) {
            let v = hist.value_at_quantile(q);
            assert!(v >= last, "quantiles regressed at q={q}: {v} < {last}");
            last = v;
        }
        assert!(hist.p50() <= hist.p99() && hist.p99() <= hist.p999());
        assert!(hist.p999() <= hist.max());
    }

    #[test]
    fn p999_never_exceeds_the_exact_max() {
        let mut hist = LatencyHistogram::new();
        for _ in 0..1_000 {
            hist.record(100);
        }
        hist.record(1_000_003); // a single outlier with a wide bucket
        assert_eq!(hist.p999(), hist.value_at_quantile(0.999));
        assert!(hist.value_at_quantile(1.0) <= hist.max());
        assert_eq!(hist.max(), 1_000_003);
    }
}
