//! The object-safe engine layer: `dyn`-friendly handles over any
//! [`TransactionalKV`] engine.
//!
//! [`TransactionalKV`] has an associated `Txn` type, which makes it precise but
//! not object-safe: every consumer (workload runner, verifier, benchmarks) had
//! to be monomorphized per engine. This module adds the uniform surface the
//! paper's comparisons call for:
//!
//! * [`Engine`] — an object-safe trait whose `begin_handle` returns a boxed
//!   [`TxHandle`]. A blanket impl derives it for **every** `TransactionalKV`
//!   engine, so the MVTL policies, MVTO+ and 2PL all become `Box<dyn Engine<V>>`
//!   for free.
//! * [`Transaction`] — an owned RAII guard around a handle: `read`/`write`/
//!   `commit` methods, and **abort on drop**. Forgetting to abort can no longer
//!   leak lock-table entries.
//! * [`EngineExt`] — ergonomic helpers on any engine (including trait
//!   objects): [`EngineExt::begin`] and the [`EngineExt::run`] retry loop with
//!   seeded exponential backoff that records how many attempts a transaction
//!   needed.
//!
//! The string-spec registry in the `mvtl-registry` crate builds
//! `Box<dyn Engine<V>>` values from specs like `"mvtil-early?delta=1000"`.

use crate::kv::{CommitInfo, StoreStats};
use crate::{Key, ProcessId, Timestamp, TransactionalKV, TxError};
use std::marker::PhantomData;
use std::time::Duration;

/// An in-flight transaction, detached from the engine's concrete `Txn` type.
///
/// Handles are produced by [`Engine::begin_handle`] and are usually consumed
/// through the [`Transaction`] RAII guard rather than directly; `commit` and
/// `abort` take `self: Box<Self>` so that a finished handle cannot be reused.
pub trait TxHandle<V>: Send {
    /// Reads `key` within the transaction. `Ok(None)` is the initial `⊥`
    /// version.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when the engine aborts the transaction;
    /// the handle must then be dropped or passed to [`TxHandle::abort`].
    fn read(&mut self, key: Key) -> Result<Option<V>, TxError>;

    /// Writes `value` to `key` within the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when eager lock acquisition fails.
    fn write(&mut self, key: Key, value: V) -> Result<(), TxError>;

    /// Reads every key of `keys`, returning values in input order.
    ///
    /// The default loops over [`TxHandle::read`]; the blanket impl over
    /// [`TransactionalKV`] forwards to the engine's native
    /// [`read_many`](TransactionalKV::read_many), so batch-aware engines keep
    /// their fast path through the object-safe layer.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when the engine aborts the transaction.
    fn read_many(&mut self, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        keys.iter().map(|key| self.read(*key)).collect()
    }

    /// Writes every `(key, value)` pair of `entries`, in order (last value
    /// wins for repeated keys).
    ///
    /// The default loops over [`TxHandle::write`]; the blanket impl forwards
    /// to the engine's native [`write_many`](TransactionalKV::write_many).
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when eager lock acquisition fails.
    fn write_many(&mut self, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        for (key, value) in entries {
            self.write(key, value)?;
        }
        Ok(())
    }

    /// Attempts to commit the transaction, consuming the handle.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when no serialization point was found; the
    /// transaction is fully cleaned up in that case.
    fn commit(self: Box<Self>) -> Result<CommitInfo, TxError>;

    /// Aborts the transaction, releasing any engine state it holds.
    fn abort(self: Box<Self>);
}

/// An object-safe transactional key-value engine.
///
/// Unlike [`TransactionalKV`] this trait has no associated types, so
/// `Box<dyn Engine<V>>` works and one call site can drive every protocol in
/// the workspace. A blanket impl covers all `TransactionalKV` engines; the
/// convenience methods ([`begin`](EngineExt::begin), [`run`](EngineExt::run))
/// live on [`EngineExt`] so this trait stays object-safe.
///
/// # Example
///
/// The `transfer` pattern, written once against `dyn Engine` and retried
/// through [`EngineExt::run`] until it commits:
///
/// ```
/// # use mvtl_common::{CommitInfo, Key, ProcessId, Timestamp, TransactionalKV, TxError, TxId};
/// # use std::collections::HashMap;
/// # use parking_lot::Mutex;
/// # #[derive(Default)]
/// # struct Toy { data: Mutex<HashMap<Key, u64>> }
/// # struct ToyTxn { reads: Vec<(Key, Timestamp)>, writes: Vec<(Key, u64)> }
/// # impl TransactionalKV<u64> for Toy {
/// #     type Txn = ToyTxn;
/// #     fn begin_at(&self, _p: ProcessId, _t: Option<Timestamp>) -> ToyTxn {
/// #         ToyTxn { reads: Vec::new(), writes: Vec::new() }
/// #     }
/// #     fn read(&self, txn: &mut ToyTxn, key: Key) -> Result<Option<u64>, TxError> {
/// #         txn.reads.push((key, Timestamp::ZERO));
/// #         Ok(txn.writes.iter().rev().find(|(k, _)| *k == key).map(|(_, v)| *v)
/// #             .or_else(|| self.data.lock().get(&key).copied()))
/// #     }
/// #     fn write(&self, txn: &mut ToyTxn, key: Key, value: u64) -> Result<(), TxError> {
/// #         txn.writes.push((key, value));
/// #         Ok(())
/// #     }
/// #     fn commit(&self, txn: ToyTxn) -> Result<CommitInfo, TxError> {
/// #         let mut data = self.data.lock();
/// #         let writes: Vec<Key> = txn.writes.iter().map(|(k, _)| *k).collect();
/// #         for (k, v) in txn.writes { data.insert(k, v); }
/// #         Ok(CommitInfo { tx: TxId(0), commit_ts: None, reads: txn.reads, writes })
/// #     }
/// #     fn abort(&self, _txn: ToyTxn) {}
/// #     fn name(&self) -> &'static str { "toy" }
/// # }
/// use mvtl_common::{Engine, EngineExt, RetryOptions};
///
/// fn transfer(
///     engine: &dyn Engine<u64>,
///     from: Key,
///     to: Key,
///     amount: u64,
/// ) -> Result<u32, TxError> {
///     let report = engine.run(ProcessId(0), &RetryOptions::default(), |tx| {
///         let a = tx.read(from)?.unwrap_or(0);
///         let b = tx.read(to)?.unwrap_or(0);
///         tx.write(from, a.saturating_sub(amount))?;
///         tx.write(to, b + amount)?;
///         Ok(())
///     })?;
///     Ok(report.attempts) // how many tries the retry loop needed
/// }
///
/// let store = Toy::default();
/// let engine: &dyn Engine<u64> = &store; // blanket impl: any TransactionalKV
/// let attempts = transfer(engine, Key(1), Key(2), 10)?;
/// assert_eq!(attempts, 1);
///
/// // A dropped (uncommitted) transaction aborts automatically — RAII.
/// let tx = engine.begin(ProcessId(1));
/// drop(tx);
/// # Ok::<(), TxError>(())
/// ```
pub trait Engine<V>: Send + Sync {
    /// Begins a transaction on behalf of `process`, optionally pinning the
    /// clock value it observes (used by the verifier to replay the paper's
    /// pinned-timestamp schedules).
    fn begin_handle(
        &self,
        process: ProcessId,
        pinned: Option<Timestamp>,
    ) -> Box<dyn TxHandle<V> + '_>;

    /// A short human-readable engine name ("mvtil-early", "mvto+", "2pl", ...).
    ///
    /// The `mvtl-registry` crate guarantees that this matches the base name of
    /// the spec the engine was built from.
    fn name(&self) -> &'static str;

    // --- Maintenance surface (§6 / §8.1) ------------------------------------
    //
    // Mirrors [`TransactionalKV`]'s maintenance methods through the
    // object-safe layer, so a garbage collector (`mvtl-gc`) can drive any
    // `dyn Engine<V>` without knowing the concrete store type. The blanket
    // impl forwards to the engine's `TransactionalKV` implementation.

    /// Aggregate state-size statistics (keys, versions, lock entries).
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    /// Purges versions and lock state older than `bound` (§6). Returns
    /// `(versions_removed, lock_entries_removed)`. Safe only at or below
    /// [`Engine::low_watermark`] (plus caller-maintained slack); transactions
    /// that still need purged state abort with `VersionPurged`.
    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        let _ = bound;
        (0, 0)
    }

    /// The smallest timestamp any in-flight transaction may still anchor a
    /// read on, or `None` when no transaction is active (or untracked).
    fn low_watermark(&self) -> Option<Timestamp> {
        None
    }

    /// Re-installs one recovered committed write set at its original commit
    /// timestamp (see [`TransactionalKV::recover_install`]); the WAL replay
    /// path drives `dyn Engine<V>` through this mirror. The default refuses.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Internal`] when the engine does not support
    /// recovery.
    fn recover_install(
        &self,
        writes: Vec<(Key, V)>,
        commit_ts: Option<Timestamp>,
    ) -> Result<(), TxError> {
        let _ = (writes, commit_ts);
        Err(TxError::Internal(format!(
            "engine '{}' does not support WAL recovery",
            self.name()
        )))
    }
}

/// Adapter giving every [`TransactionalKV`] engine the object-safe [`Engine`]
/// surface: the handle pairs the store reference with the concrete `Txn`.
struct KvHandle<'a, V, S: TransactionalKV<V>> {
    store: &'a S,
    txn: S::Txn,
    _values: PhantomData<fn() -> V>,
}

impl<V, S: TransactionalKV<V>> TxHandle<V> for KvHandle<'_, V, S> {
    fn read(&mut self, key: Key) -> Result<Option<V>, TxError> {
        self.store.read(&mut self.txn, key)
    }

    fn write(&mut self, key: Key, value: V) -> Result<(), TxError> {
        self.store.write(&mut self.txn, key, value)
    }

    fn read_many(&mut self, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        self.store.read_many(&mut self.txn, keys)
    }

    fn write_many(&mut self, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        self.store.write_many(&mut self.txn, entries)
    }

    fn commit(self: Box<Self>) -> Result<CommitInfo, TxError> {
        self.store.commit(self.txn)
    }

    fn abort(self: Box<Self>) {
        self.store.abort(self.txn);
    }
}

impl<V, S> Engine<V> for S
where
    V: 'static,
    S: TransactionalKV<V>,
    S::Txn: 'static,
{
    fn begin_handle(
        &self,
        process: ProcessId,
        pinned: Option<Timestamp>,
    ) -> Box<dyn TxHandle<V> + '_> {
        Box::new(KvHandle {
            store: self,
            txn: self.begin_at(process, pinned),
            _values: PhantomData,
        })
    }

    fn name(&self) -> &'static str {
        TransactionalKV::name(self)
    }

    fn stats(&self) -> StoreStats {
        TransactionalKV::stats(self)
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        TransactionalKV::purge_below(self, bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        TransactionalKV::low_watermark(self)
    }

    fn recover_install(
        &self,
        writes: Vec<(Key, V)>,
        commit_ts: Option<Timestamp>,
    ) -> Result<(), TxError> {
        TransactionalKV::recover_install(self, writes, commit_ts)
    }
}

/// An owned transaction guard that **aborts on drop**.
///
/// Obtained from [`EngineExt::begin`] (or [`Transaction::from_handle`]).
/// Dropping a guard that was neither committed nor explicitly aborted calls
/// the engine's abort path, releasing lock-table entries — a forgotten abort
/// can no longer leak engine state.
pub struct Transaction<'e, V> {
    handle: Option<Box<dyn TxHandle<V> + 'e>>,
}

impl<'e, V> Transaction<'e, V> {
    /// Wraps a raw handle in the RAII guard.
    #[must_use]
    pub fn from_handle(handle: Box<dyn TxHandle<V> + 'e>) -> Self {
        Transaction {
            handle: Some(handle),
        }
    }

    fn handle_mut(&mut self) -> &mut (dyn TxHandle<V> + 'e) {
        self.handle
            .as_deref_mut()
            .expect("transaction handle present until commit/abort")
    }

    /// Reads `key` within the transaction. `Ok(None)` is the initial `⊥`
    /// version.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when the engine aborts the transaction;
    /// the guard should then be dropped (which releases engine state).
    pub fn read(&mut self, key: Key) -> Result<Option<V>, TxError> {
        self.handle_mut().read(key)
    }

    /// Writes `value` to `key` within the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when eager lock acquisition fails.
    pub fn write(&mut self, key: Key, value: V) -> Result<(), TxError> {
        self.handle_mut().write(key, value)
    }

    /// Reads every key of `keys` in one batched operation, returning the
    /// values in input order. Batch-aware engines deduplicate repeated keys
    /// and acquire their locks in one sorted pass.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when the engine aborts the transaction;
    /// the guard should then be dropped (which releases engine state).
    pub fn read_many(&mut self, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        self.handle_mut().read_many(keys)
    }

    /// Writes every `(key, value)` pair of `entries` in one batched operation
    /// (last value wins for repeated keys, as with sequential writes).
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when eager lock acquisition fails.
    pub fn write_many(&mut self, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        self.handle_mut().write_many(entries)
    }

    /// Attempts to commit, consuming the guard.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when no serialization point was found; the
    /// engine has fully cleaned up the transaction in that case.
    pub fn commit(mut self) -> Result<CommitInfo, TxError> {
        self.handle
            .take()
            .expect("transaction handle present until commit/abort")
            .commit()
    }

    /// Aborts explicitly, consuming the guard. Equivalent to dropping it.
    pub fn abort(mut self) {
        if let Some(handle) = self.handle.take() {
            handle.abort();
        }
    }
}

impl<V> Drop for Transaction<'_, V> {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.abort();
        }
    }
}

impl<V> std::fmt::Debug for Transaction<'_, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("open", &self.handle.is_some())
            .finish()
    }
}

/// Options of the [`EngineExt::run`] retry loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryOptions {
    /// Maximum transaction attempts before giving up (at least 1).
    pub max_attempts: u32,
    /// Base backoff slept after the first failed attempt; doubles every
    /// further attempt. [`Duration::ZERO`] disables sleeping.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream (half to full backoff).
    pub seed: u64,
}

impl Default for RetryOptions {
    fn default() -> Self {
        RetryOptions {
            max_attempts: 16,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryOptions {
    /// Returns options with the given attempt budget.
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Returns options with the given jitter seed, for reproducible runs.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns options that never sleep between attempts (for tests and
    /// single-threaded replays).
    #[must_use]
    pub fn without_backoff(mut self) -> Self {
        self.base_backoff = Duration::ZERO;
        self
    }
}

/// The result of a successful [`EngineExt::run`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport<T> {
    /// Value returned by the transaction body on the committing attempt.
    pub value: T,
    /// Commit information reported by the engine.
    pub info: CommitInfo,
    /// Number of attempts the transaction needed (1 = first try).
    pub attempts: u32,
}

/// SplitMix64 step — a tiny deterministic stream for backoff jitter, so
/// `mvtl-common` needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn backoff_duration(options: &RetryOptions, attempt: u32, jitter: &mut u64) -> Duration {
    if options.base_backoff.is_zero() {
        return Duration::ZERO;
    }
    let exp = attempt.saturating_sub(1).min(20);
    let raw = options
        .base_backoff
        .saturating_mul(1u32 << exp)
        .min(options.max_backoff);
    let nanos = raw.as_nanos().min(u128::from(u64::MAX)) as u64;
    // Jitter into [nanos/2, nanos] to decorrelate contending clients.
    let jittered = nanos / 2 + splitmix64(jitter) % (nanos / 2 + 1);
    Duration::from_nanos(jittered)
}

/// Ergonomic helpers available on every engine, **including trait objects**
/// (`Box<dyn Engine<V>>`, `&dyn Engine<V>`). Blanket-implemented; never used
/// as a trait object itself, which is what lets its methods be generic.
pub trait EngineExt<V>: Engine<V> {
    /// Begins a transaction guarded by the RAII [`Transaction`] wrapper.
    ///
    /// Note for engine authors: on a *concrete* store type this method shares
    /// its name with [`TransactionalKV::begin`], so a module that imports both
    /// traits must disambiguate (`EngineExt::begin(&store, ..)`) or coerce to
    /// `&dyn Engine<V>` first. Consumers of the dyn layer — the normal case —
    /// never hit this, because `dyn Engine<V>` does not implement
    /// `TransactionalKV`.
    fn begin(&self, process: ProcessId) -> Transaction<'_, V> {
        Transaction::from_handle(self.begin_handle(process, None))
    }

    /// Begins a transaction pinned to a specific clock reading (for schedule
    /// replays).
    fn begin_pinned(&self, process: ProcessId, pinned: Timestamp) -> Transaction<'_, V> {
        Transaction::from_handle(self.begin_handle(process, Some(pinned)))
    }

    /// Runs `body` inside a transaction, retrying aborted attempts with seeded
    /// exponential backoff until it commits or the attempt budget is spent.
    ///
    /// The attempt count is recorded in the returned [`RunReport`]. Abort
    /// errors (from the body or from commit) trigger a retry; any other error
    /// is returned immediately. A failed attempt's transaction is dropped,
    /// which aborts it (RAII).
    ///
    /// # Errors
    ///
    /// Returns the last abort error once `max_attempts` attempts all aborted,
    /// or the first non-abort error the body/commit produced.
    fn run<T, F>(
        &self,
        process: ProcessId,
        options: &RetryOptions,
        mut body: F,
    ) -> Result<RunReport<T>, TxError>
    where
        F: FnMut(&mut Transaction<'_, V>) -> Result<T, TxError>,
    {
        let mut jitter = options.seed;
        let mut last = TxError::aborted(crate::AbortReason::UserRequested);
        let budget = options.max_attempts.max(1);
        for attempt in 1..=budget {
            let mut tx = self.begin(process);
            match body(&mut tx) {
                Ok(value) => match tx.commit() {
                    Ok(info) => {
                        return Ok(RunReport {
                            value,
                            info,
                            attempts: attempt,
                        })
                    }
                    Err(err) if err.is_abort() => last = err,
                    Err(err) => return Err(err),
                },
                Err(err) if err.is_abort() => {
                    drop(tx); // RAII abort releases the attempt's locks.
                    last = err;
                }
                Err(err) => return Err(err),
            }
            if attempt < budget {
                let pause = backoff_duration(options, attempt, &mut jitter);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
        }
        Err(last)
    }
}

impl<V, E: Engine<V> + ?Sized> EngineExt<V> for E {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbortReason, TxId};
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deliberately simple engine: no concurrency control, but it counts
    /// begin/commit/abort calls so the RAII and retry plumbing can be checked
    /// without pulling real engines into `mvtl-common`.
    #[derive(Default)]
    struct CountingStore {
        data: Mutex<HashMap<Key, u64>>,
        begins: AtomicU64,
        commits: AtomicU64,
        aborts: AtomicU64,
        /// Abort the first N commit attempts, to exercise the retry loop.
        fail_commits: AtomicU64,
    }

    struct CountingTxn {
        reads: Vec<(Key, Timestamp)>,
        writes: Vec<(Key, u64)>,
    }

    impl TransactionalKV<u64> for CountingStore {
        type Txn = CountingTxn;

        fn begin_at(&self, _process: ProcessId, _pinned: Option<Timestamp>) -> Self::Txn {
            self.begins.fetch_add(1, Ordering::Relaxed);
            CountingTxn {
                reads: Vec::new(),
                writes: Vec::new(),
            }
        }

        fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<u64>, TxError> {
            txn.reads.push((key, Timestamp::ZERO));
            Ok(txn
                .writes
                .iter()
                .rev()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .or_else(|| self.data.lock().get(&key).copied()))
        }

        fn write(&self, txn: &mut Self::Txn, key: Key, value: u64) -> Result<(), TxError> {
            txn.writes.push((key, value));
            Ok(())
        }

        fn commit(&self, txn: Self::Txn) -> Result<CommitInfo, TxError> {
            if self
                .fail_commits
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
            }
            self.commits.fetch_add(1, Ordering::Relaxed);
            let mut data = self.data.lock();
            let writes: Vec<Key> = txn.writes.iter().map(|(k, _)| *k).collect();
            for (k, v) in txn.writes {
                data.insert(k, v);
            }
            Ok(CommitInfo {
                tx: TxId(0),
                commit_ts: None,
                reads: txn.reads,
                writes,
            })
        }

        fn abort(&self, _txn: Self::Txn) {
            self.aborts.fetch_add(1, Ordering::Relaxed);
        }

        fn name(&self) -> &'static str {
            "counting"
        }
    }

    fn engine(store: &CountingStore) -> &dyn Engine<u64> {
        store
    }

    #[test]
    fn blanket_impl_provides_the_dyn_surface() {
        let store = CountingStore::default();
        let e = engine(&store);
        assert_eq!(e.name(), "counting");
        let mut tx = e.begin(ProcessId(1));
        tx.write(Key(1), 5).unwrap();
        assert_eq!(tx.read(Key(1)).unwrap(), Some(5));
        let info = tx.commit().unwrap();
        assert_eq!(info.writes, vec![Key(1)]);
        assert_eq!(store.commits.load(Ordering::Relaxed), 1);
        assert_eq!(store.aborts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn batched_defaults_loop_through_the_dyn_surface() {
        let store = CountingStore::default();
        let e = engine(&store);
        let mut tx = e.begin(ProcessId(1));
        tx.write_many(vec![(Key(1), 10), (Key(2), 20), (Key(1), 11)])
            .unwrap();
        assert_eq!(
            tx.read_many(&[Key(2), Key(1), Key(3)]).unwrap(),
            vec![Some(20), Some(11), None]
        );
        let info = tx.commit().unwrap();
        assert_eq!(info.writes, vec![Key(1), Key(2), Key(1)]);
        // And the committed values are visible to a fresh transaction.
        let mut tx = e.begin(ProcessId(2));
        assert_eq!(
            tx.read_many(&[Key(1), Key(2)]).unwrap(),
            vec![Some(11), Some(20)]
        );
    }

    #[test]
    fn dropping_an_uncommitted_transaction_aborts_it() {
        let store = CountingStore::default();
        {
            let mut tx = engine(&store).begin(ProcessId(1));
            tx.write(Key(1), 5).unwrap();
            // No commit: the guard must abort on drop.
        }
        assert_eq!(store.aborts.load(Ordering::Relaxed), 1);
        assert_eq!(store.commits.load(Ordering::Relaxed), 0);
        // And the write is invisible.
        let mut tx = engine(&store).begin(ProcessId(2));
        assert_eq!(tx.read(Key(1)).unwrap(), None);
    }

    #[test]
    fn explicit_abort_consumes_the_guard_once() {
        let store = CountingStore::default();
        let tx = engine(&store).begin(ProcessId(1));
        tx.abort();
        assert_eq!(store.aborts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn commit_does_not_double_abort() {
        let store = CountingStore::default();
        let mut tx = engine(&store).begin(ProcessId(1));
        tx.write(Key(9), 1).unwrap();
        tx.commit().unwrap();
        assert_eq!(store.aborts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn run_commits_on_first_attempt() {
        let store = CountingStore::default();
        let report = engine(&store)
            .run(ProcessId(1), &RetryOptions::default(), |tx| {
                tx.write(Key(1), 10)?;
                tx.read(Key(1))
            })
            .unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.value, Some(10));
        assert_eq!(report.info.writes, vec![Key(1)]);
    }

    #[test]
    fn run_retries_aborted_commits_and_records_attempts() {
        let store = CountingStore::default();
        store.fail_commits.store(2, Ordering::Relaxed);
        let options = RetryOptions::default().without_backoff().with_seed(7);
        let report = engine(&store)
            .run(ProcessId(1), &options, |tx| tx.write(Key(3), 1))
            .unwrap();
        assert_eq!(report.attempts, 3);
        assert_eq!(store.begins.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_gives_up_after_the_attempt_budget() {
        let store = CountingStore::default();
        store.fail_commits.store(u64::MAX, Ordering::Relaxed);
        let options = RetryOptions::default()
            .without_backoff()
            .with_max_attempts(4);
        let err = engine(&store)
            .run(ProcessId(1), &options, |tx| tx.write(Key(3), 1))
            .unwrap_err();
        assert!(err.is_abort());
        assert_eq!(store.begins.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn run_propagates_non_abort_errors_immediately() {
        let store = CountingStore::default();
        let err = engine(&store)
            .run(ProcessId(1), &RetryOptions::default(), |_tx| {
                Err::<(), _>(TxError::Internal("bug".into()))
            })
            .unwrap_err();
        assert_eq!(err, TxError::Internal("bug".into()));
        // The failed attempt's transaction was aborted via RAII.
        assert_eq!(store.aborts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_retries_body_aborts() {
        let store = CountingStore::default();
        let mut first = true;
        let options = RetryOptions::default().without_backoff();
        let report = engine(&store)
            .run(ProcessId(1), &options, |tx| {
                if std::mem::take(&mut first) {
                    return Err(TxError::aborted(AbortReason::WriteConflict { key: Key(1) }));
                }
                tx.write(Key(1), 2)
            })
            .unwrap();
        assert_eq!(report.attempts, 2);
        assert_eq!(store.aborts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let options = RetryOptions {
            max_attempts: 8,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
            seed: 42,
        };
        let mut jitter_a = options.seed;
        let mut jitter_b = options.seed;
        for attempt in 1..=8 {
            let a = backoff_duration(&options, attempt, &mut jitter_a);
            let b = backoff_duration(&options, attempt, &mut jitter_b);
            assert_eq!(a, b, "same seed must give the same pause");
            assert!(a <= options.max_backoff);
            let cap = options
                .base_backoff
                .saturating_mul(1 << (attempt - 1))
                .min(options.max_backoff);
            assert!(a >= cap / 2, "jitter stays in the upper half");
        }
        // Zero base backoff disables sleeping entirely.
        let mut jitter = 1;
        assert_eq!(
            backoff_duration(&RetryOptions::default().without_backoff(), 3, &mut jitter),
            Duration::ZERO
        );
    }
}
