//! The active-transaction watermark: the piece of the paper's §6 timestamp
//! service that lives *inside* an engine.
//!
//! §6 argues MVTL is practical because old versions and locks can be purged
//! once no transaction can ever need them again. A purge bound is safe when it
//! lies at or below the lowest timestamp any in-flight transaction may still
//! anchor a read on. [`ActiveTxnRegistry`] tracks exactly that: `begin`
//! registers the transaction's pinned/anchor timestamp, commit/abort
//! deregisters it, and [`ActiveTxnRegistry::low_watermark`] reports the
//! minimum over all registered pins. A garbage collector (`mvtl-gc`) purges
//! below `min(low_watermark, now − gc_lag)`, so it never removes a version an
//! active transaction has anchored.

use crate::Timestamp;
use parking_lot::Mutex;

/// A ticket returned by [`ActiveTxnRegistry::register`]; hand it back to
/// [`ActiveTxnRegistry::deregister`] when the transaction finishes.
///
/// Deregistration is idempotent: handing the same pin back twice (e.g. from a
/// cloned transaction state) removes the entry once and is then a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnPin {
    ts: Timestamp,
    slot: usize,
    seq: u64,
}

impl TxnPin {
    /// The pinned timestamp this ticket protects from purging.
    #[must_use]
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }
}

/// A registry of in-flight transactions and the timestamps they anchor on.
///
/// Internally a slab of pinned timestamps with a free list: registration and
/// deregistration reuse slots, so the steady state of a running workload
/// (`begin`/`commit` per transaction) touches no allocator — the slab's
/// capacity is bounded by the maximum number of *concurrent* transactions,
/// never by history. The watermark query scans the live slots, which is
/// cheap at realistic concurrency and runs only on the GC cadence.
#[derive(Debug)]
pub struct ActiveTxnRegistry {
    inner: Mutex<RegistryInner>,
}

impl Default for ActiveTxnRegistry {
    fn default() -> Self {
        ActiveTxnRegistry {
            inner: Mutex::named("common.active_txns", 70, RegistryInner::default()),
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    /// `Some((ts, seq))` per live pin; `None` slots are recycled via `free`.
    /// The `seq` disambiguates reuse so a stale pin cannot evict a successor.
    slots: Vec<Option<(Timestamp, u64)>>,
    free: Vec<usize>,
    live: usize,
    next_seq: u64,
}

impl ActiveTxnRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        ActiveTxnRegistry::default()
    }

    /// Registers an in-flight transaction pinned at `ts`: no purge bound
    /// above `ts` is safe until the returned pin is deregistered.
    #[must_use]
    pub fn register(&self, ts: Timestamp) -> TxnPin {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq = inner.next_seq.wrapping_add(1);
        inner.live += 1;
        let slot = match inner.free.pop() {
            Some(slot) => {
                inner.slots[slot] = Some((ts, seq));
                slot
            }
            None => {
                inner.slots.push(Some((ts, seq)));
                inner.slots.len() - 1
            }
        };
        TxnPin { ts, slot, seq }
    }

    /// Deregisters a finished transaction. Idempotent.
    pub fn deregister(&self, pin: TxnPin) {
        let mut inner = self.inner.lock();
        if inner.slots.get(pin.slot).copied().flatten() == Some((pin.ts, pin.seq)) {
            inner.slots[pin.slot] = None;
            inner.free.push(pin.slot);
            inner.live -= 1;
        }
    }

    /// The smallest pinned timestamp among active transactions, or `None`
    /// when no transaction is in flight (any lag-derived bound is then safe).
    #[must_use]
    pub fn low_watermark(&self) -> Option<Timestamp> {
        let inner = self.inner.lock();
        inner.slots.iter().flatten().map(|(ts, _)| *ts).min()
    }

    /// Number of transactions currently registered.
    #[must_use]
    pub fn active_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::at(v)
    }

    #[test]
    fn watermark_is_the_minimum_active_pin() {
        let reg = ActiveTxnRegistry::new();
        assert_eq!(reg.low_watermark(), None);
        let a = reg.register(ts(10));
        let b = reg.register(ts(5));
        let c = reg.register(ts(20));
        assert_eq!(reg.low_watermark(), Some(ts(5)));
        assert_eq!(reg.active_count(), 3);
        reg.deregister(b);
        assert_eq!(reg.low_watermark(), Some(ts(10)));
        reg.deregister(a);
        reg.deregister(c);
        assert_eq!(reg.low_watermark(), None);
        assert_eq!(reg.active_count(), 0);
    }

    #[test]
    fn equal_timestamps_are_tracked_as_a_multiset() {
        let reg = ActiveTxnRegistry::new();
        let a = reg.register(ts(7));
        let b = reg.register(ts(7));
        reg.deregister(a);
        // The second pin at the same timestamp still holds the watermark.
        assert_eq!(reg.low_watermark(), Some(ts(7)));
        reg.deregister(b);
        assert_eq!(reg.low_watermark(), None);
    }

    #[test]
    fn deregister_is_idempotent() {
        let reg = ActiveTxnRegistry::new();
        let a = reg.register(ts(3));
        let b = reg.register(ts(3));
        reg.deregister(a);
        reg.deregister(a);
        assert_eq!(reg.active_count(), 1);
        assert_eq!(reg.low_watermark(), Some(ts(3)));
        reg.deregister(b);
    }

    #[test]
    fn concurrent_register_deregister_keeps_consistent_counts() {
        use std::sync::Arc;
        let reg = Arc::new(ActiveTxnRegistry::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let pin = reg.register(ts(t * 1_000 + i));
                        let _ = reg.low_watermark();
                        reg.deregister(pin);
                    }
                });
            }
        });
        assert_eq!(reg.active_count(), 0);
        assert_eq!(reg.low_watermark(), None);
    }
}
