//! The workload model of §2: sequences of operations indexed by transaction.
//!
//! A *workload* "is a sequence of operations indexed by the transaction they
//! belong to, where each operation is `read(k)`, `write(k, v)` or `commit`".
//! The verifier uses workloads to compare how different protocols react to the
//! same inputs (e.g. Theorem 2's comparison of MVTL-Pref and MVTO+), and the
//! workload generators produce them from statistical parameters.

use crate::{Key, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Index of a transaction inside a [`Workload`] (not a runtime [`crate::TxId`]).
pub type WorkloadTxIndex = usize;

/// A single operation of a workload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Read key `k` within the transaction.
    Read(Key),
    /// Write value `v` to key `k` within the transaction.
    Write(Key, u64),
    /// Try to commit the transaction.
    Commit,
    /// Abort the transaction voluntarily.
    Abort,
}

impl Op {
    /// The key accessed by this operation, if any.
    #[must_use]
    pub fn key(&self) -> Option<Key> {
        match self {
            Op::Read(k) | Op::Write(k, _) => Some(*k),
            Op::Commit | Op::Abort => None,
        }
    }

    /// Whether this operation is a write.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write(..))
    }

    /// Whether this operation is a read.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read(_))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(k) => write!(f, "R({k})"),
            Op::Write(k, v) => write!(f, "W({k}={v})"),
            Op::Commit => write!(f, "C"),
            Op::Abort => write!(f, "A"),
        }
    }
}

/// One step of an interleaved workload: which transaction performs which
/// operation, in global order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadStep {
    /// Index of the transaction performing the operation.
    pub tx: WorkloadTxIndex,
    /// The operation performed.
    pub op: Op,
}

/// A workload: a global sequence of steps plus, optionally, a fixed timestamp
/// per transaction.
///
/// Fixed timestamps model the paper's schedules where "T1 gets timestamp 1, T2
/// gets timestamp 2, ..." — the serial-abort and ghost-abort examples of §5.3
/// and §5.5 only arise under specific timestamp assignments, so replaying them
/// requires pinning the clock readings each transaction observes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Global interleaving of operations.
    pub steps: Vec<WorkloadStep>,
    /// Optional pinned start timestamps: `timestamps[i]` is the clock value
    /// transaction `i` observes when it begins. Missing entries (or `None`)
    /// mean "let the engine's clock decide".
    pub pinned_timestamps: Vec<Option<Timestamp>>,
}

impl Workload {
    /// Creates an empty workload.
    #[must_use]
    pub fn new() -> Self {
        Workload::default()
    }

    /// Appends a step for transaction `tx`.
    pub fn push(&mut self, tx: WorkloadTxIndex, op: Op) -> &mut Self {
        self.steps.push(WorkloadStep { tx, op });
        self
    }

    /// Pins the begin timestamp of transaction `tx`.
    pub fn pin_timestamp(&mut self, tx: WorkloadTxIndex, ts: Timestamp) -> &mut Self {
        if self.pinned_timestamps.len() <= tx {
            self.pinned_timestamps.resize(tx + 1, None);
        }
        self.pinned_timestamps[tx] = Some(ts);
        self
    }

    /// The pinned timestamp for transaction `tx`, if any.
    #[must_use]
    pub fn pinned_timestamp(&self, tx: WorkloadTxIndex) -> Option<Timestamp> {
        self.pinned_timestamps.get(tx).copied().flatten()
    }

    /// Number of distinct transactions mentioned by the workload.
    #[must_use]
    pub fn transaction_count(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.tx + 1)
            .max()
            .unwrap_or(0)
            .max(self.pinned_timestamps.len())
    }

    /// All keys touched by the workload.
    #[must_use]
    pub fn keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.steps.iter().filter_map(|s| s.op.key()).collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Whether the workload is *serial*: every transaction's operations form a
    /// contiguous block ending with commit/abort before the next transaction
    /// starts. Used by the serial-abort checks (Theorem 4).
    #[must_use]
    pub fn is_serial(&self) -> bool {
        let mut finished: HashSet<WorkloadTxIndex> = HashSet::new();
        let mut current: Option<WorkloadTxIndex> = None;
        for step in &self.steps {
            if finished.contains(&step.tx) {
                return false;
            }
            match current {
                None => current = Some(step.tx),
                Some(cur) if cur != step.tx => return false,
                Some(_) => {}
            }
            if matches!(step.op, Op::Commit | Op::Abort) {
                finished.insert(step.tx);
                current = None;
            }
        }
        true
    }

    /// Renders the workload as one line per transaction, in the style of the
    /// paper's schedule diagrams. Each step occupies one 10-character column.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        const COL: usize = 10;
        let n = self.transaction_count();
        let mut lines = vec![String::new(); n];
        for (col, step) in self.steps.iter().enumerate() {
            let line = &mut lines[step.tx];
            // Pad the owning row out to this step's column; all other rows
            // stay short until their transaction acts again.
            let target = col * COL;
            if line.len() < target {
                line.extend(std::iter::repeat_n(' ', target - line.len()));
            }
            let _ = write!(line, "{:<COL$}", step.op);
        }
        lines
            .into_iter()
            .enumerate()
            .map(|(i, l)| format!("T{i}: {}", l.trim_end()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Key {
        Key(v)
    }

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Read(k(1)).key(), Some(k(1)));
        assert_eq!(Op::Write(k(2), 9).key(), Some(k(2)));
        assert_eq!(Op::Commit.key(), None);
        assert!(Op::Write(k(2), 9).is_write());
        assert!(Op::Read(k(2)).is_read());
        assert!(!Op::Commit.is_read());
    }

    #[test]
    fn workload_building_and_counts() {
        let mut w = Workload::new();
        w.push(0, Op::Read(k(1)))
            .push(1, Op::Write(k(1), 5))
            .push(0, Op::Commit)
            .push(1, Op::Commit);
        w.pin_timestamp(0, Timestamp::at(2));
        assert_eq!(w.transaction_count(), 2);
        assert_eq!(w.keys(), vec![k(1)]);
        assert_eq!(w.pinned_timestamp(0), Some(Timestamp::at(2)));
        assert_eq!(w.pinned_timestamp(1), None);
    }

    #[test]
    fn serial_detection() {
        let mut serial = Workload::new();
        serial
            .push(0, Op::Read(k(1)))
            .push(0, Op::Commit)
            .push(1, Op::Write(k(1), 2))
            .push(1, Op::Commit);
        assert!(serial.is_serial());

        let mut interleaved = Workload::new();
        interleaved
            .push(0, Op::Read(k(1)))
            .push(1, Op::Write(k(1), 2))
            .push(0, Op::Commit)
            .push(1, Op::Commit);
        assert!(!interleaved.is_serial());

        let mut revisits = Workload::new();
        revisits
            .push(0, Op::Commit)
            .push(1, Op::Commit)
            .push(0, Op::Read(k(1)));
        assert!(!revisits.is_serial());
    }

    #[test]
    fn render_contains_all_ops() {
        let mut w = Workload::new();
        w.push(1, Op::Read(k(7))).push(0, Op::Write(k(7), 3));
        let s = w.render();
        assert!(s.contains("R(k7)"));
        assert!(s.contains("W(k7=3)"));
        assert!(s.contains("T0:"));
        assert!(s.contains("T1:"));
    }

    #[test]
    fn empty_workload() {
        let w = Workload::new();
        assert_eq!(w.transaction_count(), 0);
        assert!(w.keys().is_empty());
        assert!(w.is_serial());
    }
}
