//! Timestamps and closed timestamp ranges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A timestamp: a `(value, process)` pair ordered lexicographically.
///
/// This follows §4.1 of the paper: "to ensure processes pick distinct
/// timestamps, we add a process id to a timestamp; thus, a timestamp is a pair
/// `(v, p)` ordered lexicographically". The `value` component is the clock
/// reading and the `process` component disambiguates ties.
///
/// Two distinguished timestamps exist:
///
/// * [`Timestamp::ZERO`] — the smallest timestamp, carrying the initial `⊥`
///   version of every key.
/// * [`Timestamp::MAX`] — the representation of the `+∞` bound used by the
///   pessimistic and prioritizer policies ("write-lock all the possible
///   timestamps", Algorithms 6 and 9).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Timestamp {
    /// Clock value (most significant component of the order).
    pub value: u64,
    /// Process identifier used as the tie-breaker.
    pub process: u32,
}

impl Timestamp {
    /// The smallest timestamp; `Values[k, ZERO] = ⊥` initially for every key.
    pub const ZERO: Timestamp = Timestamp {
        value: 0,
        process: 0,
    };

    /// The largest representable timestamp, standing in for `+∞`.
    pub const MAX: Timestamp = Timestamp {
        value: u64::MAX,
        process: u32::MAX,
    };

    /// Creates a timestamp from a clock value and a process id.
    #[must_use]
    pub const fn new(value: u64, process: u32) -> Self {
        Timestamp { value, process }
    }

    /// Creates a timestamp with process id 0; convenient in tests and examples.
    #[must_use]
    pub const fn at(value: u64) -> Self {
        Timestamp { value, process: 0 }
    }

    /// The immediate successor in the total order (the paper's `t + 1`).
    ///
    /// Saturates at [`Timestamp::MAX`].
    #[must_use]
    pub fn succ(self) -> Self {
        if self == Timestamp::MAX {
            return Timestamp::MAX;
        }
        if self.process == u32::MAX {
            Timestamp {
                value: self.value + 1,
                process: 0,
            }
        } else {
            Timestamp {
                value: self.value,
                process: self.process + 1,
            }
        }
    }

    /// The immediate predecessor in the total order (the paper's `t - 1`).
    ///
    /// Saturates at [`Timestamp::ZERO`].
    #[must_use]
    pub fn pred(self) -> Self {
        if self == Timestamp::ZERO {
            return Timestamp::ZERO;
        }
        if self.process == 0 {
            Timestamp {
                value: self.value - 1,
                process: u32::MAX,
            }
        } else {
            Timestamp {
                value: self.value,
                process: self.process - 1,
            }
        }
    }

    /// Whether this is the `+∞` sentinel.
    #[must_use]
    pub fn is_max(self) -> bool {
        self == Timestamp::MAX
    }

    /// Whether this is the smallest timestamp.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Timestamp::ZERO
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_max() {
            write!(f, "ts(+inf)")
        } else {
            write!(f, "ts({}.{})", self.value, self.process)
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_max() {
            write!(f, "+inf")
        } else {
            write!(f, "{}.{}", self.value, self.process)
        }
    }
}

impl From<u64> for Timestamp {
    fn from(value: u64) -> Self {
        Timestamp::at(value)
    }
}

/// A non-empty closed interval of timestamps `[start, end]`.
///
/// Ranges are the unit of *interval compression* (§6 of the paper): every lock
/// acquisition, every freeze, and every per-transaction candidate set is a
/// small number of these.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TsRange {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Inclusive upper bound.
    pub end: Timestamp,
}

impl TsRange {
    /// Creates the closed range `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`; use [`TsRange::checked`] to construct ranges
    /// from possibly-inverted bounds.
    #[must_use]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "invalid timestamp range: {start} > {end}");
        TsRange { start, end }
    }

    /// Creates `[start, end]` or returns `None` if `start > end`.
    #[must_use]
    pub fn checked(start: Timestamp, end: Timestamp) -> Option<Self> {
        if start <= end {
            Some(TsRange { start, end })
        } else {
            None
        }
    }

    /// The singleton range `[t, t]`.
    #[must_use]
    pub fn point(t: Timestamp) -> Self {
        TsRange { start: t, end: t }
    }

    /// The full range `[ZERO, MAX]`, i.e. "all the possible timestamps".
    #[must_use]
    pub fn all() -> Self {
        TsRange {
            start: Timestamp::ZERO,
            end: Timestamp::MAX,
        }
    }

    /// Whether `t` lies inside the range.
    #[must_use]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether the two ranges share at least one timestamp.
    #[must_use]
    pub fn overlaps(&self, other: &TsRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The intersection of two ranges, if non-empty.
    #[must_use]
    pub fn intersection(&self, other: &TsRange) -> Option<TsRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        TsRange::checked(start, end)
    }

    /// Whether `other` is entirely contained in `self`.
    #[must_use]
    pub fn contains_range(&self, other: &TsRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two ranges are adjacent (`self.end.succ() == other.start`)
    /// or overlapping, i.e. their union is a single range.
    #[must_use]
    pub fn touches(&self, other: &TsRange) -> bool {
        if self.overlaps(other) {
            return true;
        }
        if self.end < other.start {
            self.end.succ() == other.start
        } else {
            other.end.succ() == self.start
        }
    }

    /// Number of points in the range if it is small enough to count within the
    /// same `(value)` granularity; returns `None` for ranges wider than
    /// `u64::MAX` clock ticks. Used only for statistics.
    #[must_use]
    pub fn approx_width(&self) -> Option<u64> {
        self.end.value.checked_sub(self.start.value)
    }
}

impl fmt::Debug for TsRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl fmt::Display for TsRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl From<Timestamp> for TsRange {
    fn from(t: Timestamp) -> Self {
        TsRange::point(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Timestamp::new(1, 5) < Timestamp::new(2, 0));
        assert!(Timestamp::new(2, 0) < Timestamp::new(2, 1));
        assert!(Timestamp::ZERO < Timestamp::new(0, 1));
        assert!(Timestamp::new(7, 3) == Timestamp::new(7, 3));
        assert!(Timestamp::MAX > Timestamp::new(u64::MAX, 0));
    }

    #[test]
    fn succ_and_pred_are_inverses() {
        let t = Timestamp::new(10, 3);
        assert_eq!(t.succ().pred(), t);
        assert_eq!(t.pred().succ(), t);

        let boundary = Timestamp::new(10, u32::MAX);
        assert_eq!(boundary.succ(), Timestamp::new(11, 0));
        assert_eq!(boundary.succ().pred(), boundary);
    }

    #[test]
    fn succ_saturates_at_max() {
        assert_eq!(Timestamp::MAX.succ(), Timestamp::MAX);
        assert_eq!(Timestamp::ZERO.pred(), Timestamp::ZERO);
    }

    #[test]
    fn range_contains_and_overlap() {
        let r = TsRange::new(Timestamp::at(5), Timestamp::at(10));
        assert!(r.contains(Timestamp::at(5)));
        assert!(r.contains(Timestamp::at(10)));
        assert!(!r.contains(Timestamp::at(11)));
        assert!(!r.contains(Timestamp::new(4, u32::MAX)));

        let s = TsRange::new(Timestamp::at(10), Timestamp::at(20));
        assert!(r.overlaps(&s));
        assert_eq!(r.intersection(&s), Some(TsRange::point(Timestamp::at(10))));

        let t = TsRange::new(Timestamp::at(11), Timestamp::at(20));
        assert!(!r.overlaps(&t));
        assert!(r.intersection(&t).is_none());
        // [5.0, 10.0] and [11.0, 20.0] are *not* adjacent: (10,1)..(10,MAX)
        // lie between them in the lexicographic order.
        assert!(!r.touches(&t));

        let u = TsRange::new(Timestamp::new(10, 1), Timestamp::at(20));
        assert!(!r.overlaps(&u));
        assert!(r.touches(&u));
    }

    #[test]
    #[should_panic(expected = "invalid timestamp range")]
    fn inverted_range_panics() {
        let _ = TsRange::new(Timestamp::at(5), Timestamp::at(4));
    }

    #[test]
    fn checked_range() {
        assert!(TsRange::checked(Timestamp::at(5), Timestamp::at(4)).is_none());
        assert!(TsRange::checked(Timestamp::at(4), Timestamp::at(4)).is_some());
    }

    #[test]
    fn point_and_all() {
        let p = TsRange::point(Timestamp::at(3));
        assert_eq!(p.start, p.end);
        assert!(TsRange::all().contains(Timestamp::MAX));
        assert!(TsRange::all().contains(Timestamp::ZERO));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Timestamp::new(4, 2).to_string(), "4.2");
        assert_eq!(Timestamp::MAX.to_string(), "+inf");
        assert_eq!(
            TsRange::new(Timestamp::at(1), Timestamp::at(2)).to_string(),
            "[1.0, 2.0]"
        );
    }
}
