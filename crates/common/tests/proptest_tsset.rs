//! Property-based tests of the `TsSet` interval-set algebra.
//!
//! The interval sets are the foundation of the whole reproduction (they encode
//! lock state and per-transaction candidate timestamps), so their algebra must
//! obey the usual set laws.

use mvtl_common::{Timestamp, TsRange, TsSet};
use proptest::prelude::*;

/// Strategy producing timestamps on a small grid so that collisions and
/// adjacency actually happen.
fn arb_ts() -> impl Strategy<Value = Timestamp> {
    (0u64..64, 0u32..4).prop_map(|(v, p)| Timestamp::new(v, p))
}

fn arb_range() -> impl Strategy<Value = TsRange> {
    (arb_ts(), arb_ts()).prop_map(|(a, b)| {
        if a <= b {
            TsRange::new(a, b)
        } else {
            TsRange::new(b, a)
        }
    })
}

fn arb_set() -> impl Strategy<Value = TsSet> {
    proptest::collection::vec(arb_range(), 0..8).prop_map(TsSet::from_ranges)
}

/// Reference membership check on a sampling grid.
fn grid() -> Vec<Timestamp> {
    let mut pts = Vec::new();
    for v in 0..64u64 {
        for p in 0..4u32 {
            pts.push(Timestamp::new(v, p));
        }
    }
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn canonical_representation_is_sorted_and_disjoint(set in arb_set()) {
        let ranges = set.ranges();
        for w in ranges.windows(2) {
            prop_assert!(w[0].end < w[1].start, "ranges must be sorted and disjoint: {:?}", ranges);
            // Not even adjacent: adjacency must have been merged.
            prop_assert!(w[0].end.succ() < w[1].start || !w[0].touches(&w[1]),
                "adjacent ranges must be merged: {:?}", ranges);
        }
    }

    #[test]
    fn union_membership_matches(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        for t in grid() {
            prop_assert_eq!(u.contains(t), a.contains(t) || b.contains(t));
        }
    }

    #[test]
    fn intersection_membership_matches(a in arb_set(), b in arb_set()) {
        let i = a.intersection(&b);
        for t in grid() {
            prop_assert_eq!(i.contains(t), a.contains(t) && b.contains(t));
        }
    }

    #[test]
    fn difference_membership_matches(a in arb_set(), b in arb_set()) {
        let d = a.difference(&b);
        for t in grid() {
            prop_assert_eq!(d.contains(t), a.contains(t) && !b.contains(t));
        }
    }

    #[test]
    fn intersection_is_commutative_and_idempotent(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.intersection(&a), a.clone());
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn insert_then_remove_restores_membership_outside(a in arb_set(), r in arb_range()) {
        let mut with = a.clone();
        with.insert_range(r);
        let mut without = with.clone();
        without.remove_range(r);
        for t in grid() {
            if r.contains(t) {
                prop_assert!(with.contains(t));
                prop_assert!(!without.contains(t));
            } else {
                prop_assert_eq!(with.contains(t), a.contains(t));
                prop_assert_eq!(without.contains(t), a.contains(t));
            }
        }
    }

    #[test]
    fn min_max_are_extremes(a in arb_set()) {
        if let (Some(lo), Some(hi)) = (a.min(), a.max()) {
            prop_assert!(a.contains(lo));
            prop_assert!(a.contains(hi));
            for t in grid() {
                if a.contains(t) {
                    prop_assert!(lo <= t && t <= hi);
                }
            }
        } else {
            prop_assert!(a.is_empty());
        }
    }

    #[test]
    fn succ_pred_roundtrip(t in arb_ts()) {
        prop_assert_eq!(t.succ().pred(), t);
        prop_assert!(t.succ() > t);
        if t != Timestamp::ZERO {
            prop_assert!(t.pred() < t);
        }
    }

    #[test]
    fn range_intersection_consistent_with_contains(a in arb_range(), b in arb_range(), t in arb_ts()) {
        let i = a.intersection(&b);
        let both = a.contains(t) && b.contains(t);
        match i {
            Some(r) => prop_assert_eq!(both, r.contains(t)),
            None => prop_assert!(!both),
        }
    }
}
