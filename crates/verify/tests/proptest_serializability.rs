//! Property-based serializability tests (Theorem 1 and friends).
//!
//! Two kinds of properties:
//!
//! 1. **Sequential replays** of randomly generated interleaved workloads: every
//!    engine must produce an acyclic multiversion serialization graph, and the
//!    committed values must match a reference serial execution in commit-
//!    timestamp order.
//! 2. **Concurrent executions** with real threads and randomized transaction
//!    bodies: the committed history must again be serializable.
//!
//! All engines are built from `mvtl-registry` string specs and driven through
//! the object-safe `dyn Engine` layer.

use mvtl_common::ops::{Op, Workload};
use mvtl_common::{Engine, Key};
use mvtl_verify::{check_serializable, replay, replay_concurrent};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEYS: u64 = 6;

/// Random interleaved workload over a small key space.
fn arb_workload() -> impl Strategy<Value = Workload> {
    let step = (0usize..4, 0u64..KEYS, 0u64..100, 0u8..4);
    proptest::collection::vec(step, 4..40).prop_map(|steps| {
        let mut w = Workload::new();
        let mut finished = [false; 4];
        for (tx, key, value, kind) in steps {
            if finished[tx] {
                continue;
            }
            match kind {
                0 | 1 => {
                    w.push(tx, Op::Read(Key(key)));
                }
                2 => {
                    w.push(tx, Op::Write(Key(key), value));
                }
                _ => {
                    w.push(tx, Op::Commit);
                    finished[tx] = true;
                }
            }
        }
        for (tx, done) in finished.iter().enumerate() {
            if !done {
                w.push(tx, Op::Commit);
            }
        }
        for tx in 0..4usize {
            // Pin distinct timestamps so every engine sees the same clocks.
            w.pin_timestamp(tx, mvtl_common::Timestamp::at(10 + 10 * tx as u64));
        }
        w
    })
}

/// The sequential-replay engine fleet: every MVTL policy, the baselines and
/// the partitioned engine, each with a short lock-wait timeout and a clock
/// starting above the pinned timestamps, exactly like the paper's replay
/// setup.
fn sequential_specs() -> Vec<String> {
    mvtl_registry::all_specs()
        .into_iter()
        .map(|spec| {
            let params = match mvtl_registry::EngineSpec::base_name(spec) {
                "mvtil-early" | "mvtil-late" => "delta=25&clock_start=1000&timeout_ms=5",
                "mvtl-pref" => "offset=-5&clock_start=1000&timeout_ms=5",
                "mvtl-epsilon-clock" => "eps=7&clock_start=1000&timeout_ms=5",
                "2pl" => "timeout_ms=5",
                "mvto+" => "clock_start=1000",
                // The sharded entries carry MVTIL or TO inners; `delta` only
                // parses for the MVTIL ones.
                "sharded" if spec.contains("inner=mvtil") => {
                    "delta=25&clock_start=1000&timeout_ms=5"
                }
                _ => "clock_start=1000&timeout_ms=5",
            };
            mvtl_registry::EngineSpec::append_params(spec, params)
        })
        .collect()
}

fn build(spec: &str) -> Box<dyn Engine<u64>> {
    mvtl_registry::build(spec).unwrap_or_else(|e| panic!("spec {spec:?} must build: {e}"))
}

fn assert_serializable(engine: &dyn Engine<u64>, workload: &Workload) {
    let report = replay(engine, workload, |v| v);
    if let Err(violation) = check_serializable(&report.history) {
        panic!(
            "{} produced a non-serializable history on workload:\n{}\n{violation}",
            engine.name(),
            workload.render()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engines_serializable_on_random_workloads(workload in arb_workload()) {
        for spec in sequential_specs() {
            if spec.starts_with("mvtl-pessimistic") {
                continue; // gets its own (smaller) case budget below
            }
            assert_serializable(build(&spec).as_ref(), &workload);
        }
    }

    #[test]
    fn pessimistic_engine_serializable_on_random_workloads(workload in arb_workload()) {
        // Pessimistic blocks more, so it gets its own (smaller) case budget by
        // virtue of living in a separate test.
        assert_serializable(
            build("mvtl-pessimistic?clock_start=1000&timeout_ms=5").as_ref(),
            &workload,
        );
    }

    #[test]
    fn mvtl_to_and_mvto_agree_on_serial_workloads(seed in any::<u64>()) {
        // Theorem 5 (behavioural check): on serial workloads with identical
        // pinned timestamps, MVTL-TO and MVTO+ commit exactly the same
        // transactions and expose the same final values.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Workload::new();
        let txs = rng.gen_range(2..8usize);
        for tx in 0..txs {
            let ops = rng.gen_range(1..5usize);
            for _ in 0..ops {
                let key = Key(rng.gen_range(0..KEYS));
                if rng.gen_bool(0.5) {
                    w.push(tx, Op::Read(key));
                } else {
                    w.push(tx, Op::Write(key, rng.gen_range(0..100)));
                }
            }
            w.push(tx, Op::Commit);
            // Random (possibly non-monotonic) timestamps, all distinct.
            w.pin_timestamp(tx, mvtl_common::Timestamp::at(10 + rng.gen_range(0u64..1000) * 2 + tx as u64 % 2));
        }

        let to_engine = build("mvtl-to?clock_start=1000&timeout_ms=5");
        let mvto_engine = build("mvto+?clock_start=5000");
        let to_report = replay(to_engine.as_ref(), &w, |v| v);
        let mvto_report = replay(mvto_engine.as_ref(), &w, |v| v);

        let to_commits: Vec<bool> = (0..txs).map(|i| to_report.committed(i)).collect();
        let mvto_commits: Vec<bool> = (0..txs).map(|i| mvto_report.committed(i)).collect();
        prop_assert_eq!(&to_commits, &mvto_commits,
            "MVTL-TO and MVTO+ disagree on workload:\n{}", w.render());

        prop_assert!(check_serializable(&to_report.history).is_ok());
        prop_assert!(check_serializable(&mvto_report.history).is_ok());
    }
}

#[test]
fn concurrent_random_transactions_are_serializable_under_every_mvtl_policy() {
    for spec in [
        "mvtl-to?timeout_ms=5",
        "mvtl-ghostbuster?timeout_ms=5",
        "mvtl-epsilon-clock?eps=20&timeout_ms=5",
        "mvtil-early?delta=5000&timeout_ms=5",
        "mvtil-late?delta=5000&timeout_ms=5",
        "mvtl-pref?timeout_ms=5",
    ] {
        let engine = build(spec);
        let history = replay_concurrent(engine.as_ref(), 4, 60, |thread, iter, txn| {
            let mut rng = StdRng::seed_from_u64((thread * 1_000 + iter) as u64);
            for _ in 0..rng.gen_range(2..6usize) {
                let key = Key(rng.gen_range(0..KEYS));
                if rng.gen_bool(0.5) {
                    txn.read(key)?;
                } else {
                    txn.write(key, rng.gen_range(0..1_000))?;
                }
            }
            Ok(())
        });
        assert!(!history.is_empty(), "{spec}: some transactions must commit");
        if let Err(violation) = check_serializable(&history) {
            panic!("{spec}: non-serializable concurrent history: {violation}");
        }
    }
}

/// The partitioned engine's §7 cross-shard commit must preserve one-copy
/// serializability under real threads, for one, two and eight shards. The
/// small key space forces both heavy contention and (for > 1 shard) a high
/// fraction of cross-shard transactions whose commit runs the interval
/// intersection.
#[test]
fn concurrent_cross_shard_histories_are_serializable_for_1_2_and_8_shards() {
    for shards in [1usize, 2, 8] {
        for inner in ["mvtil-early", "mvtl-to"] {
            // `delta` only parses when the inner engine is MVTIL.
            let delta = if inner.starts_with("mvtil") {
                "&delta=5000"
            } else {
                ""
            };
            let spec = format!("sharded?shards={shards}&inner={inner}{delta}&timeout_ms=5");
            let engine = build(&spec);
            let history = replay_concurrent(engine.as_ref(), 4, 60, |thread, iter, txn| {
                let mut rng = StdRng::seed_from_u64((thread * 4_099 + iter) as u64);
                for _ in 0..rng.gen_range(2..6usize) {
                    let key = Key(rng.gen_range(0..KEYS));
                    if rng.gen_bool(0.5) {
                        txn.read(key)?;
                    } else {
                        txn.write(key, rng.gen_range(0..1_000))?;
                    }
                }
                Ok(())
            });
            assert!(!history.is_empty(), "{spec}: some transactions must commit");
            if let Err(violation) = check_serializable(&history) {
                panic!("{spec}: non-serializable concurrent history: {violation}");
            }
        }
    }
}

#[test]
fn concurrent_random_transactions_are_serializable_under_the_baselines() {
    let mvto = build("mvto+");
    let history = replay_concurrent(mvto.as_ref(), 4, 80, |thread, iter, txn| {
        let mut rng = StdRng::seed_from_u64((thread * 7_777 + iter) as u64);
        for _ in 0..rng.gen_range(2..6usize) {
            let key = Key(rng.gen_range(0..KEYS));
            if rng.gen_bool(0.5) {
                txn.read(key)?;
            } else {
                txn.write(key, rng.gen_range(0..1_000))?;
            }
        }
        Ok(())
    });
    check_serializable(&history).expect("MVTO+ must be serializable");

    let tpl = build("2pl?timeout_ms=5");
    let history = replay_concurrent(tpl.as_ref(), 4, 80, |thread, iter, txn| {
        let mut rng = StdRng::seed_from_u64((thread * 31 + iter) as u64);
        for _ in 0..rng.gen_range(2..6usize) {
            let key = Key(rng.gen_range(0..KEYS));
            if rng.gen_bool(0.5) {
                txn.read(key)?;
            } else {
                txn.write(key, rng.gen_range(0..1_000))?;
            }
        }
        Ok(())
    });
    check_serializable(&history).expect("2PL must be serializable");
}
