//! Property-based serializability tests (Theorem 1 and friends).
//!
//! Two kinds of properties:
//!
//! 1. **Sequential replays** of randomly generated interleaved workloads: every
//!    engine must produce an acyclic multiversion serialization graph, and the
//!    committed values must match a reference serial execution in commit-
//!    timestamp order.
//! 2. **Concurrent executions** with real threads and randomized transaction
//!    bodies: the committed history must again be serializable.

use mvtl_baselines::{MvtoStore, TwoPhaseLockingStore};
use mvtl_clock::GlobalClock;
use mvtl_common::ops::{Op, Workload};
use mvtl_common::{Key, TransactionalKV};
use mvtl_core::policy::{
    EpsilonPolicy, GhostbusterPolicy, LockingPolicy, MvtilPolicy, PessimisticPolicy, PrefPolicy,
    PrioPolicy, ToPolicy,
};
use mvtl_core::{MvtlConfig, MvtlStore};
use mvtl_verify::{check_serializable, replay, replay_concurrent};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const KEYS: u64 = 6;

/// Random interleaved workload over a small key space.
fn arb_workload() -> impl Strategy<Value = Workload> {
    let step = (0usize..4, 0u64..KEYS, 0u64..100, 0u8..4);
    proptest::collection::vec(step, 4..40).prop_map(|steps| {
        let mut w = Workload::new();
        let mut finished = [false; 4];
        for (tx, key, value, kind) in steps {
            if finished[tx] {
                continue;
            }
            match kind {
                0 | 1 => {
                    w.push(tx, Op::Read(Key(key)));
                }
                2 => {
                    w.push(tx, Op::Write(Key(key), value));
                }
                _ => {
                    w.push(tx, Op::Commit);
                    finished[tx] = true;
                }
            }
        }
        for (tx, done) in finished.iter().enumerate() {
            if !done {
                w.push(tx, Op::Commit);
            }
        }
        for tx in 0..4usize {
            // Pin distinct timestamps so every engine sees the same clocks.
            w.pin_timestamp(tx, mvtl_common::Timestamp::at(10 + 10 * tx as u64));
        }
        w
    })
}

fn mvtl<P: LockingPolicy>(policy: P) -> MvtlStore<u64, P> {
    MvtlStore::new(
        policy,
        Arc::new(GlobalClock::starting_at(1000)),
        MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(5)),
    )
}

fn assert_serializable<S: TransactionalKV<u64>>(store: &S, workload: &Workload) {
    let report = replay(store, workload, |v| v);
    if let Err(violation) = check_serializable(&report.history) {
        panic!(
            "{} produced a non-serializable history on workload:\n{}\n{violation}",
            store.name(),
            workload.render()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engines_serializable_on_random_workloads(workload in arb_workload()) {
        assert_serializable(&mvtl(ToPolicy::new()), &workload);
        assert_serializable(&mvtl(GhostbusterPolicy::new()), &workload);
        assert_serializable(&mvtl(EpsilonPolicy::new(7)), &workload);
        assert_serializable(&mvtl(PrefPolicy::with_offsets(vec![-5])), &workload);
        assert_serializable(&mvtl(PrioPolicy::new()), &workload);
        assert_serializable(&mvtl(MvtilPolicy::early(25)), &workload);
        assert_serializable(&mvtl(MvtilPolicy::late(25)), &workload);
        assert_serializable(&MvtoStore::<u64>::new(Arc::new(GlobalClock::starting_at(1000))), &workload);
        assert_serializable(
            &TwoPhaseLockingStore::<u64>::new(
                Arc::new(GlobalClock::new()),
                Duration::from_millis(5),
            ),
            &workload,
        );
    }

    #[test]
    fn pessimistic_engine_serializable_on_random_workloads(workload in arb_workload()) {
        // Pessimistic blocks more, so it gets its own (smaller) case budget by
        // virtue of living in a separate test.
        assert_serializable(&mvtl(PessimisticPolicy::new()), &workload);
    }

    #[test]
    fn mvtl_to_and_mvto_agree_on_serial_workloads(seed in any::<u64>()) {
        // Theorem 5 (behavioural check): on serial workloads with identical
        // pinned timestamps, MVTL-TO and MVTO+ commit exactly the same
        // transactions and expose the same final values.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Workload::new();
        let txs = rng.gen_range(2..8usize);
        for tx in 0..txs {
            let ops = rng.gen_range(1..5usize);
            for _ in 0..ops {
                let key = Key(rng.gen_range(0..KEYS));
                if rng.gen_bool(0.5) {
                    w.push(tx, Op::Read(key));
                } else {
                    w.push(tx, Op::Write(key, rng.gen_range(0..100)));
                }
            }
            w.push(tx, Op::Commit);
            // Random (possibly non-monotonic) timestamps, all distinct.
            w.pin_timestamp(tx, mvtl_common::Timestamp::at(10 + rng.gen_range(0u64..1000) * 2 + tx as u64 % 2));
        }

        let to_store = mvtl(ToPolicy::new());
        let mvto_store: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::starting_at(5000)));
        let to_report = replay(&to_store, &w, |v| v);
        let mvto_report = replay(&mvto_store, &w, |v| v);

        let to_commits: Vec<bool> = (0..txs).map(|i| to_report.committed(i)).collect();
        let mvto_commits: Vec<bool> = (0..txs).map(|i| mvto_report.committed(i)).collect();
        prop_assert_eq!(&to_commits, &mvto_commits,
            "MVTL-TO and MVTO+ disagree on workload:\n{}", w.render());

        prop_assert!(check_serializable(&to_report.history).is_ok());
        prop_assert!(check_serializable(&mvto_report.history).is_ok());
    }
}

#[test]
fn concurrent_random_transactions_are_serializable_under_every_mvtl_policy() {
    fn run_policy<P: LockingPolicy>(policy: P) {
        let store = MvtlStore::<u64, P>::new(
            policy,
            Arc::new(GlobalClock::new()),
            MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(5)),
        );
        let history = replay_concurrent(&store, 4, 60, |thread, iter, store, txn| {
            let mut rng = StdRng::seed_from_u64((thread * 1_000 + iter) as u64);
            for _ in 0..rng.gen_range(2..6usize) {
                let key = Key(rng.gen_range(0..KEYS));
                if rng.gen_bool(0.5) {
                    store.read(txn, key)?;
                } else {
                    store.write(txn, key, rng.gen_range(0..1_000))?;
                }
            }
            Ok(())
        });
        assert!(!history.is_empty(), "some transactions must commit");
        if let Err(violation) = check_serializable(&history) {
            panic!("non-serializable concurrent history: {violation}");
        }
    }

    run_policy(ToPolicy::new());
    run_policy(GhostbusterPolicy::new());
    run_policy(EpsilonPolicy::new(20));
    run_policy(MvtilPolicy::early(5_000));
    run_policy(MvtilPolicy::late(5_000));
    run_policy(PrefPolicy::new());
}

#[test]
fn concurrent_random_transactions_are_serializable_under_the_baselines() {
    let mvto: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
    let history = replay_concurrent(&mvto, 4, 80, |thread, iter, store, txn| {
        let mut rng = StdRng::seed_from_u64((thread * 7_777 + iter) as u64);
        for _ in 0..rng.gen_range(2..6usize) {
            let key = Key(rng.gen_range(0..KEYS));
            if rng.gen_bool(0.5) {
                store.read(txn, key)?;
            } else {
                store.write(txn, key, rng.gen_range(0..1_000))?;
            }
        }
        Ok(())
    });
    check_serializable(&history).expect("MVTO+ must be serializable");

    let tpl: TwoPhaseLockingStore<u64> =
        TwoPhaseLockingStore::new(Arc::new(GlobalClock::new()), Duration::from_millis(5));
    let history = replay_concurrent(&tpl, 4, 80, |thread, iter, store, txn| {
        let mut rng = StdRng::seed_from_u64((thread * 31 + iter) as u64);
        for _ in 0..rng.gen_range(2..6usize) {
            let key = Key(rng.gen_range(0..KEYS));
            if rng.gen_bool(0.5) {
                store.read(txn, key)?;
            } else {
                store.write(txn, key, rng.gen_range(0..1_000))?;
            }
        }
        Ok(())
    });
    check_serializable(&history).expect("2PL must be serializable");
}
