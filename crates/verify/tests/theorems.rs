//! Executable versions of the paper's theorems, replayed through the shared
//! workload machinery so that every engine sees the identical schedule.

use mvtl_baselines::{MvtoStore, TwoPhaseLockingStore};
use mvtl_clock::GlobalClock;
use mvtl_common::TransactionalKV;
use mvtl_core::policy::{
    EpsilonPolicy, GhostbusterPolicy, LockingPolicy, MvtilPolicy, PessimisticPolicy, PrefPolicy,
    ToPolicy,
};
use mvtl_core::{MvtlConfig, MvtlStore};
use mvtl_verify::schedules::{
    ghost_abort_schedule, serial_abort_schedule, serial_counter_workload, theorem2_workload,
    update_concurrency_schedule, GHOST_ABORT_MIDDLE, GHOST_ABORT_VICTIM, SERIAL_ABORT_VICTIM,
    THEOREM2_VICTIM,
};
use mvtl_verify::{check_serializable, replay, ReplayReport};
use std::sync::Arc;
use std::time::Duration;

fn mvtl_store<P: LockingPolicy>(policy: P) -> MvtlStore<u64, P> {
    MvtlStore::new(
        policy,
        Arc::new(GlobalClock::new()),
        MvtlConfig::default().with_lock_wait_timeout(Duration::from_millis(20)),
    )
}

fn run<S: TransactionalKV<u64>>(store: &S, workload: &mvtl_common::ops::Workload) -> ReplayReport {
    let report = replay(store, workload, |v| v);
    check_serializable(&report.history)
        .unwrap_or_else(|e| panic!("{} produced a non-serializable history: {e}", store.name()));
    report
}

// ---------------------------------------------------------------- Theorem 4

#[test]
fn serial_abort_happens_under_mvto_and_mvtl_to_but_not_epsilon_clock() {
    let schedule = serial_abort_schedule();

    let mvto: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
    assert!(
        !run(&mvto, &schedule).committed(SERIAL_ABORT_VICTIM),
        "MVTO+ must abort the small-timestamp writer"
    );

    let to = mvtl_store(ToPolicy::new());
    assert!(
        !run(&to, &schedule).committed(SERIAL_ABORT_VICTIM),
        "MVTL-TO must behave like MVTO+ here"
    );

    // ε = 5 covers the 1-tick "skew" encoded in the pinned timestamps.
    let eps = mvtl_store(EpsilonPolicy::new(5));
    let report = run(&eps, &schedule);
    assert!(
        report.committed(SERIAL_ABORT_VICTIM),
        "MVTL-ε-clock must not abort in a serial execution (Theorem 4)"
    );
    assert_eq!(report.commits(), 2);
}

#[test]
fn epsilon_clock_commits_long_serial_histories() {
    let eps = mvtl_store(EpsilonPolicy::new(16));
    let schedule = serial_counter_workload(30);
    let report = run(&eps, &schedule);
    assert_eq!(report.commits(), 30, "no serial aborts allowed");
}

// ---------------------------------------------------------------- Theorem 7

#[test]
fn ghost_abort_happens_under_mvto_but_not_ghostbuster() {
    let schedule = ghost_abort_schedule();

    let mvto: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
    let report = run(&mvto, &schedule);
    assert!(!report.committed(GHOST_ABORT_MIDDLE), "T2 must abort");
    assert!(
        !report.committed(GHOST_ABORT_VICTIM),
        "MVTO+ must exhibit the ghost abort of T1"
    );

    let to = mvtl_store(ToPolicy::new());
    let report = run(&to, &schedule);
    assert!(
        !report.committed(GHOST_ABORT_VICTIM),
        "MVTL-TO emulates MVTO+ and also ghost-aborts T1"
    );

    let gb = mvtl_store(GhostbusterPolicy::new());
    let report = run(&gb, &schedule);
    assert!(!report.committed(GHOST_ABORT_MIDDLE), "T2 still aborts");
    assert!(
        report.committed(GHOST_ABORT_VICTIM),
        "MVTL-Ghostbuster must commit T1 (no ghost aborts, Theorem 7)"
    );
}

// ---------------------------------------------------------------- Theorem 2

#[test]
fn pref_commits_strictly_more_than_mvto() {
    let schedule = theorem2_workload();

    let mvto: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
    assert!(
        !run(&mvto, &schedule).committed(THEOREM2_VICTIM),
        "MVTO+ must abort T2 on the Theorem 2 workload"
    );

    // Alternatives must lie below t1 = 5: A(t) = {t - 28} gives 2 for T2.
    let pref = mvtl_store(PrefPolicy::with_offsets(vec![-28]));
    let report = run(&pref, &schedule);
    assert!(
        report.committed(THEOREM2_VICTIM),
        "MVTL-Pref must commit T2 via its alternative timestamp"
    );
    assert_eq!(report.commits(), 3);
}

#[test]
fn pref_does_not_abort_workloads_that_mvto_commits() {
    // Theorem 2(a) spot-check: a workload MVTO+ commits entirely is also
    // committed entirely by MVTL-Pref (alternatives smaller than preferential).
    let schedule = update_concurrency_schedule();
    let mvto: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
    let mvto_report = run(&mvto, &schedule);
    assert_eq!(mvto_report.commits(), 2);

    let pref = mvtl_store(PrefPolicy::with_offsets(vec![-3]));
    let pref_report = run(&pref, &schedule);
    assert_eq!(pref_report.commits(), 2);
}

// ------------------------------------------------- §9 comparison schedule

#[test]
fn full_multiversion_schemes_commit_concurrent_updates() {
    let schedule = update_concurrency_schedule();
    // All multiversion engines commit both transactions.
    assert_eq!(run(&mvtl_store(ToPolicy::new()), &schedule).commits(), 2);
    assert_eq!(
        run(&mvtl_store(MvtilPolicy::early(1_000)), &schedule).commits(),
        2
    );
    assert_eq!(
        run(
            &MvtoStore::<u64>::new(Arc::new(GlobalClock::new())),
            &schedule
        )
        .commits(),
        2
    );
}

// ------------------------------------------------------ cross-engine sanity

#[test]
fn every_engine_produces_serializable_histories_on_the_paper_schedules() {
    let schedules = [
        serial_abort_schedule(),
        ghost_abort_schedule(),
        theorem2_workload(),
        update_concurrency_schedule(),
        serial_counter_workload(10),
    ];
    for schedule in &schedules {
        run(&mvtl_store(ToPolicy::new()), schedule);
        run(&mvtl_store(GhostbusterPolicy::new()), schedule);
        run(&mvtl_store(EpsilonPolicy::new(8)), schedule);
        run(&mvtl_store(PrefPolicy::new()), schedule);
        run(&mvtl_store(PessimisticPolicy::new()), schedule);
        run(&mvtl_store(MvtilPolicy::early(100)), schedule);
        run(&mvtl_store(MvtilPolicy::late(100)), schedule);
        run(
            &MvtoStore::<u64>::new(Arc::new(GlobalClock::new())),
            schedule,
        );
        run(
            &TwoPhaseLockingStore::<u64>::new(
                Arc::new(GlobalClock::new()),
                Duration::from_millis(10),
            ),
            schedule,
        );
    }
}
