//! Executable versions of the paper's theorems, replayed through the shared
//! workload machinery so that every engine sees the identical schedule.
//!
//! Engines are built from `mvtl-registry` string specs and driven through the
//! object-safe `dyn Engine` layer — no per-engine generic plumbing.

use mvtl_common::Engine;
use mvtl_verify::schedules::{
    ghost_abort_schedule, serial_abort_schedule, serial_counter_workload, theorem2_workload,
    update_concurrency_schedule, GHOST_ABORT_MIDDLE, GHOST_ABORT_VICTIM, SERIAL_ABORT_VICTIM,
    THEOREM2_VICTIM,
};
use mvtl_verify::{check_serializable, replay, ReplayReport};

/// Builds a registry engine with the short lock-wait timeout the schedule
/// replays use (for 2PL the parameter doubles as the deadlock timeout).
fn engine(spec: &str) -> Box<dyn Engine<u64>> {
    // MVTO+ has no lock waits, hence no timeout knob.
    let spec = if spec.starts_with("mvto+") {
        spec.to_string()
    } else if spec.contains('?') {
        format!("{spec}&timeout_ms=20")
    } else {
        format!("{spec}?timeout_ms=20")
    };
    mvtl_registry::build(&spec).unwrap_or_else(|e| panic!("spec {spec:?} must build: {e}"))
}

fn run(engine: &dyn Engine<u64>, workload: &mvtl_common::ops::Workload) -> ReplayReport {
    let report = replay(engine, workload, |v| v);
    check_serializable(&report.history)
        .unwrap_or_else(|e| panic!("{} produced a non-serializable history: {e}", engine.name()));
    report
}

// ---------------------------------------------------------------- Theorem 4

#[test]
fn serial_abort_happens_under_mvto_and_mvtl_to_but_not_epsilon_clock() {
    let schedule = serial_abort_schedule();

    assert!(
        !run(engine("mvto+").as_ref(), &schedule).committed(SERIAL_ABORT_VICTIM),
        "MVTO+ must abort the small-timestamp writer"
    );

    assert!(
        !run(engine("mvtl-to").as_ref(), &schedule).committed(SERIAL_ABORT_VICTIM),
        "MVTL-TO must behave like MVTO+ here"
    );

    // ε = 5 covers the 1-tick "skew" encoded in the pinned timestamps.
    let report = run(engine("mvtl-epsilon-clock?eps=5").as_ref(), &schedule);
    assert!(
        report.committed(SERIAL_ABORT_VICTIM),
        "MVTL-ε-clock must not abort in a serial execution (Theorem 4)"
    );
    assert_eq!(report.commits(), 2);
}

#[test]
fn epsilon_clock_commits_long_serial_histories() {
    let schedule = serial_counter_workload(30);
    let report = run(engine("mvtl-epsilon-clock?eps=16").as_ref(), &schedule);
    assert_eq!(report.commits(), 30, "no serial aborts allowed");
}

// ---------------------------------------------------------------- Theorem 7

#[test]
fn ghost_abort_happens_under_mvto_but_not_ghostbuster() {
    let schedule = ghost_abort_schedule();

    let report = run(engine("mvto+").as_ref(), &schedule);
    assert!(!report.committed(GHOST_ABORT_MIDDLE), "T2 must abort");
    assert!(
        !report.committed(GHOST_ABORT_VICTIM),
        "MVTO+ must exhibit the ghost abort of T1"
    );

    let report = run(engine("mvtl-to").as_ref(), &schedule);
    assert!(
        !report.committed(GHOST_ABORT_VICTIM),
        "MVTL-TO emulates MVTO+ and also ghost-aborts T1"
    );

    let report = run(engine("mvtl-ghostbuster").as_ref(), &schedule);
    assert!(!report.committed(GHOST_ABORT_MIDDLE), "T2 still aborts");
    assert!(
        report.committed(GHOST_ABORT_VICTIM),
        "MVTL-Ghostbuster must commit T1 (no ghost aborts, Theorem 7)"
    );
}

// ---------------------------------------------------------------- Theorem 2

#[test]
fn pref_commits_strictly_more_than_mvto() {
    let schedule = theorem2_workload();

    assert!(
        !run(engine("mvto+").as_ref(), &schedule).committed(THEOREM2_VICTIM),
        "MVTO+ must abort T2 on the Theorem 2 workload"
    );

    // Alternatives must lie below t1 = 5: A(t) = {t - 28} gives 2 for T2.
    let report = run(engine("mvtl-pref?offset=-28").as_ref(), &schedule);
    assert!(
        report.committed(THEOREM2_VICTIM),
        "MVTL-Pref must commit T2 via its alternative timestamp"
    );
    assert_eq!(report.commits(), 3);
}

#[test]
fn pref_does_not_abort_workloads_that_mvto_commits() {
    // Theorem 2(a) spot-check: a workload MVTO+ commits entirely is also
    // committed entirely by MVTL-Pref (alternatives smaller than preferential).
    let schedule = update_concurrency_schedule();
    let mvto_report = run(engine("mvto+").as_ref(), &schedule);
    assert_eq!(mvto_report.commits(), 2);

    let pref_report = run(engine("mvtl-pref?offset=-3").as_ref(), &schedule);
    assert_eq!(pref_report.commits(), 2);
}

// ------------------------------------------------- §9 comparison schedule

#[test]
fn full_multiversion_schemes_commit_concurrent_updates() {
    let schedule = update_concurrency_schedule();
    // All multiversion engines commit both transactions.
    for spec in ["mvtl-to", "mvtil-early?delta=1000", "mvto+"] {
        assert_eq!(
            run(engine(spec).as_ref(), &schedule).commits(),
            2,
            "{spec} must commit both concurrent updates"
        );
    }
}

// ------------------------------------------------------ cross-engine sanity

#[test]
fn every_engine_produces_serializable_histories_on_the_paper_schedules() {
    let schedules = [
        serial_abort_schedule(),
        ghost_abort_schedule(),
        theorem2_workload(),
        update_concurrency_schedule(),
        serial_counter_workload(10),
    ];
    // Every registered engine, straight from the registry enumeration: a new
    // engine is enrolled into this theorem sanity check automatically.
    for spec in mvtl_registry::all_specs() {
        let tuned = match spec {
            "mvtil-early" | "mvtil-late" => format!("{spec}?delta=100"),
            other => other.to_string(),
        };
        for schedule in &schedules {
            run(engine(&tuned).as_ref(), schedule);
        }
    }
}
