//! Committed histories.

use mvtl_common::{CommitInfo, Key, Timestamp, TxId};
use std::collections::HashMap;

/// The committed projection of one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTx {
    /// Runtime transaction id.
    pub id: TxId,
    /// Commit (serialization) timestamp, when the engine provides one.
    pub commit_ts: Option<Timestamp>,
    /// `(key, version timestamp)` pairs for every read; the version timestamp
    /// identifies which committed write produced the value that was read
    /// ([`Timestamp::ZERO`] = the initial `⊥` version).
    pub reads: Vec<(Key, Timestamp)>,
    /// Keys written.
    pub writes: Vec<Key>,
}

impl From<CommitInfo> for CommittedTx {
    fn from(info: CommitInfo) -> Self {
        CommittedTx {
            id: info.tx,
            commit_ts: info.commit_ts,
            reads: info.reads,
            writes: info.writes,
        }
    }
}

/// The committed projection `C(H)` of a multiversion history (Appendix A).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    transactions: Vec<CommittedTx>,
}

impl History {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        History::default()
    }

    /// Records a committed transaction.
    pub fn record(&mut self, info: CommitInfo) {
        self.transactions.push(info.into());
    }

    /// Builds a history from already-collected commit information.
    #[must_use]
    pub fn from_commits<I: IntoIterator<Item = CommitInfo>>(commits: I) -> Self {
        let mut h = History::new();
        for c in commits {
            h.record(c);
        }
        h
    }

    /// The committed transactions, in recording order.
    #[must_use]
    pub fn transactions(&self) -> &[CommittedTx] {
        &self.transactions
    }

    /// Number of committed transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether no transaction committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Maps every `(key, commit timestamp)` version to the transaction that
    /// wrote it. Used to resolve reads-from edges.
    #[must_use]
    pub fn version_writers(&self) -> HashMap<(Key, Timestamp), TxId> {
        let mut map = HashMap::new();
        for tx in &self.transactions {
            if let Some(ts) = tx.commit_ts {
                for key in &tx.writes {
                    map.insert((*key, ts), tx.id);
                }
            }
        }
        map
    }

    /// The final committed value-version of each key: the write with the
    /// largest commit timestamp.
    #[must_use]
    pub fn final_versions(&self) -> HashMap<Key, (Timestamp, TxId)> {
        let mut map: HashMap<Key, (Timestamp, TxId)> = HashMap::new();
        for tx in &self.transactions {
            if let Some(ts) = tx.commit_ts {
                for key in &tx.writes {
                    match map.get(key) {
                        Some((existing, _)) if *existing >= ts => {}
                        _ => {
                            map.insert(*key, (ts, tx.id));
                        }
                    }
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(id: u64, ts: u64, reads: Vec<(u64, u64)>, writes: Vec<u64>) -> CommitInfo {
        CommitInfo {
            tx: TxId(id),
            commit_ts: Some(Timestamp::at(ts)),
            reads: reads
                .into_iter()
                .map(|(k, v)| (Key(k), Timestamp::at(v)))
                .collect(),
            writes: writes.into_iter().map(Key).collect(),
        }
    }

    #[test]
    fn records_and_maps_versions() {
        let h = History::from_commits([
            commit(1, 10, vec![], vec![1, 2]),
            commit(2, 20, vec![(1, 10)], vec![1]),
        ]);
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        let writers = h.version_writers();
        assert_eq!(writers[&(Key(1), Timestamp::at(10))], TxId(1));
        assert_eq!(writers[&(Key(1), Timestamp::at(20))], TxId(2));
        assert_eq!(writers[&(Key(2), Timestamp::at(10))], TxId(1));
        let finals = h.final_versions();
        assert_eq!(finals[&Key(1)], (Timestamp::at(20), TxId(2)));
        assert_eq!(finals[&Key(2)], (Timestamp::at(10), TxId(1)));
    }
}
