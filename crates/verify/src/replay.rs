//! Replaying workloads (the §2 model) against any engine.
//!
//! Both replay harnesses consume the object-safe `dyn`
//! [`Engine`] layer, so one compiled replay loop drives every protocol in the
//! workspace (and any engine built from an `mvtl-registry` string spec).
//! Transactions are handled through the RAII
//! [`Transaction`](mvtl_common::Transaction) guard: a transaction the engine
//! aborted mid-operation, or one left open at the end of a workload, is
//! cleaned up by dropping its guard.

use crate::History;
use mvtl_common::ops::{Op, Workload};
use mvtl_common::{AbortReason, Engine, EngineExt, ProcessId, Transaction, TxError, TxOutcome};
use parking_lot::Mutex;
use std::collections::HashMap;

/// The result of replaying a workload.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Outcome of each transaction, indexed by its workload transaction index.
    /// Transactions that never issued a commit (or abort) in the workload are
    /// reported as aborted with [`AbortReason::UserRequested`].
    pub outcomes: Vec<TxOutcome>,
    /// The committed history, ready for the MVSG check.
    pub history: History,
}

impl ReplayReport {
    /// Number of committed transactions.
    #[must_use]
    pub fn commits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_commit()).count()
    }

    /// Number of aborted transactions.
    #[must_use]
    pub fn aborts(&self) -> usize {
        self.outcomes.len() - self.commits()
    }

    /// Whether the transaction with workload index `i` committed.
    #[must_use]
    pub fn committed(&self, i: usize) -> bool {
        self.outcomes
            .get(i)
            .map(TxOutcome::is_commit)
            .unwrap_or(false)
    }
}

/// Replays `workload` against `engine` step by step in a single thread, exactly
/// in the interleaving the workload specifies.
///
/// Each workload transaction index is mapped to a distinct process id, and
/// pinned timestamps (when present) are passed to the engine so that schedules
/// like "T1 gets timestamp 1, T2 gets timestamp 2" can be reproduced exactly.
/// A transaction whose operation fails (an engine-initiated abort) is dropped —
/// the RAII guard releases its engine state — and its subsequent operations in
/// the workload are skipped.
pub fn replay<V>(
    engine: &dyn Engine<V>,
    workload: &Workload,
    make_value: impl Fn(u64) -> V,
) -> ReplayReport {
    let n = workload.transaction_count();
    let mut outcomes: Vec<Option<TxOutcome>> = vec![None; n];
    let mut history = History::new();
    let mut live: HashMap<usize, Transaction<'_, V>> = HashMap::new();

    for step in &workload.steps {
        let idx = step.tx;
        if outcomes.get(idx).map(|o| o.is_some()).unwrap_or(false) {
            // Transaction already finished (engine abort or explicit end).
            continue;
        }
        let txn = live.entry(idx).or_insert_with(|| {
            let pinned = workload.pinned_timestamp(idx);
            Transaction::from_handle(engine.begin_handle(ProcessId(idx as u32 + 1), pinned))
        });
        match &step.op {
            Op::Read(key) => {
                if let Err(err) = txn.read(*key) {
                    live.remove(&idx); // drop aborts the guard
                    outcomes[idx] = Some(TxOutcome::Aborted(abort_reason(err)));
                }
            }
            Op::Write(key, value) => {
                if let Err(err) = txn.write(*key, make_value(*value)) {
                    live.remove(&idx);
                    outcomes[idx] = Some(TxOutcome::Aborted(abort_reason(err)));
                }
            }
            Op::Commit => {
                let txn = live.remove(&idx).expect("live transaction");
                match txn.commit() {
                    Ok(info) => {
                        history.record(info.clone());
                        outcomes[idx] = Some(TxOutcome::Committed(info));
                    }
                    Err(err) => {
                        outcomes[idx] = Some(TxOutcome::Aborted(abort_reason(err)));
                    }
                }
            }
            Op::Abort => {
                let txn = live.remove(&idx).expect("live transaction");
                txn.abort();
                outcomes[idx] = Some(TxOutcome::Aborted(AbortReason::UserRequested));
            }
        }
    }

    // Transactions left open at the end of the workload are aborted by
    // dropping their guards.
    for (idx, txn) in live.drain() {
        drop(txn);
        outcomes[idx] = Some(TxOutcome::Aborted(AbortReason::UserRequested));
    }

    ReplayReport {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.unwrap_or(TxOutcome::Aborted(AbortReason::UserRequested)))
            .collect(),
        history,
    }
}

/// Runs `transactions_per_thread` transactions from each of `threads` threads
/// concurrently against `engine`, where each transaction is produced by
/// `body` (a closure receiving the thread index, the iteration and the open
/// [`Transaction`] guard). Returns the committed history for serializability
/// checking.
///
/// This is the harness used by the property tests: generate random transaction
/// bodies, run them with real concurrency, and check the MVSG afterwards.
pub fn replay_concurrent<V, F>(
    engine: &dyn Engine<V>,
    threads: usize,
    transactions_per_thread: usize,
    body: F,
) -> History
where
    F: Fn(usize, usize, &mut Transaction<'_, V>) -> Result<(), TxError> + Sync,
{
    let history = Mutex::named("verify.history", 95, History::new());
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let history = &history;
            let body = &body;
            scope.spawn(move || {
                for iter in 0..transactions_per_thread {
                    let mut txn = engine.begin(ProcessId(thread as u32 + 1));
                    match body(thread, iter, &mut txn) {
                        Ok(()) => {
                            if let Ok(info) = txn.commit() {
                                history.lock().record(info);
                            }
                        }
                        Err(_) => {
                            // The engine aborted the transaction inside an
                            // operation; dropping the guard cleans it up.
                            drop(txn);
                        }
                    }
                }
            });
        }
    });
    history.into_inner()
}

fn abort_reason(err: TxError) -> AbortReason {
    match err {
        TxError::Aborted(reason) => reason,
        _ => AbortReason::UserRequested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_serializable;
    use mvtl_common::{Key, Timestamp};

    #[test]
    fn replay_runs_a_simple_workload() {
        let engine = mvtl_registry::build("mvto+").expect("registry spec");
        let mut w = Workload::new();
        w.push(0, Op::Write(Key(1), 5))
            .push(0, Op::Commit)
            .push(1, Op::Read(Key(1)))
            .push(1, Op::Commit);
        w.pin_timestamp(0, Timestamp::at(10));
        w.pin_timestamp(1, Timestamp::at(20));
        let report = replay(engine.as_ref(), &w, |v| v);
        assert_eq!(report.commits(), 2);
        assert_eq!(report.aborts(), 0);
        assert!(report.committed(0) && report.committed(1));
        assert!(check_serializable(&report.history).is_ok());
    }

    #[test]
    fn unfinished_transactions_count_as_aborted() {
        let engine = mvtl_registry::build("mvto+").expect("registry spec");
        let mut w = Workload::new();
        w.push(0, Op::Read(Key(1)));
        let report = replay(engine.as_ref(), &w, |v| v);
        assert_eq!(report.commits(), 0);
        assert_eq!(report.aborts(), 1);
    }

    #[test]
    fn explicit_abort_is_reported() {
        let engine = mvtl_registry::build("mvto+").expect("registry spec");
        let mut w = Workload::new();
        w.push(0, Op::Write(Key(1), 3)).push(0, Op::Abort);
        let report = replay(engine.as_ref(), &w, |v| v);
        assert_eq!(report.aborts(), 1);
        assert!(report.history.is_empty());
    }
}
