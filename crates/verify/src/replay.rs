//! Replaying workloads (the §2 model) against any engine.

use crate::History;
use mvtl_common::ops::{Op, Workload};
use mvtl_common::{AbortReason, ProcessId, TransactionalKV, TxError, TxOutcome};
use std::collections::HashMap;
use std::sync::Mutex;

/// The result of replaying a workload.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Outcome of each transaction, indexed by its workload transaction index.
    /// Transactions that never issued a commit (or abort) in the workload are
    /// reported as aborted with [`AbortReason::UserRequested`].
    pub outcomes: Vec<TxOutcome>,
    /// The committed history, ready for the MVSG check.
    pub history: History,
}

impl ReplayReport {
    /// Number of committed transactions.
    #[must_use]
    pub fn commits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_commit()).count()
    }

    /// Number of aborted transactions.
    #[must_use]
    pub fn aborts(&self) -> usize {
        self.outcomes.len() - self.commits()
    }

    /// Whether the transaction with workload index `i` committed.
    #[must_use]
    pub fn committed(&self, i: usize) -> bool {
        self.outcomes
            .get(i)
            .map(TxOutcome::is_commit)
            .unwrap_or(false)
    }
}

/// Replays `workload` against `store` step by step in a single thread, exactly
/// in the interleaving the workload specifies.
///
/// Each workload transaction index is mapped to a distinct process id, and
/// pinned timestamps (when present) are passed to the engine so that schedules
/// like "T1 gets timestamp 1, T2 gets timestamp 2" can be reproduced exactly.
/// A transaction whose operation fails (an engine-initiated abort) is dropped;
/// subsequent operations of that transaction in the workload are skipped.
pub fn replay<V, S>(store: &S, workload: &Workload, make_value: impl Fn(u64) -> V) -> ReplayReport
where
    S: TransactionalKV<V>,
{
    let n = workload.transaction_count();
    let mut outcomes: Vec<Option<TxOutcome>> = vec![None; n];
    let mut history = History::new();
    let mut live: HashMap<usize, S::Txn> = HashMap::new();

    for step in &workload.steps {
        let idx = step.tx;
        if outcomes.get(idx).map(|o| o.is_some()).unwrap_or(false) {
            // Transaction already finished (engine abort or explicit end).
            continue;
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = live.entry(idx) {
            let pinned = workload.pinned_timestamp(idx);
            slot.insert(store.begin_at(ProcessId(idx as u32 + 1), pinned));
        }
        match &step.op {
            Op::Read(key) => {
                let txn = live.get_mut(&idx).expect("live transaction");
                if let Err(err) = store.read(txn, *key) {
                    live.remove(&idx);
                    outcomes[idx] = Some(TxOutcome::Aborted(abort_reason(err)));
                }
            }
            Op::Write(key, value) => {
                let txn = live.get_mut(&idx).expect("live transaction");
                if let Err(err) = store.write(txn, *key, make_value(*value)) {
                    live.remove(&idx);
                    outcomes[idx] = Some(TxOutcome::Aborted(abort_reason(err)));
                }
            }
            Op::Commit => {
                let txn = live.remove(&idx).expect("live transaction");
                match store.commit(txn) {
                    Ok(info) => {
                        history.record(info.clone());
                        outcomes[idx] = Some(TxOutcome::Committed(info));
                    }
                    Err(err) => {
                        outcomes[idx] = Some(TxOutcome::Aborted(abort_reason(err)));
                    }
                }
            }
            Op::Abort => {
                let txn = live.remove(&idx).expect("live transaction");
                store.abort(txn);
                outcomes[idx] = Some(TxOutcome::Aborted(AbortReason::UserRequested));
            }
        }
    }

    // Transactions left open at the end of the workload are aborted.
    for (idx, txn) in live.drain() {
        store.abort(txn);
        outcomes[idx] = Some(TxOutcome::Aborted(AbortReason::UserRequested));
    }

    ReplayReport {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.unwrap_or(TxOutcome::Aborted(AbortReason::UserRequested)))
            .collect(),
        history,
    }
}

/// Runs `transactions_per_thread` transactions from each of `threads` threads
/// concurrently against `store`, where each transaction is produced by
/// `body` (a closure receiving the thread index and iteration and performing
/// the operations). Returns the committed history for serializability
/// checking.
///
/// This is the harness used by the property tests: generate random transaction
/// bodies, run them with real concurrency, and check the MVSG afterwards.
pub fn replay_concurrent<V, S, F>(
    store: &S,
    threads: usize,
    transactions_per_thread: usize,
    body: F,
) -> History
where
    V: Send,
    S: TransactionalKV<V> + Sync,
    F: Fn(usize, usize, &S, &mut S::Txn) -> Result<(), TxError> + Sync,
{
    let history = Mutex::new(History::new());
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let history = &history;
            let body = &body;
            scope.spawn(move || {
                for iter in 0..transactions_per_thread {
                    let mut txn = store.begin(ProcessId(thread as u32 + 1));
                    match body(thread, iter, store, &mut txn) {
                        Ok(()) => {
                            if let Ok(info) = store.commit(txn) {
                                history.lock().expect("history lock").record(info);
                            }
                        }
                        Err(_) => {
                            // The engine aborted the transaction inside an
                            // operation; the handle must not be committed.
                            store.abort(txn);
                        }
                    }
                }
            });
        }
    });
    history.into_inner().expect("history lock")
}

fn abort_reason(err: TxError) -> AbortReason {
    match err {
        TxError::Aborted(reason) => reason,
        _ => AbortReason::UserRequested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_serializable;
    use mvtl_baselines::MvtoStore;
    use mvtl_clock::GlobalClock;
    use mvtl_common::{Key, Timestamp};
    use std::sync::Arc;

    #[test]
    fn replay_runs_a_simple_workload() {
        let store: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
        let mut w = Workload::new();
        w.push(0, Op::Write(Key(1), 5))
            .push(0, Op::Commit)
            .push(1, Op::Read(Key(1)))
            .push(1, Op::Commit);
        w.pin_timestamp(0, Timestamp::at(10));
        w.pin_timestamp(1, Timestamp::at(20));
        let report = replay(&store, &w, |v| v);
        assert_eq!(report.commits(), 2);
        assert_eq!(report.aborts(), 0);
        assert!(report.committed(0) && report.committed(1));
        assert!(check_serializable(&report.history).is_ok());
    }

    #[test]
    fn unfinished_transactions_count_as_aborted() {
        let store: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
        let mut w = Workload::new();
        w.push(0, Op::Read(Key(1)));
        let report = replay(&store, &w, |v| v);
        assert_eq!(report.commits(), 0);
        assert_eq!(report.aborts(), 1);
    }

    #[test]
    fn explicit_abort_is_reported() {
        let store: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
        let mut w = Workload::new();
        w.push(0, Op::Write(Key(1), 3)).push(0, Op::Abort);
        let report = replay(&store, &w, |v| v);
        assert_eq!(report.aborts(), 1);
        assert!(report.history.is_empty());
    }
}
