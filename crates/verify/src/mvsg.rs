//! The multiversion serialization graph and its acyclicity check (Appendix A).

use crate::History;
use mvtl_common::{Key, Timestamp, TxId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A detected serializability violation: a cycle in the MVSG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializabilityViolation {
    /// The transactions forming the cycle, in order (the last has an edge back
    /// to the first).
    pub cycle: Vec<TxId>,
}

impl fmt::Display for SerializabilityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MVSG cycle: ")?;
        for (i, tx) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{tx}")?;
        }
        write!(f, " -> {}", self.cycle[0])
    }
}

impl std::error::Error for SerializabilityViolation {}

/// Builds the multiversion serialization graph of a committed history and
/// checks it for cycles.
///
/// Vertices are the committed transactions plus a virtual initial transaction
/// `T0` that wrote the `⊥` version of every key at [`Timestamp::ZERO`]. Edges
/// follow the standard construction the paper's proof uses:
///
/// 1. *reads-from*: if `Tj` reads a version written by `Ti`, add `Ti → Tj`;
/// 2. for every read `rk[xj]` (transaction `Tk` reads the version of `x`
///    written by `Tj`) and every committed write `wi[xi]` of the same key by a
///    different transaction `Ti`: if `xi ≪ xj` add `Ti → Tj`, otherwise add
///    `Tk → Ti` (the reader must precede any later writer of the same key).
#[derive(Debug, Default)]
pub struct MvsgChecker {
    edges: HashMap<TxId, HashSet<TxId>>,
    vertices: HashSet<TxId>,
}

/// The id of the virtual initial transaction that wrote every `⊥` version.
pub const INITIAL_TX: TxId = TxId(0);

impl MvsgChecker {
    /// Builds the graph for `history`.
    #[must_use]
    pub fn build(history: &History) -> Self {
        let mut checker = MvsgChecker::default();
        checker.vertices.insert(INITIAL_TX);

        // Version map: (key, version timestamp) -> writer.
        let mut writers = history.version_writers();
        // Every key also has the ⊥ version at ZERO written by T0.
        let mut all_keys: HashSet<Key> = HashSet::new();
        for tx in history.transactions() {
            for (k, _) in &tx.reads {
                all_keys.insert(*k);
            }
            for k in &tx.writes {
                all_keys.insert(*k);
            }
        }
        for key in &all_keys {
            writers.entry((*key, Timestamp::ZERO)).or_insert(INITIAL_TX);
        }

        // Committed writes per key with their timestamps.
        let mut writes_per_key: HashMap<Key, Vec<(Timestamp, TxId)>> = HashMap::new();
        for key in &all_keys {
            writes_per_key
                .entry(*key)
                .or_default()
                .push((Timestamp::ZERO, INITIAL_TX));
        }
        for tx in history.transactions() {
            checker.vertices.insert(tx.id);
            if let Some(ts) = tx.commit_ts {
                for key in &tx.writes {
                    writes_per_key.entry(*key).or_default().push((ts, tx.id));
                }
            }
        }

        for tx in history.transactions() {
            for (key, version_ts) in &tx.reads {
                let Some(&writer) = writers.get(&(*key, *version_ts)) else {
                    // The read observed a version that no committed transaction
                    // produced (e.g. a non-multiversion engine that does not
                    // report versions); skip the read, it constrains nothing.
                    continue;
                };
                // Reads-from edge.
                if writer != tx.id {
                    checker.add_edge(writer, tx.id);
                }
                // Version-order edges against every other committed write of
                // the same key.
                for (other_ts, other_writer) in writes_per_key.get(key).into_iter().flatten() {
                    if *other_writer == writer || *other_writer == tx.id {
                        continue;
                    }
                    if *other_ts < *version_ts {
                        checker.add_edge(*other_writer, writer);
                    } else {
                        checker.add_edge(tx.id, *other_writer);
                    }
                }
            }
        }
        checker
    }

    fn add_edge(&mut self, from: TxId, to: TxId) {
        if from == to {
            return;
        }
        self.vertices.insert(from);
        self.vertices.insert(to);
        self.edges.entry(from).or_default().insert(to);
    }

    /// Number of edges in the graph.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// Searches for a cycle; returns it if one exists.
    #[must_use]
    pub fn find_cycle(&self) -> Option<Vec<TxId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: HashMap<TxId, Mark> =
            self.vertices.iter().map(|v| (*v, Mark::White)).collect();
        let mut stack: Vec<TxId> = Vec::new();

        fn dfs(
            node: TxId,
            edges: &HashMap<TxId, HashSet<TxId>>,
            marks: &mut HashMap<TxId, Mark>,
            stack: &mut Vec<TxId>,
        ) -> Option<Vec<TxId>> {
            marks.insert(node, Mark::Grey);
            stack.push(node);
            if let Some(nexts) = edges.get(&node) {
                let mut nexts: Vec<TxId> = nexts.iter().copied().collect();
                nexts.sort();
                for next in nexts {
                    match marks.get(&next).copied().unwrap_or(Mark::White) {
                        Mark::Grey => {
                            let pos = stack.iter().position(|t| *t == next).unwrap_or(0);
                            return Some(stack[pos..].to_vec());
                        }
                        Mark::White => {
                            if let Some(cycle) = dfs(next, edges, marks, stack) {
                                return Some(cycle);
                            }
                        }
                        Mark::Black => {}
                    }
                }
            }
            stack.pop();
            marks.insert(node, Mark::Black);
            None
        }

        let mut nodes: Vec<TxId> = self.vertices.iter().copied().collect();
        nodes.sort();
        for node in nodes {
            if marks[&node] == Mark::White {
                if let Some(cycle) = dfs(node, &self.edges, &mut marks, &mut stack) {
                    return Some(cycle);
                }
            }
        }
        None
    }
}

/// Checks that a committed history is one-copy serializable by building its
/// MVSG and verifying acyclicity.
///
/// # Errors
///
/// Returns the detected cycle when the history is not serializable.
pub fn check_serializable(history: &History) -> Result<(), SerializabilityViolation> {
    match MvsgChecker::build(history).find_cycle() {
        None => Ok(()),
        Some(cycle) => Err(SerializabilityViolation { cycle }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_common::CommitInfo;

    fn commit(id: u64, ts: u64, reads: Vec<(u64, u64)>, writes: Vec<u64>) -> CommitInfo {
        CommitInfo {
            tx: TxId(id),
            commit_ts: Some(Timestamp::at(ts)),
            reads: reads
                .into_iter()
                .map(|(k, v)| (Key(k), Timestamp::at(v)))
                .collect(),
            writes: writes.into_iter().map(Key).collect(),
        }
    }

    #[test]
    fn empty_history_is_serializable() {
        assert!(check_serializable(&History::new()).is_ok());
    }

    #[test]
    fn simple_chain_is_serializable() {
        // T1 writes k1@10, T2 reads it and writes k2@20, T3 reads both.
        let h = History::from_commits([
            commit(1, 10, vec![], vec![1]),
            commit(2, 20, vec![(1, 10)], vec![2]),
            commit(3, 30, vec![(1, 10), (2, 20)], vec![]),
        ]);
        assert!(check_serializable(&h).is_ok());
    }

    #[test]
    fn write_skew_style_cycle_is_detected() {
        // T1 reads the initial version of k2 and writes k1@10;
        // T2 reads the initial version of k1 and writes k2@20.
        // T1 must precede T2 (T2 read k1's initial version, overwritten by T1?
        // no — T2 read ⊥ of k1 which T1 overwrites, so T2 -> T1), and
        // symmetrically T1 -> T2: a cycle.
        let h = History::from_commits([
            commit(1, 10, vec![(2, 0)], vec![1]),
            commit(2, 20, vec![(1, 0)], vec![2]),
        ]);
        let err = check_serializable(&h).unwrap_err();
        assert!(err.cycle.len() >= 2, "cycle: {err}");
    }

    #[test]
    fn reading_a_stale_version_after_overwrite_is_a_violation_when_cyclic() {
        // T2 writes k1@20. T3 reads the ⊥ version of k1 (stale) but also a
        // version written at 30 by T4 which read T2's write — forcing T3 both
        // before T2 (stale read) and after T4 (reads-from) while T4 is after
        // T2: T3 -> T2 -> ... -> T4 -> T3? Construct explicitly:
        let h = History::from_commits([
            commit(2, 20, vec![], vec![1]),
            commit(4, 30, vec![(1, 20)], vec![2]),
            commit(3, 40, vec![(1, 0), (2, 30)], vec![]),
        ]);
        // Edges: T2->T4 (reads-from), T4->T3 (reads-from), T3->T2 (T3 read ⊥ of
        // k1, T2 wrote k1 later) — a cycle.
        let err = check_serializable(&h).unwrap_err();
        assert!(!err.cycle.is_empty());
        assert!(err.to_string().contains("MVSG cycle"));
    }

    #[test]
    fn snapshot_like_consistent_reads_are_fine() {
        let h = History::from_commits([
            commit(1, 10, vec![], vec![1, 2]),
            commit(2, 20, vec![(1, 10), (2, 10)], vec![1]),
            commit(3, 15, vec![(1, 10)], vec![]),
        ]);
        assert!(check_serializable(&h).is_ok());
    }

    #[test]
    fn write_skew_cycle_is_reported_with_both_transactions() {
        let h = History::from_commits([
            commit(7, 10, vec![(2, 0)], vec![1]),
            commit(8, 20, vec![(1, 0)], vec![2]),
        ]);
        let err = check_serializable(&h).unwrap_err();
        let in_cycle: HashSet<TxId> = err.cycle.iter().copied().collect();
        assert!(in_cycle.contains(&TxId(7)) && in_cycle.contains(&TxId(8)));
    }
}
