//! # mvtl-verify
//!
//! Serializability checking and executable versions of the paper's claims.
//!
//! The correctness argument of the paper (Appendix A) is in terms of the
//! **multiversion serialization graph** (MVSG): a multiversion history is
//! one-copy serializable iff its MVSG is acyclic. This crate makes that check
//! executable:
//!
//! * [`History`] — the committed projection of an execution: for every
//!   committed transaction, which version of which key it read and which keys
//!   it wrote, with its commit timestamp. Engines already report exactly this
//!   in [`CommitInfo`](mvtl_common::CommitInfo); [`History::record`] collects
//!   them.
//! * [`MvsgChecker`] / [`check_serializable`] — builds the MVSG and looks for a
//!   cycle, returning the offending cycle when one exists.
//! * [`replay`] — replays a [`Workload`](mvtl_common::ops::Workload) (the §2
//!   workload model, with optionally pinned timestamps) against any
//!   `dyn` [`Engine`](mvtl_common::Engine) and returns both the
//!   per-transaction outcomes and the committed history. One compiled replay
//!   loop serves every engine; per-attempt cleanup rides on the RAII
//!   [`Transaction`](mvtl_common::Transaction) guard.
//! * [`schedules`] — the canonical schedules from the paper: the serial-abort
//!   schedule of §5.3, the ghost-abort schedule of §5.5, and the Theorem 2
//!   workload family, each parameterized so the same input can be thrown at
//!   every engine.
//!
//! Together with property-based tests, this is how the repository validates
//! Theorems 1–7 behaviourally rather than just implementing the algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod history;
mod mvsg;
mod replay;
pub mod schedules;

pub use history::{CommittedTx, History};
pub use mvsg::{check_serializable, MvsgChecker, SerializabilityViolation, INITIAL_TX};
pub use replay::{replay, replay_concurrent, ReplayReport};
