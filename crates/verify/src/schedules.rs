//! The canonical schedules from the paper, expressed as [`Workload`]s.
//!
//! Each schedule is the exact interleaving the paper uses to motivate a
//! specific MVTL policy, with pinned timestamps so that any engine replays it
//! under the same clock readings. The integration tests (and `EXPERIMENTS.md`)
//! assert who commits and who aborts under each engine.

use mvtl_common::ops::{Op, Workload};
use mvtl_common::{Key, Timestamp};

/// The serial-abort schedule of §5.3:
///
/// ```text
/// T2 :  R(X) C
/// T1 :            W(X) A?
/// ```
///
/// T2 has the larger timestamp (2) but runs first and commits; T1 then gets the
/// smaller timestamp (1), writes X and tries to commit. The execution is
/// completely serial, yet MVTO+/MVTL-TO abort T1; MVTL-ε-clock (with ε covering
/// the skew) does not.
#[must_use]
pub fn serial_abort_schedule() -> Workload {
    let x = Key(1);
    let mut w = Workload::new();
    // Transaction index 0 plays T2 (timestamp 2), index 1 plays T1 (timestamp 1).
    w.push(0, Op::Read(x))
        .push(0, Op::Commit)
        .push(1, Op::Write(x, 100))
        .push(1, Op::Commit);
    w.pin_timestamp(0, Timestamp::at(2));
    w.pin_timestamp(1, Timestamp::at(1));
    w
}

/// Index of the late, small-timestamp writer (T1) in
/// [`serial_abort_schedule`].
pub const SERIAL_ABORT_VICTIM: usize = 1;

/// The ghost-abort schedule of §5.5:
///
/// ```text
/// T3 :  R(X) C
/// T2 :       R(Y) W(X) A
/// T1 :                  W(Y) A?
/// ```
///
/// T2 aborts because of T3's read; T1 then conflicts only with the
/// already-aborted T2 — if T1 aborts, that abort is a *ghost abort*.
#[must_use]
pub fn ghost_abort_schedule() -> Workload {
    let x = Key(1);
    let y = Key(2);
    let mut w = Workload::new();
    // Index 0 = T3 (ts 3), index 1 = T2 (ts 2), index 2 = T1 (ts 1).
    w.push(0, Op::Read(x))
        .push(0, Op::Commit)
        .push(1, Op::Read(y))
        .push(1, Op::Write(x, 20))
        .push(1, Op::Commit)
        .push(2, Op::Write(y, 10))
        .push(2, Op::Commit);
    w.pin_timestamp(0, Timestamp::at(3));
    w.pin_timestamp(1, Timestamp::at(2));
    w.pin_timestamp(2, Timestamp::at(1));
    w
}

/// Index of the transaction that suffers the ghost abort (T1) in
/// [`ghost_abort_schedule`].
pub const GHOST_ABORT_VICTIM: usize = 2;

/// Index of the transaction that legitimately aborts (T2) in
/// [`ghost_abort_schedule`].
pub const GHOST_ABORT_MIDDLE: usize = 1;

/// The Theorem 2(b) workload: `W1(Y) C1 R2(X) R3(Y) C3 W2(Y) C2` with
/// timestamps `t1 < t2 < t3` and the requirement `max A(t2) < t1` on the
/// alternative timestamps.
///
/// MVTO+ aborts T2 (its write of `Y` would land between T1's version and T3's
/// read); MVTL-Pref with an alternative below `t1` commits all three.
#[must_use]
pub fn theorem2_workload() -> Workload {
    let x = Key(1);
    let y = Key(2);
    let mut w = Workload::new();
    // Index 0 = T1 (ts 5), index 1 = T2 (ts 30), index 2 = T3 (ts 40).
    w.push(0, Op::Write(y, 100))
        .push(0, Op::Commit)
        .push(1, Op::Read(x))
        .push(2, Op::Read(y))
        .push(2, Op::Commit)
        .push(1, Op::Write(y, 200))
        .push(1, Op::Commit);
    w.pin_timestamp(0, Timestamp::at(5));
    w.pin_timestamp(1, Timestamp::at(30));
    w.pin_timestamp(2, Timestamp::at(40));
    w
}

/// Index of the transaction (T2) that MVTO+ aborts but MVTL-Pref commits in
/// [`theorem2_workload`].
pub const THEOREM2_VICTIM: usize = 1;

/// The schedule from §9 that aborts under multiversion-for-read-only-only STM
/// systems but not under full multiversion schemes:
///
/// ```text
/// T1 : R(X)      W(Y) C
/// T2 :      W(X)          C
/// ```
#[must_use]
pub fn update_concurrency_schedule() -> Workload {
    let x = Key(1);
    let y = Key(2);
    let mut w = Workload::new();
    w.push(0, Op::Read(x))
        .push(1, Op::Write(x, 7))
        .push(1, Op::Commit)
        .push(0, Op::Write(y, 8))
        .push(0, Op::Commit);
    w.pin_timestamp(0, Timestamp::at(10));
    w.pin_timestamp(1, Timestamp::at(20));
    w
}

/// A purely serial read-modify-write chain over a single key, parameterized by
/// length; useful for checking that an engine never aborts serial executions
/// when clocks are well behaved (and for Theorem 4 when they are not).
#[must_use]
pub fn serial_counter_workload(transactions: usize) -> Workload {
    let k = Key(9);
    let mut w = Workload::new();
    for i in 0..transactions {
        w.push(i, Op::Read(k));
        w.push(i, Op::Write(k, i as u64 + 1));
        w.push(i, Op::Commit);
        w.pin_timestamp(i, Timestamp::at(10 + i as u64));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_well_formed() {
        for (schedule, txs) in [
            (serial_abort_schedule(), 2),
            (ghost_abort_schedule(), 3),
            (theorem2_workload(), 3),
            (update_concurrency_schedule(), 2),
            (serial_counter_workload(5), 5),
        ] {
            assert_eq!(schedule.transaction_count(), txs);
            assert!(!schedule.steps.is_empty());
            for i in 0..txs {
                assert!(
                    schedule.pinned_timestamp(i).is_some(),
                    "transaction {i} must have a pinned timestamp"
                );
            }
        }
    }

    #[test]
    fn serial_schedules_are_detected_as_serial() {
        assert!(serial_abort_schedule().is_serial());
        assert!(serial_counter_workload(4).is_serial());
        // The ghost-abort schedule is serial too (that is what makes the abort
        // so surprising); the Theorem 2 and §9 schedules are interleaved.
        assert!(ghost_abort_schedule().is_serial());
        assert!(!theorem2_workload().is_serial());
        assert!(!update_concurrency_schedule().is_serial());
    }
}
