//! # mvtl-baselines
//!
//! The baseline concurrency-control engines the paper compares MVTL against in
//! §8: **MVTO+** (multiversion timestamp ordering without cascading aborts) and
//! **strict two-phase locking (2PL)** with timeouts.
//!
//! Both engines implement the same
//! [`TransactionalKV`](mvtl_common::TransactionalKV) trait as the MVTL engines
//! so that the workload harness, the serializability checker and the benchmarks
//! can drive all protocols on identical inputs.
//!
//! These are independent implementations — they do not go through the MVTL
//! lock table — matching the paper's setup where "implementations of MVTO+ and
//! 2PL use the same framework, but run a different client protocol and keep a
//! different server state: 2PL stores a single reader-writer lock per key,
//! while MVTO+ stores a single skip list per key containing versions and
//! associated locks" (§8.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mvto;
mod tpl;

pub use mvto::MvtoStore;
pub use tpl::TwoPhaseLockingStore;
