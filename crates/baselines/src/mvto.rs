//! MVTO+ : multiversion timestamp ordering without cascading aborts (§3).

use mvtl_clock::ClockSource;
use mvtl_common::{
    AbortReason, ActiveTxnRegistry, CommitInfo, Key, ProcessId, StoreStats, Timestamp,
    TransactionalKV, TxError, TxId, TxStatus, TxnPin,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One committed version with its read-timestamp.
#[derive(Debug, Clone)]
struct MvtoVersion<V> {
    value: V,
    /// The largest timestamp with which this version was read.
    rts: Timestamp,
}

/// Per-key state: the version list plus the read-timestamp of the initial `⊥`
/// version ("the read-timestamp of X at version 0" in the §5.3 example).
#[derive(Debug)]
struct MvtoKeyState<V> {
    versions: BTreeMap<Timestamp, MvtoVersion<V>>,
    bottom_rts: Timestamp,
    purged_below: Timestamp,
    purged: usize,
}

impl<V> Default for MvtoKeyState<V> {
    fn default() -> Self {
        MvtoKeyState {
            versions: BTreeMap::new(),
            bottom_rts: Timestamp::ZERO,
            purged_below: Timestamp::ZERO,
            purged: 0,
        }
    }
}

impl<V: Clone> MvtoKeyState<V> {
    /// Latest committed version strictly below `ts`, or the `⊥` version.
    fn latest_before(&self, ts: Timestamp) -> Result<(Timestamp, Option<V>), Timestamp> {
        match self.versions.range(..ts).next_back() {
            Some((t, v)) => Ok((*t, Some(v.value.clone()))),
            None => {
                if self.purged > 0 && ts <= self.purged_below {
                    Err(self.purged_below)
                } else {
                    Ok((Timestamp::ZERO, None))
                }
            }
        }
    }

    /// Records that the version at `version_ts` was read at `reader_ts`.
    fn bump_rts(&mut self, version_ts: Timestamp, reader_ts: Timestamp) {
        if version_ts.is_zero() {
            if reader_ts > self.bottom_rts {
                self.bottom_rts = reader_ts;
            }
        } else if let Some(v) = self.versions.get_mut(&version_ts) {
            if reader_ts > v.rts {
                v.rts = reader_ts;
            }
        }
    }

    /// The MVTO write rule: a write at `ts` is allowed only if the version it
    /// would supersede has not been read at a timestamp above `ts`.
    fn write_allowed(&self, ts: Timestamp) -> bool {
        match self.versions.range(..ts).next_back() {
            Some((_, v)) => v.rts <= ts,
            None => self.bottom_rts <= ts,
        }
    }

    fn install(&mut self, ts: Timestamp, value: V) {
        self.versions.insert(
            ts,
            MvtoVersion {
                value,
                rts: Timestamp::ZERO,
            },
        );
    }

    fn purge_below(&mut self, bound: Timestamp) -> usize {
        let keep = self.versions.range(..bound).next_back().map(|(t, _)| *t);
        let to_remove: Vec<Timestamp> = self
            .versions
            .range(..bound)
            .map(|(t, _)| *t)
            .filter(|t| Some(*t) != keep)
            .collect();
        let removed = to_remove.len();
        for t in to_remove {
            self.versions.remove(&t);
        }
        if bound > self.purged_below {
            self.purged_below = bound;
        }
        self.purged += removed;
        removed
    }
}

/// A transaction handle of the MVTO+ engine.
#[derive(Debug)]
pub struct MvtoTransaction<V> {
    id: TxId,
    ts: Timestamp,
    status: TxStatus,
    read_set: Vec<(Key, Timestamp)>,
    writes: Vec<(Key, V)>,
    /// Ticket in the store's active-transaction registry (GC watermark).
    gc_pin: Option<TxnPin>,
}

impl<V> MvtoTransaction<V> {
    /// The timestamp this transaction serializes at.
    #[must_use]
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }
}

/// The MVTO+ engine (§3).
///
/// Each transaction is assigned a timestamp at begin. Reads return the version
/// with the largest timestamp below the transaction's timestamp and record a
/// *read-timestamp* on that version; writes are buffered and validated at
/// commit: a write is rejected if the version it would supersede was already
/// read by a transaction with a larger timestamp. Unlike plain MVTO, versions
/// become visible only at commit, so cascading aborts cannot occur.
///
/// Aborted transactions leave their read-timestamps behind — this is precisely
/// the behaviour that causes ghost aborts (§5.5) and serial aborts under skewed
/// clocks (§5.3), both of which the MVTL policies remove.
pub struct MvtoStore<V> {
    clock: Arc<dyn ClockSource>,
    shards: Vec<MvtoShard<V>>,
    /// In-flight transactions, pinned at their begin timestamp; the minimum
    /// is the GC low watermark (reads anchor strictly below `txn.ts`).
    active: ActiveTxnRegistry,
}

/// One shard of the key map: keys hash to a shard, each key owns a latched
/// per-key state.
type MvtoShard<V> = RwLock<HashMap<Key, Arc<Mutex<MvtoKeyState<V>>>>>;

impl<V> MvtoStore<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an MVTO+ store reading timestamps from `clock`.
    #[must_use]
    pub fn new(clock: Arc<dyn ClockSource>) -> Self {
        MvtoStore {
            clock,
            shards: (0..64)
                .map(|_| RwLock::named("baselines.mvto.shard", 54, HashMap::new()))
                .collect(),
            active: ActiveTxnRegistry::new(),
        }
    }

    fn cell(&self, key: Key) -> Arc<Mutex<MvtoKeyState<V>>> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &self.shards[(hasher.finish() as usize) % self.shards.len()];
        if let Some(cell) = shard.read().get(&key) {
            return Arc::clone(cell);
        }
        let mut map = shard.write();
        Arc::clone(map.entry(key).or_insert_with(|| {
            // Commit latches several key mutexes at once (sorted): a group site.
            Arc::new(Mutex::named_group(
                "baselines.mvto.key",
                56,
                MvtoKeyState::default(),
            ))
        }))
    }

    /// Purges versions older than `bound` (keeping the most recent one per
    /// key), as triggered by the timestamp service (§8.1). Returns the number
    /// of versions removed.
    ///
    /// Cells are never reclaimed here: an empty `MvtoKeyState` still carries
    /// the read-timestamp of the `⊥` version (`bottom_rts`), which MVTO+'s
    /// write rule consults — discarding it would re-admit writes below past
    /// reads. This is exactly the "aborted transactions leave their
    /// read-timestamps behind" footprint the MVTL policies avoid.
    pub fn purge_below(&self, bound: Timestamp) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let cells: Vec<_> = shard.read().values().cloned().collect();
            for cell in cells {
                removed += cell.lock().purge_below(bound);
            }
        }
        removed
    }

    /// Total number of versions currently stored (state-size experiments).
    #[must_use]
    pub fn version_count(&self) -> usize {
        let mut count = 0;
        for shard in &self.shards {
            let cells: Vec<_> = shard.read().values().cloned().collect();
            for cell in cells {
                count += cell.lock().versions.len();
            }
        }
        count
    }

    /// The smallest begin timestamp among in-flight transactions, or `None`
    /// when none is active. Reads anchor strictly below the transaction's
    /// begin timestamp, so purging below this bound never aborts a live
    /// transaction.
    #[must_use]
    pub fn low_watermark(&self) -> Option<Timestamp> {
        self.active.low_watermark()
    }

    fn release_pin(&self, txn: &mut MvtoTransaction<V>) {
        if let Some(pin) = txn.gc_pin.take() {
            self.active.deregister(pin);
        }
    }
}

impl<V> TransactionalKV<V> for MvtoStore<V>
where
    V: Clone + Send + Sync + 'static,
{
    type Txn = MvtoTransaction<V>;

    fn begin_at(&self, process: ProcessId, pinned: Option<Timestamp>) -> Self::Txn {
        let ts = match pinned {
            Some(t) => Timestamp::new(t.value, process.0),
            None => Timestamp::new(self.clock.now(process), process.0),
        };
        MvtoTransaction {
            id: TxId::fresh(),
            ts,
            status: TxStatus::Active,
            read_set: Vec::new(),
            writes: Vec::new(),
            gc_pin: Some(self.active.register(ts)),
        }
    }

    fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<V>, TxError> {
        if txn.status != TxStatus::Active {
            return Err(TxError::TransactionFinished);
        }
        // Read-your-own-writes from the buffered write set.
        if let Some((_, v)) = txn.writes.iter().rev().find(|(k, _)| *k == key) {
            return Ok(Some(v.clone()));
        }
        let cell = self.cell(key);
        let mut state = cell.lock();
        match state.latest_before(txn.ts) {
            Ok((version_ts, value)) => {
                state.bump_rts(version_ts, txn.ts);
                txn.read_set.push((key, version_ts));
                Ok(value)
            }
            Err(bound) => {
                txn.status = TxStatus::Aborted;
                self.release_pin(txn);
                Err(TxError::aborted(AbortReason::VersionPurged {
                    key,
                    below: bound,
                }))
            }
        }
    }

    fn write(&self, txn: &mut Self::Txn, key: Key, value: V) -> Result<(), TxError> {
        if txn.status != TxStatus::Active {
            return Err(TxError::TransactionFinished);
        }
        if let Some(slot) = txn.writes.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            txn.writes.push((key, value));
        }
        Ok(())
    }

    fn commit(&self, mut txn: Self::Txn) -> Result<CommitInfo, TxError> {
        if txn.status != TxStatus::Active {
            return Err(TxError::TransactionFinished);
        }
        // Latch every written key (in key order, to avoid latch deadlocks),
        // validate the MVTO write rule on all of them, then install atomically.
        let mut write_keys: Vec<Key> = txn.writes.iter().map(|(k, _)| *k).collect();
        write_keys.sort();
        write_keys.dedup();
        let cells: Vec<(Key, Arc<Mutex<MvtoKeyState<V>>>)> =
            write_keys.iter().map(|k| (*k, self.cell(*k))).collect();
        let mut guards: Vec<(Key, parking_lot::MutexGuard<'_, MvtoKeyState<V>>)> = Vec::new();
        for (key, cell) in &cells {
            guards.push((*key, cell.lock()));
        }
        let conflicting_key = guards
            .iter()
            .find(|(_, guard)| !guard.write_allowed(txn.ts))
            .map(|(key, _)| *key);
        if let Some(key) = conflicting_key {
            drop(guards);
            txn.status = TxStatus::Aborted;
            self.release_pin(&mut txn);
            return Err(TxError::aborted(AbortReason::WriteConflict { key }));
        }
        for (key, value) in txn.writes.drain(..) {
            if let Some((_, guard)) = guards.iter_mut().find(|(k, _)| *k == key) {
                guard.install(txn.ts, value);
            }
        }
        drop(guards);
        txn.status = TxStatus::Committed;
        self.release_pin(&mut txn);
        Ok(CommitInfo {
            tx: txn.id,
            commit_ts: Some(txn.ts),
            reads: txn.read_set.clone(),
            writes: write_keys,
        })
    }

    fn abort(&self, mut txn: Self::Txn) {
        // Buffered writes disappear; read-timestamps, by design, stay.
        txn.status = TxStatus::Aborted;
        self.release_pin(&mut txn);
    }

    fn name(&self) -> &'static str {
        "mvto+"
    }

    fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for shard in &self.shards {
            let cells: Vec<_> = shard.read().values().cloned().collect();
            for cell in cells {
                let state = cell.lock();
                stats.keys += 1;
                stats.versions += state.versions.len();
                stats.purged_versions += state.purged;
            }
        }
        stats
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        (MvtoStore::purge_below(self, bound), 0)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        MvtoStore::low_watermark(self)
    }

    fn recover_install(
        &self,
        writes: Vec<(Key, V)>,
        commit_ts: Option<Timestamp>,
    ) -> Result<(), TxError> {
        // MVTO+ serializes by timestamp, so recovery re-installs each version
        // at the timestamp the pre-crash commit chose.
        let ts = commit_ts.ok_or_else(|| {
            TxError::Internal("mvto+ recovery requires the original commit timestamp".into())
        })?;
        for (key, value) in writes {
            self.cell(key).lock().install(ts, value);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_clock::{GlobalClock, ManualClock};

    fn manual_store() -> (MvtoStore<u64>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let store = MvtoStore::new(Arc::clone(&clock) as Arc<dyn ClockSource>);
        (store, clock)
    }

    #[test]
    fn read_write_roundtrip() {
        let store: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
        let mut w = store.begin(ProcessId(0));
        store.write(&mut w, Key(1), 42).unwrap();
        store.commit(w).unwrap();
        let mut r = store.begin(ProcessId(1));
        assert_eq!(store.read(&mut r, Key(1)).unwrap(), Some(42));
        store.commit(r).unwrap();
    }

    #[test]
    fn read_your_own_writes() {
        let store: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
        let mut tx = store.begin(ProcessId(0));
        store.write(&mut tx, Key(1), 1).unwrap();
        assert_eq!(store.read(&mut tx, Key(1)).unwrap(), Some(1));
        store.commit(tx).unwrap();
    }

    #[test]
    fn write_below_read_timestamp_aborts() {
        // The serial-abort schedule of §5.3.
        let (store, clock) = manual_store();
        clock.script(ProcessId(2), vec![2]);
        clock.script(ProcessId(1), vec![1]);
        let mut t2 = store.begin(ProcessId(2));
        assert_eq!(store.read(&mut t2, Key(1)).unwrap(), None);
        store.commit(t2).unwrap();
        let mut t1 = store.begin(ProcessId(1));
        store.write(&mut t1, Key(1), 5).unwrap();
        assert!(store.commit(t1).is_err());
    }

    #[test]
    fn ghost_abort_schedule() {
        // §5.5: T3 R(X) C; T2 R(Y) W(X) A; T1 W(Y) A — the abort of T1 is a
        // ghost abort because its only conflict is with the aborted T2.
        let (store, clock) = manual_store();
        clock.script(ProcessId(1), vec![1]);
        clock.script(ProcessId(2), vec![2]);
        clock.script(ProcessId(3), vec![3]);
        let x = Key(1);
        let y = Key(2);
        let mut t1 = store.begin(ProcessId(1));
        let mut t2 = store.begin(ProcessId(2));
        let mut t3 = store.begin(ProcessId(3));
        let _ = store.read(&mut t3, x).unwrap();
        store.commit(t3).unwrap();
        let _ = store.read(&mut t2, y).unwrap();
        store.write(&mut t2, x, 20).unwrap();
        assert!(store.commit(t2).is_err());
        store.write(&mut t1, y, 10).unwrap();
        assert!(
            store.commit(t1).is_err(),
            "MVTO+ must exhibit the ghost abort"
        );
    }

    #[test]
    fn blind_writes_do_not_conflict() {
        let (store, clock) = manual_store();
        clock.script(ProcessId(1), vec![10]);
        clock.script(ProcessId(2), vec![11]);
        clock.script(ProcessId(3), vec![30]);
        let mut a = store.begin(ProcessId(1));
        let mut b = store.begin(ProcessId(2));
        store.write(&mut a, Key(1), 1).unwrap();
        store.write(&mut b, Key(1), 2).unwrap();
        store.commit(b).unwrap();
        store.commit(a).unwrap();
        let mut r = store.begin(ProcessId(3));
        assert_eq!(store.read(&mut r, Key(1)).unwrap(), Some(2));
        store.commit(r).unwrap();
    }

    #[test]
    fn readers_in_the_past_see_old_versions() {
        let (store, clock) = manual_store();
        clock.script(ProcessId(1), vec![10]);
        clock.script(ProcessId(2), vec![20]);
        clock.script(ProcessId(3), vec![15]);
        let mut w1 = store.begin(ProcessId(1));
        store.write(&mut w1, Key(1), 100).unwrap();
        store.commit(w1).unwrap();
        let mut w2 = store.begin(ProcessId(2));
        store.write(&mut w2, Key(1), 200).unwrap();
        store.commit(w2).unwrap();
        // A reader between the two versions sees the older one.
        let mut r = store.begin(ProcessId(3));
        assert_eq!(store.read(&mut r, Key(1)).unwrap(), Some(100));
        store.commit(r).unwrap();
    }

    #[test]
    fn watermark_tracks_active_transactions_for_gc() {
        let store: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
        assert_eq!(store.low_watermark(), None);
        let t1 = store.begin(ProcessId(1));
        let t2 = store.begin(ProcessId(2));
        assert_eq!(store.low_watermark(), Some(t1.timestamp()));
        store.abort(t1);
        assert_eq!(store.low_watermark(), Some(t2.timestamp()));
        store.commit(t2).unwrap();
        assert_eq!(store.low_watermark(), None);
    }

    #[test]
    fn stats_report_versions_and_purges() {
        let store: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
        for i in 0..4u64 {
            let mut tx = store.begin(ProcessId(0));
            store.write(&mut tx, Key(1), i).unwrap();
            store.commit(tx).unwrap();
        }
        let stats = TransactionalKV::stats(&store);
        assert_eq!(stats.keys, 1);
        assert_eq!(stats.versions, 4);
        assert_eq!(stats.lock_entries, 0, "MVTO+ has no interval locks");
        let (removed, locks) = TransactionalKV::purge_below(&store, Timestamp::MAX);
        assert_eq!((removed, locks), (3, 0));
        assert_eq!(TransactionalKV::stats(&store).purged_versions, 3);
    }

    #[test]
    fn purging_bounds_version_count() {
        let store: MvtoStore<u64> = MvtoStore::new(Arc::new(GlobalClock::new()));
        for i in 0..10u64 {
            let mut tx = store.begin(ProcessId(0));
            store.write(&mut tx, Key(1), i).unwrap();
            store.commit(tx).unwrap();
        }
        assert_eq!(store.version_count(), 10);
        let removed = store.purge_below(Timestamp::MAX);
        assert_eq!(removed, 9);
        assert_eq!(store.version_count(), 1);
        let mut tx = store.begin(ProcessId(0));
        assert_eq!(store.read(&mut tx, Key(1)).unwrap(), Some(9));
        store.commit(tx).unwrap();
    }
}
