//! Strict two-phase locking (2PL) with timeouts, the lock-based baseline of §8.

use mvtl_clock::ClockSource;
use mvtl_common::{
    AbortReason, CommitInfo, Key, LockMode, ProcessId, Timestamp, TransactionalKV, TxError, TxId,
    TxStatus,
};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct TplKeyState<V> {
    readers: HashSet<TxId>,
    writer: Option<TxId>,
    /// Single committed version, tagged with a logical commit sequence number
    /// so that histories can still be checked for serializability.
    value: Option<(Timestamp, V)>,
}

impl<V> Default for TplKeyState<V> {
    fn default() -> Self {
        TplKeyState {
            readers: HashSet::new(),
            writer: None,
            value: None,
        }
    }
}

impl<V> TplKeyState<V> {
    fn can_lock(&self, tx: TxId, mode: LockMode) -> bool {
        match mode {
            LockMode::Read => self.writer.is_none() || self.writer == Some(tx),
            LockMode::Write => {
                (self.writer.is_none() || self.writer == Some(tx))
                    && self.readers.iter().all(|r| *r == tx)
            }
        }
    }

    fn lock(&mut self, tx: TxId, mode: LockMode) {
        match mode {
            LockMode::Read => {
                self.readers.insert(tx);
            }
            LockMode::Write => {
                self.readers.remove(&tx);
                self.writer = Some(tx);
            }
        }
    }

    fn unlock(&mut self, tx: TxId) {
        self.readers.remove(&tx);
        if self.writer == Some(tx) {
            self.writer = None;
        }
    }
}

#[derive(Debug)]
struct TplCell<V> {
    state: Mutex<TplKeyState<V>>,
    released: Condvar,
}

impl<V> Default for TplCell<V> {
    fn default() -> Self {
        TplCell {
            state: Mutex::named("baselines.tpl.key", 52, TplKeyState::default()),
            released: Condvar::new(),
        }
    }
}

/// A transaction handle of the 2PL engine.
#[derive(Debug)]
pub struct TplTransaction<V> {
    id: TxId,
    status: TxStatus,
    locked: Vec<Key>,
    read_set: Vec<(Key, Timestamp)>,
    writes: Vec<(Key, V)>,
}

/// Strict two-phase locking with a single reader-writer lock per key (§8.1).
///
/// Reads take shared locks, writes take exclusive locks at access time, and all
/// locks are held until commit or abort (strictness). Conflicting requests wait
/// up to a timeout; timing out aborts the transaction, which is both the
/// deadlock-resolution and the starvation-avoidance mechanism the paper's 2PL
/// baseline uses ("the commit rate for 2PL is not optimal because we use
/// timeouts", §8.4.1).
pub struct TwoPhaseLockingStore<V> {
    shards: Vec<RwLock<HashMap<Key, Arc<TplCell<V>>>>>,
    lock_timeout: Duration,
    commit_seq: AtomicU64,
    #[allow(dead_code)]
    clock: Arc<dyn ClockSource>,
}

impl<V> TwoPhaseLockingStore<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates a 2PL store. The clock is kept only so that all engines share a
    /// constructor shape; 2PL itself does not use timestamps.
    #[must_use]
    pub fn new(clock: Arc<dyn ClockSource>, lock_timeout: Duration) -> Self {
        TwoPhaseLockingStore {
            shards: (0..64)
                .map(|_| RwLock::named("baselines.tpl.shard", 50, HashMap::new()))
                .collect(),
            lock_timeout,
            commit_seq: AtomicU64::new(1),
            clock,
        }
    }

    fn cell(&self, key: Key) -> Arc<TplCell<V>> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &self.shards[(hasher.finish() as usize) % self.shards.len()];
        if let Some(cell) = shard.read().get(&key) {
            return Arc::clone(cell);
        }
        let mut map = shard.write();
        Arc::clone(map.entry(key).or_default())
    }

    fn acquire(
        &self,
        txn: &mut TplTransaction<V>,
        key: Key,
        mode: LockMode,
    ) -> Result<(), TxError> {
        let cell = self.cell(key);
        let deadline = Instant::now() + self.lock_timeout;
        let mut state = cell.state.lock();
        while !state.can_lock(txn.id, mode) {
            if cell.released.wait_until(&mut state, deadline).timed_out() {
                return Err(TxError::aborted(AbortReason::LockTimeout { key }));
            }
        }
        state.lock(txn.id, mode);
        if !txn.locked.contains(&key) {
            txn.locked.push(key);
        }
        Ok(())
    }

    fn release_all(&self, txn: &mut TplTransaction<V>) {
        for key in txn.locked.drain(..) {
            let cell = self.cell(key);
            {
                let mut state = cell.state.lock();
                state.unlock(txn.id);
            }
            cell.released.notify_all();
        }
    }
}

impl<V> TransactionalKV<V> for TwoPhaseLockingStore<V>
where
    V: Clone + Send + Sync + 'static,
{
    type Txn = TplTransaction<V>;

    fn begin_at(&self, _process: ProcessId, _pinned: Option<Timestamp>) -> Self::Txn {
        TplTransaction {
            id: TxId::fresh(),
            status: TxStatus::Active,
            locked: Vec::new(),
            read_set: Vec::new(),
            writes: Vec::new(),
        }
    }

    fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<V>, TxError> {
        if txn.status != TxStatus::Active {
            return Err(TxError::TransactionFinished);
        }
        if let Some((_, v)) = txn.writes.iter().rev().find(|(k, _)| *k == key) {
            return Ok(Some(v.clone()));
        }
        if let Err(e) = self.acquire(txn, key, LockMode::Read) {
            txn.status = TxStatus::Aborted;
            self.release_all(txn);
            return Err(e);
        }
        let cell = self.cell(key);
        let state = cell.state.lock();
        match &state.value {
            Some((version, v)) => {
                txn.read_set.push((key, *version));
                Ok(Some(v.clone()))
            }
            None => {
                txn.read_set.push((key, Timestamp::ZERO));
                Ok(None)
            }
        }
    }

    fn write(&self, txn: &mut Self::Txn, key: Key, value: V) -> Result<(), TxError> {
        if txn.status != TxStatus::Active {
            return Err(TxError::TransactionFinished);
        }
        if let Err(e) = self.acquire(txn, key, LockMode::Write) {
            txn.status = TxStatus::Aborted;
            self.release_all(txn);
            return Err(e);
        }
        if let Some(slot) = txn.writes.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            txn.writes.push((key, value));
        }
        Ok(())
    }

    /// The batch-native 2PL read: shared locks for the whole batch are taken
    /// in ascending key order, one acquisition per distinct key. The
    /// canonical order is the classic deadlock-avoidance discipline object
    /// locks need — two concurrent batches can no longer block on each
    /// other's keys in opposite orders, which under op-by-op execution shows
    /// up as timeout aborts.
    fn read_many(&self, txn: &mut Self::Txn, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        if txn.status != TxStatus::Active {
            return Err(TxError::TransactionFinished);
        }
        let mut need: Vec<Key> = keys
            .iter()
            .copied()
            .filter(|key| !txn.writes.iter().any(|(k, _)| k == key))
            .collect();
        need.sort_unstable();
        need.dedup();
        for key in &need {
            if let Err(e) = self.acquire(txn, *key, LockMode::Read) {
                txn.status = TxStatus::Aborted;
                self.release_all(txn);
                return Err(e);
            }
        }
        let mut fetched: HashMap<Key, Option<V>> = HashMap::with_capacity(need.len());
        for key in need {
            let cell = self.cell(key);
            let state = cell.state.lock();
            match &state.value {
                Some((version, v)) => {
                    txn.read_set.push((key, *version));
                    fetched.insert(key, Some(v.clone()));
                }
                None => {
                    txn.read_set.push((key, Timestamp::ZERO));
                    fetched.insert(key, None);
                }
            }
        }
        Ok(keys
            .iter()
            .map(|key| {
                txn.writes
                    .iter()
                    .rev()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
                    .or_else(|| fetched.get(key).cloned().flatten())
            })
            .collect())
    }

    /// The batch-native 2PL write: exclusive locks in ascending key order,
    /// one per distinct key (same deadlock-avoidance argument as
    /// [`read_many`](TransactionalKV::read_many)), then the buffered upserts.
    fn write_many(&self, txn: &mut Self::Txn, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        if txn.status != TxStatus::Active {
            return Err(TxError::TransactionFinished);
        }
        let mut keys: Vec<Key> = entries.iter().map(|(key, _)| *key).collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            if let Err(e) = self.acquire(txn, key, LockMode::Write) {
                txn.status = TxStatus::Aborted;
                self.release_all(txn);
                return Err(e);
            }
        }
        for (key, value) in entries {
            if let Some(slot) = txn.writes.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                txn.writes.push((key, value));
            }
        }
        Ok(())
    }

    fn commit(&self, mut txn: Self::Txn) -> Result<CommitInfo, TxError> {
        if txn.status != TxStatus::Active {
            return Err(TxError::TransactionFinished);
        }
        let commit_ts = Timestamp::new(self.commit_seq.fetch_add(1, Ordering::SeqCst), 0);
        let write_keys: Vec<Key> = txn.writes.iter().map(|(k, _)| *k).collect();
        for (key, value) in txn.writes.drain(..) {
            let cell = self.cell(key);
            let mut state = cell.state.lock();
            debug_assert_eq!(state.writer, Some(txn.id), "strictness violated");
            state.value = Some((commit_ts, value));
        }
        self.release_all(&mut txn);
        txn.status = TxStatus::Committed;
        Ok(CommitInfo {
            tx: txn.id,
            commit_ts: Some(commit_ts),
            reads: txn.read_set.clone(),
            writes: write_keys,
        })
    }

    fn abort(&self, mut txn: Self::Txn) {
        self.release_all(&mut txn);
        txn.status = TxStatus::Aborted;
    }

    fn name(&self) -> &'static str {
        "2pl"
    }

    fn recover_install(
        &self,
        writes: Vec<(Key, V)>,
        commit_ts: Option<Timestamp>,
    ) -> Result<(), TxError> {
        // The single committed version per key is tagged with the commit
        // sequence number, and the log carries it, so recovery keeps the
        // newest committed value per key even if records were logged out of
        // commit order. Logs written by engines without a timestamp replay in
        // log order under a fresh sequence number.
        let ts = commit_ts
            .unwrap_or_else(|| Timestamp::new(self.commit_seq.fetch_add(1, Ordering::SeqCst), 0));
        for (key, value) in writes {
            let cell = self.cell(key);
            let mut state = cell.state.lock();
            if state.value.as_ref().is_none_or(|(have, _)| *have < ts) {
                state.value = Some((ts, value));
            }
        }
        self.commit_seq.fetch_max(ts.value + 1, Ordering::SeqCst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_clock::GlobalClock;

    fn store(timeout_ms: u64) -> TwoPhaseLockingStore<u64> {
        TwoPhaseLockingStore::new(
            Arc::new(GlobalClock::new()),
            Duration::from_millis(timeout_ms),
        )
    }

    #[test]
    fn read_write_roundtrip() {
        let s = store(100);
        let mut w = s.begin(ProcessId(0));
        s.write(&mut w, Key(1), 7).unwrap();
        s.commit(w).unwrap();
        let mut r = s.begin(ProcessId(1));
        assert_eq!(s.read(&mut r, Key(1)).unwrap(), Some(7));
        s.commit(r).unwrap();
    }

    #[test]
    fn batched_ops_roundtrip_with_pending_writes_and_duplicates() {
        let s = store(100);
        let mut setup = s.begin(ProcessId(0));
        s.write_many(&mut setup, vec![(Key(1), 10), (Key(2), 20), (Key(1), 11)])
            .unwrap();
        s.commit(setup).unwrap();

        let mut tx = s.begin(ProcessId(1));
        s.write(&mut tx, Key(2), 99).unwrap();
        assert_eq!(
            s.read_many(&mut tx, &[Key(2), Key(1), Key(3), Key(1)])
                .unwrap(),
            vec![Some(99), Some(11), None, Some(11)]
        );
        // The repeated Key(1) took one shared lock, Key(2) came from the
        // write buffer without locking again.
        assert_eq!(tx.read_set.iter().filter(|(k, _)| *k == Key(1)).count(), 1);
        s.commit(tx).unwrap();
    }

    #[test]
    fn writer_blocks_writer_until_timeout() {
        let s = store(20);
        let mut a = s.begin(ProcessId(0));
        s.write(&mut a, Key(1), 1).unwrap();
        let mut b = s.begin(ProcessId(1));
        let err = s.write(&mut b, Key(1), 2).unwrap_err();
        assert_eq!(
            err.abort_reason(),
            Some(&AbortReason::LockTimeout { key: Key(1) })
        );
        s.commit(a).unwrap();
        // After the first writer commits, a fresh transaction can write.
        let mut c = s.begin(ProcessId(1));
        s.write(&mut c, Key(1), 3).unwrap();
        s.commit(c).unwrap();
    }

    #[test]
    fn readers_share_and_block_writers() {
        let s = store(20);
        let mut r1 = s.begin(ProcessId(0));
        let mut r2 = s.begin(ProcessId(1));
        assert_eq!(s.read(&mut r1, Key(1)).unwrap(), None);
        assert_eq!(s.read(&mut r2, Key(1)).unwrap(), None);
        let mut w = s.begin(ProcessId(2));
        assert!(s.write(&mut w, Key(1), 1).is_err());
        s.commit(r1).unwrap();
        s.commit(r2).unwrap();
    }

    #[test]
    fn lock_upgrade_for_sole_reader() {
        let s = store(50);
        let mut tx = s.begin(ProcessId(0));
        assert_eq!(s.read(&mut tx, Key(1)).unwrap(), None);
        s.write(&mut tx, Key(1), 10).unwrap();
        assert_eq!(s.read(&mut tx, Key(1)).unwrap(), Some(10));
        s.commit(tx).unwrap();
    }

    #[test]
    fn aborted_transactions_release_their_locks() {
        let s = store(20);
        let mut a = s.begin(ProcessId(0));
        s.write(&mut a, Key(1), 1).unwrap();
        s.abort(a);
        let mut b = s.begin(ProcessId(1));
        s.write(&mut b, Key(1), 2).unwrap();
        s.commit(b).unwrap();
        let mut r = s.begin(ProcessId(2));
        assert_eq!(s.read(&mut r, Key(1)).unwrap(), Some(2));
        s.commit(r).unwrap();
    }

    #[test]
    fn commit_sequence_is_monotonic() {
        let s = store(100);
        let mut a = s.begin(ProcessId(0));
        s.write(&mut a, Key(1), 1).unwrap();
        let first = s.commit(a).unwrap().commit_ts.unwrap();
        let mut b = s.begin(ProcessId(0));
        s.write(&mut b, Key(2), 2).unwrap();
        let second = s.commit(b).unwrap().commit_ts.unwrap();
        assert!(second > first);
    }

    #[test]
    fn concurrent_transfers_preserve_totals() {
        let s = Arc::new(store(10));
        {
            let mut tx = s.begin(ProcessId(0));
            for k in 0..4u64 {
                s.write(&mut tx, Key(k), 100).unwrap();
            }
            s.commit(tx).unwrap();
        }
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..100usize {
                        let from = Key(((w + i) % 4) as u64);
                        let to = Key(((w + i + 1) % 4) as u64);
                        let mut tx = s.begin(ProcessId(w as u32));
                        let ok = (|| -> Result<(), TxError> {
                            let a = s.read(&mut tx, from)?.unwrap_or(0);
                            let b = s.read(&mut tx, to)?.unwrap_or(0);
                            if a > 0 {
                                s.write(&mut tx, from, a - 1)?;
                                s.write(&mut tx, to, b + 1)?;
                            }
                            Ok(())
                        })();
                        match ok {
                            Ok(()) => {
                                let _ = s.commit(tx);
                            }
                            Err(_) => { /* aborted inside read/write */ }
                        }
                    }
                });
            }
        });
        let mut tx = s.begin(ProcessId(9));
        let mut total = 0;
        for k in 0..4u64 {
            total += s.read(&mut tx, Key(k)).unwrap().unwrap_or(0);
        }
        s.commit(tx).unwrap();
        assert_eq!(total, 400);
    }
}
