//! # mvtl-faults
//!
//! Deterministic, seeded fault-injection plans for the §7 cross-shard
//! protocol and its `mvtl-sim` mirror.
//!
//! The cross-shard interval-intersection commit only proves itself on an
//! unfriendly machine: shards that answer late, drop their prepare response,
//! stall past the coordinator's patience, crash between `prepare` and the
//! decision, or read skewed clocks. This crate is the *schedule* side of that
//! story — it decides **which** faults fire **when**, deterministically, so a
//! failing run can be replayed from its `(fault spec, fault seed)` pair:
//!
//! * [`FaultSpec`] — the parsed form of the registry's `fault=` parameter, a
//!   `|`-separated list of clauses (`delay:0.3:200`, `drop:0.2:40`,
//!   `crash:0.1`, `stall:0.2:40`, `skew:512`).
//! * [`FaultPlan`] — a seeded decision oracle over a spec. Every decision is
//!   a pure function of `(seed, shard, sequence number, decision point)`, so
//!   a single-threaded workload replay produces a **byte-identical fault
//!   trace** across runs. The plan also counts injections per [`FaultKind`]
//!   and records a human-readable trace for the regression tests.
//! * [`named_schedules`] — the canonical schedule matrix (delay-only,
//!   drop-prepare, crash-mid-prepare, stall-timeout, skewed-clock) that the
//!   fault regression tests and the CI fault-matrix step replay through the
//!   MVSG checker.
//!
//! The *enforcement* side lives with each consumer: `mvtl-shard`'s
//! `FaultyBackend` decorator injects these faults between the coordinator and
//! a real shard, and `mvtl-sim` maps the same spec onto its network model
//! (message loss, server stalls, partitions, clock skew) so the simulator and
//! the real engine validate each other on the same schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The kinds of fault a plan can inject, used for counting and tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A per-operation service delay.
    Delay,
    /// A prepare response withheld past the coordinator's timeout.
    DropPrepare,
    /// A shard crash between `prepare` and the coordinator's decision.
    CrashMidPrepare,
    /// A shard stall before serving `prepare`.
    Stall,
    /// A per-shard clock offset applied to pinned begin timestamps.
    Skew,
}

impl FaultKind {
    /// All kinds, in counter order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Delay,
        FaultKind::DropPrepare,
        FaultKind::CrashMidPrepare,
        FaultKind::Stall,
        FaultKind::Skew,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::Delay => 0,
            FaultKind::DropPrepare => 1,
            FaultKind::CrashMidPrepare => 2,
            FaultKind::Stall => 3,
            FaultKind::Skew => 4,
        }
    }

    /// Short label used in traces and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Delay => "delay",
            FaultKind::DropPrepare => "drop",
            FaultKind::CrashMidPrepare => "crash",
            FaultKind::Stall => "stall",
            FaultKind::Skew => "skew",
        }
    }
}

/// A fault clause failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// Description of the problem.
    pub detail: String,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed fault spec: {}", self.detail)
    }
}

impl std::error::Error for FaultParseError {}

/// The parsed form of a `fault=` schedule string.
///
/// Grammar: clauses separated by `|`, each `name[:arg[:arg]]`:
///
/// | clause | meaning |
/// |--------|---------|
/// | `delay:<p>:<max_us>` | each shard operation is delayed with probability `p` by a deterministic duration in `[1, max_us]` µs |
/// | `drop:<p>[:hold_ms]` | a prepare **response** is withheld for `hold_ms` (default 40) ms with probability `p` — the shard prepared and holds its frozen locks, but the coordinator only learns by timing out |
/// | `crash:<p>` | the shard crashes between `prepare` and the decision with probability `p`; its volatile lock state is lost and recovery presumes abort |
/// | `stall:<p>:<ms>` | the shard stalls `ms` milliseconds before serving `prepare` with probability `p` |
/// | `skew:<max_ticks>` | each shard reads a constant per-shard clock offset drawn from `[-max_ticks, +max_ticks]`, applied to pinned begin timestamps (the ε-clock scenario) |
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Per-operation delay: `(probability, max microseconds)`.
    pub delay: Option<(f64, u64)>,
    /// Dropped prepare response: `(probability, hold milliseconds)`.
    pub drop_prepare: Option<(f64, u64)>,
    /// Crash between prepare and decision: probability.
    pub crash_mid_prepare: Option<f64>,
    /// Stall before serving prepare: `(probability, stall milliseconds)`.
    pub stall: Option<(f64, u64)>,
    /// Maximum per-shard clock offset in ticks (0 disables skew).
    pub skew_ticks: u64,
}

/// Default hold time (ms) for `drop:<p>` clauses that omit it.
pub const DEFAULT_DROP_HOLD_MS: u64 = 40;

impl FaultSpec {
    /// Parses a `fault=` schedule string (see the type-level grammar table).
    ///
    /// # Errors
    ///
    /// Returns a [`FaultParseError`] for unknown clause names, missing or
    /// non-numeric arguments, or probabilities outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<Self, FaultParseError> {
        let mut out = FaultSpec::default();
        for clause in spec.split('|').filter(|c| !c.is_empty()) {
            let mut parts = clause.split(':');
            let name = parts.next().unwrap_or("").trim();
            let args: Vec<&str> = parts.map(str::trim).collect();
            match name {
                "delay" => {
                    let (p, us) = prob_and_amount(clause, &args, None)?;
                    out.delay = Some((p, us.max(1)));
                }
                "drop" => {
                    let (p, ms) = prob_and_amount(clause, &args, Some(DEFAULT_DROP_HOLD_MS))?;
                    out.drop_prepare = Some((p, ms.max(1)));
                }
                "crash" => {
                    let p = parse_probability(clause, args.first().copied())?;
                    if args.len() > 1 {
                        return Err(extra_args(clause));
                    }
                    out.crash_mid_prepare = Some(p);
                }
                "stall" => {
                    let (p, ms) = prob_and_amount(clause, &args, None)?;
                    out.stall = Some((p, ms.max(1)));
                }
                "skew" => {
                    let ticks = args
                        .first()
                        .ok_or_else(|| missing_arg(clause, "max ticks"))?
                        .parse::<u64>()
                        .map_err(|_| bad_number(clause, args[0]))?;
                    if args.len() > 1 {
                        return Err(extra_args(clause));
                    }
                    out.skew_ticks = ticks;
                }
                other => {
                    return Err(FaultParseError {
                        detail: format!(
                            "unknown fault clause {other:?} in {clause:?} \
                             (known: delay, drop, crash, stall, skew)"
                        ),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Whether the spec injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == FaultSpec::default()
    }

    /// Whether the spec can make a prepare miss the coordinator's deadline
    /// (drops or stalls): such schedules need a commit timeout to recover.
    #[must_use]
    pub fn needs_commit_timeout(&self) -> bool {
        self.drop_prepare.is_some() || self.stall.is_some()
    }
}

fn missing_arg(clause: &str, what: &str) -> FaultParseError {
    FaultParseError {
        detail: format!("clause {clause:?} is missing its {what} argument"),
    }
}

fn extra_args(clause: &str) -> FaultParseError {
    FaultParseError {
        detail: format!("clause {clause:?} has too many arguments"),
    }
}

fn bad_number(clause: &str, value: &str) -> FaultParseError {
    FaultParseError {
        detail: format!("non-numeric argument {value:?} in clause {clause:?}"),
    }
}

fn parse_probability(clause: &str, arg: Option<&str>) -> Result<f64, FaultParseError> {
    let arg = arg.ok_or_else(|| missing_arg(clause, "probability"))?;
    let p = arg.parse::<f64>().map_err(|_| bad_number(clause, arg))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultParseError {
            detail: format!("probability {p} in clause {clause:?} is outside [0, 1]"),
        });
    }
    Ok(p)
}

fn prob_and_amount(
    clause: &str,
    args: &[&str],
    default_amount: Option<u64>,
) -> Result<(f64, u64), FaultParseError> {
    let p = parse_probability(clause, args.first().copied())?;
    let amount = match (args.get(1), default_amount) {
        (Some(raw), _) => raw.parse::<u64>().map_err(|_| bad_number(clause, raw))?,
        (None, Some(default)) => default,
        (None, None) => return Err(missing_arg(clause, "amount")),
    };
    if args.len() > 2 {
        return Err(extra_args(clause));
    }
    Ok((p, amount))
}

/// The canonical named fault schedules: the regression matrix the fault tests
/// and the CI fault-matrix step replay through the MVSG checker. Each entry is
/// `(name, fault spec string)`.
#[must_use]
pub fn named_schedules() -> &'static [(&'static str, &'static str)] {
    &[
        ("delay-only", "delay:0.4:200"),
        ("drop-prepare", "drop:0.3:30"),
        ("crash-mid-prepare", "crash:0.25"),
        ("stall-timeout", "stall:0.3:30"),
        ("skewed-clock", "skew:512|delay:0.2:50"),
    ]
}

/// Looks up a named schedule's spec string.
#[must_use]
pub fn named_schedule(name: &str) -> Option<&'static str> {
    named_schedules()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, spec)| *spec)
}

/// What the plan decided for one `prepare` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrepareFault {
    /// The shard crashes between `prepare` and the decision: its volatile
    /// lock state is lost, and its recovery presumes abort. The coordinator
    /// sees the prepare fail.
    Crash,
    /// The prepare completes and the shard holds its frozen locks, but the
    /// response is withheld for this long — the coordinator only learns of
    /// the prepare by timing out, and the late response is resolved by
    /// presumed abort.
    DropResponse(Duration),
    /// The shard stalls this long before even serving the prepare.
    Stall(Duration),
}

/// A seeded, deterministic fault-decision oracle over a [`FaultSpec`].
///
/// Decisions are pure functions of `(seed, shard, sequence, decision point)`
/// — no shared RNG stream — so per-shard operation order alone determines the
/// injected faults. A single-threaded workload replay therefore produces a
/// byte-identical [`FaultPlan::trace_string`] across runs with the same seed.
/// Under real concurrency the *decisions for a given (shard, seq) pair* are
/// still reproducible, but the global trace order follows thread interleaving.
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
    counters: [AtomicU64; 5],
    trace: Mutex<Vec<String>>,
}

/// Decision-point salts: keep the per-kind hash streams independent.
const SALT_DELAY: u64 = 0xD31A;
const SALT_DROP: u64 = 0xD709;
const SALT_CRASH: u64 = 0xC7A5;
const SALT_STALL: u64 = 0x57A1;
const SALT_SKEW: u64 = 0x5E3B;

impl FaultPlan {
    /// Builds a plan from a spec and a seed.
    #[must_use]
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultPlan {
            spec,
            seed,
            counters: Default::default(),
            trace: Mutex::named("faults.trace", 72, Vec::new()),
        }
    }

    /// Parses `spec` and builds a plan in one step.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultParseError`] when the spec string is malformed.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, FaultParseError> {
        Ok(FaultPlan::new(FaultSpec::parse(spec)?, seed))
    }

    /// The plan's spec.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of injections of `kind` so far.
    #[must_use]
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counters[kind.index()].load(Ordering::Relaxed)
    }

    /// Total injections across all kinds.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        FaultKind::ALL.iter().map(|k| self.count(*k)).sum()
    }

    /// The recorded fault trace, one line per injection, in injection order.
    #[must_use]
    pub fn trace(&self) -> Vec<String> {
        self.trace.lock().clone()
    }

    /// The trace as one newline-joined string — the unit of the byte-identity
    /// reproducibility check.
    #[must_use]
    pub fn trace_string(&self) -> String {
        self.trace.lock().join("\n")
    }

    /// The delay (if any) to inject before shard `shard` serves its `seq`-th
    /// operation.
    #[must_use]
    pub fn op_delay(&self, shard: usize, seq: u64) -> Option<Duration> {
        let (p, max_us) = self.spec.delay?;
        if !self.hit(SALT_DELAY, shard, seq, p) {
            return None;
        }
        let us = 1 + self.mix(SALT_DELAY ^ 0xFF, shard, seq) % max_us;
        self.record(FaultKind::Delay, shard, seq, &format!("us={us}"));
        Some(Duration::from_micros(us))
    }

    /// The fault (if any) to inject around shard `shard`'s `seq`-th prepare.
    /// At most one prepare fault fires per call; crash wins over drop wins
    /// over stall, each rolled independently.
    #[must_use]
    pub fn prepare_fault(&self, shard: usize, seq: u64) -> Option<PrepareFault> {
        if let Some(p) = self.spec.crash_mid_prepare {
            if self.hit(SALT_CRASH, shard, seq, p) {
                self.record(FaultKind::CrashMidPrepare, shard, seq, "");
                return Some(PrepareFault::Crash);
            }
        }
        if let Some((p, hold_ms)) = self.spec.drop_prepare {
            if self.hit(SALT_DROP, shard, seq, p) {
                self.record(
                    FaultKind::DropPrepare,
                    shard,
                    seq,
                    &format!("hold_ms={hold_ms}"),
                );
                return Some(PrepareFault::DropResponse(Duration::from_millis(hold_ms)));
            }
        }
        if let Some((p, stall_ms)) = self.spec.stall {
            if self.hit(SALT_STALL, shard, seq, p) {
                self.record(FaultKind::Stall, shard, seq, &format!("ms={stall_ms}"));
                return Some(PrepareFault::Stall(Duration::from_millis(stall_ms)));
            }
        }
        None
    }

    /// The constant clock offset (in ticks, signed) shard `shard` reads, for
    /// the ε-clock skew scenarios. Zero when the spec carries no skew.
    #[must_use]
    pub fn shard_skew(&self, shard: usize) -> i64 {
        let max = self.spec.skew_ticks;
        if max == 0 {
            return 0;
        }
        let span = 2 * max + 1;
        let draw = self.mix(SALT_SKEW, shard, 0) % span;
        draw as i64 - max as i64
    }

    /// Records one skew application (called by the enforcement layer when it
    /// actually perturbs a timestamp, so counters reflect real injections).
    pub fn note_skew(&self, shard: usize, seq: u64, offset: i64) {
        if offset != 0 {
            self.record(FaultKind::Skew, shard, seq, &format!("offset={offset}"));
        }
    }

    /// Deterministic `[0, 1)` draw for `(salt, shard, seq)` against `p`.
    fn hit(&self, salt: u64, shard: usize, seq: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 mantissa bits of the mix as a uniform draw in [0, 1).
        let draw = (self.mix(salt, shard, seq) >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }

    /// splitmix64 over the (seed, salt, shard, seq) tuple.
    fn mix(&self, salt: u64, shard: usize, seq: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((shard as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(seq.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn record(&self, kind: FaultKind, shard: usize, seq: u64, detail: &str) {
        self.counters[kind.index()].fetch_add(1, Ordering::Relaxed);
        let mut line = format!("{} shard={shard} seq={seq}", kind.label());
        if !detail.is_empty() {
            line.push(' ');
            line.push_str(detail);
        }
        self.trace.lock().push(line);
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("spec", &self.spec)
            .field("seed", &self.seed)
            .field("injected", &self.total_injected())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_clause_kind() {
        let spec =
            FaultSpec::parse("delay:0.5:200|drop:0.2:40|crash:0.1|stall:0.3:25|skew:512").unwrap();
        assert_eq!(spec.delay, Some((0.5, 200)));
        assert_eq!(spec.drop_prepare, Some((0.2, 40)));
        assert_eq!(spec.crash_mid_prepare, Some(0.1));
        assert_eq!(spec.stall, Some((0.3, 25)));
        assert_eq!(spec.skew_ticks, 512);
        assert!(!spec.is_empty());
        assert!(spec.needs_commit_timeout());
    }

    #[test]
    fn drop_hold_defaults_and_empty_spec() {
        let spec = FaultSpec::parse("drop:0.5").unwrap();
        assert_eq!(spec.drop_prepare, Some((0.5, DEFAULT_DROP_HOLD_MS)));
        assert!(FaultSpec::parse("").unwrap().is_empty());
        assert!(!FaultSpec::parse("crash:0.5")
            .unwrap()
            .needs_commit_timeout());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "flood:0.5",      // unknown clause
            "delay",          // missing probability
            "delay:0.5",      // missing amount
            "delay:2.0:10",   // probability out of range
            "delay:-0.1:10",  // probability out of range
            "crash:yes",      // non-numeric
            "skew:many",      // non-numeric
            "crash:0.5:7",    // extra args
            "skew:5:7",       // extra args
            "delay:0.5:10:9", // extra args
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn named_schedules_all_parse() {
        for (name, spec) in named_schedules() {
            let parsed = FaultSpec::parse(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!parsed.is_empty(), "{name} must inject something");
            assert_eq!(named_schedule(name), Some(*spec));
        }
        assert_eq!(named_schedule("nothing"), None);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let spec = FaultSpec::parse("delay:0.5:100|drop:0.3:20|crash:0.2|stall:0.3:10").unwrap();
        let a = FaultPlan::new(spec, 7);
        let b = FaultPlan::new(spec, 7);
        for shard in 0..4 {
            for seq in 0..64 {
                assert_eq!(a.op_delay(shard, seq), b.op_delay(shard, seq));
                assert_eq!(a.prepare_fault(shard, seq), b.prepare_fault(shard, seq));
                assert_eq!(a.shard_skew(shard), b.shard_skew(shard));
            }
        }
        assert_eq!(a.trace_string(), b.trace_string());
        assert!(a.total_injected() > 0, "schedule must fire at these rates");
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec::parse("delay:0.5:100").unwrap();
        let a = FaultPlan::new(spec, 1);
        let b = FaultPlan::new(spec, 2);
        let decisions = |p: &FaultPlan| -> Vec<bool> {
            (0..256).map(|seq| p.op_delay(0, seq).is_some()).collect()
        };
        assert_ne!(decisions(&a), decisions(&b));
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let spec = FaultSpec::parse("delay:0.25:100").unwrap();
        let plan = FaultPlan::new(spec, 99);
        let hits = (0..4_000)
            .filter(|seq| plan.op_delay(0, *seq).is_some())
            .count();
        let rate = hits as f64 / 4_000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate} far from 0.25");
        assert_eq!(plan.count(FaultKind::Delay), hits as u64);
    }

    #[test]
    fn skew_is_bounded_constant_per_shard_and_traceable() {
        let spec = FaultSpec::parse("skew:100").unwrap();
        let plan = FaultPlan::new(spec, 3);
        let mut nonzero = false;
        for shard in 0..32 {
            let skew = plan.shard_skew(shard);
            assert!(skew.unsigned_abs() <= 100);
            assert_eq!(skew, plan.shard_skew(shard), "constant per shard");
            nonzero |= skew != 0;
        }
        assert!(nonzero, "32 shards at ±100 ticks should include a nonzero");
        plan.note_skew(0, 0, 5);
        plan.note_skew(0, 1, 0); // zero offsets are not trace events
        assert_eq!(plan.count(FaultKind::Skew), 1);
        assert_eq!(plan.trace_string(), "skew shard=0 seq=0 offset=5");
    }

    #[test]
    fn prepare_fault_priority_is_crash_over_drop_over_stall() {
        let spec = FaultSpec::parse("crash:1.0|drop:1.0|stall:1.0:10").unwrap();
        let plan = FaultPlan::new(spec, 5);
        assert_eq!(plan.prepare_fault(0, 0), Some(PrepareFault::Crash));
        let spec = FaultSpec::parse("drop:1.0:20|stall:1.0:10").unwrap();
        let plan = FaultPlan::new(spec, 5);
        assert_eq!(
            plan.prepare_fault(0, 0),
            Some(PrepareFault::DropResponse(Duration::from_millis(20)))
        );
        let spec = FaultSpec::parse("stall:1.0:10").unwrap();
        let plan = FaultPlan::new(spec, 5);
        assert_eq!(
            plan.prepare_fault(0, 0),
            Some(PrepareFault::Stall(Duration::from_millis(10)))
        );
    }
}
