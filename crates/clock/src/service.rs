//! The timestamp service of §8.1.

use crate::ClockSource;
use mvtl_common::{ProcessId, Timestamp};

/// The purge broadcaster used in the paper's implementation (§8.1).
///
/// "A timestamp service periodically broadcasts a message with a time `T` in
/// the past, equal to the service's current time minus a constant `K`." The
/// broadcast has two effects, both modelled here:
///
/// 1. servers purge versions (and the associated lock state) older than `T`
///    that are not the most recent version of their key;
/// 2. clients advance their local clocks to `T` if they are behind, so slow
///    clients do not start transactions doomed to need purged versions.
///
/// The service itself is just arithmetic over a clock source; the engines and
/// the simulator decide *when* to broadcast (every `K`/4, every 15 s, ...) and
/// apply the two effects.
pub struct TimestampService<C> {
    clock: C,
    process: ProcessId,
    lag: u64,
}

impl<C: ClockSource> TimestampService<C> {
    /// Creates a service reading its own time from `clock` as `process`, and
    /// broadcasting `now − lag` (the paper uses `K = 15 s` locally and
    /// `K = 60 s` in the cloud).
    #[must_use]
    pub fn new(clock: C, process: ProcessId, lag: u64) -> Self {
        TimestampService {
            clock,
            process,
            lag,
        }
    }

    /// The lag constant `K`.
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.lag
    }

    /// Computes the broadcast value `T = now − K` as a purge bound timestamp.
    ///
    /// All process components compare greater than process 0 at the same
    /// value, so the bound uses process id 0 to be a safe lower bound.
    #[must_use]
    pub fn broadcast(&self) -> Timestamp {
        let now = self.clock.now(self.process);
        Timestamp::new(now.saturating_sub(self.lag), 0)
    }

    /// Applies the client-side effect of a broadcast: advance a slow client's
    /// clock to the broadcast value.
    pub fn advance_client(
        &self,
        client_clock: &dyn ClockSource,
        client: ProcessId,
        bound: Timestamp,
    ) {
        client_clock.advance_to(client, bound.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GlobalClock;

    #[test]
    fn broadcast_lags_behind_now() {
        let service = TimestampService::new(GlobalClock::starting_at(1000), ProcessId(99), 200);
        let bound = service.broadcast();
        assert!(bound.value >= 800 && bound.value <= 1000);
        assert_eq!(service.lag(), 200);
    }

    #[test]
    fn broadcast_saturates_at_zero() {
        let service = TimestampService::new(GlobalClock::starting_at(5), ProcessId(0), 1000);
        assert_eq!(service.broadcast().value, 0);
    }

    #[test]
    fn advance_client_moves_slow_clocks() {
        let service = TimestampService::new(GlobalClock::starting_at(1000), ProcessId(99), 100);
        let client_clock = GlobalClock::starting_at(10);
        let bound = service.broadcast();
        service.advance_client(&client_clock, ProcessId(3), bound);
        assert!(client_clock.now(ProcessId(3)) >= bound.value);
    }
}
