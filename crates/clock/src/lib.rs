//! # mvtl-clock
//!
//! Clock sources for timestamp-based concurrency control, plus the timestamp
//! service of §8.1.
//!
//! The paper's algorithms differ in what they assume about clocks:
//!
//! * MVTO+/MVTL-TO assume *synchronized* (or at least monotonic) clocks and
//!   suffer **serial aborts** when clocks are skewed (§5.3);
//! * MVTL-ε-clock only assumes *ε-synchronized* clocks;
//! * MVTIL (§8) assumes nothing about synchronization and shrinks its interval
//!   dynamically.
//!
//! To reproduce those behaviours we provide a family of [`ClockSource`]
//! implementations over a shared virtual global clock:
//!
//! * [`GlobalClock`] — a monotonically increasing shared counter (the "discrete
//!   global clock" of §2);
//! * [`BatchedClock`] — processes draw *blocks* of timestamps from a shared
//!   counter and hand them out locally (the batching flavour of §8.1's
//!   timestamp service); unique and per-process monotonic, but not globally
//!   ordered, so only the interval engines may use it;
//! * [`SkewedClock`] — a per-process view of the global clock with a constant
//!   offset per process (can violate monotonicity across processes, provoking
//!   serial aborts);
//! * [`EpsilonClock`] — a skewed clock whose offsets are bounded by ε;
//! * [`ManualClock`] — scripted readings, used by the verifier to replay the
//!   paper's schedules with pinned timestamps;
//! * [`SystemClock`] — wall-clock microseconds, for the threaded benchmarks.
//!
//! [`TimestampService`] reproduces the purge broadcaster of §8.1: it
//! periodically announces a time `T = now − K`; servers purge versions older
//! than `T` and clients advance slow clocks to `T`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod service;
mod sources;

pub use service::TimestampService;
pub use sources::{
    BatchedClock, ClockSource, EpsilonClock, GlobalClock, ManualClock, SkewedClock, SystemClock,
    MAX_CLOCK_BLOCK,
};
