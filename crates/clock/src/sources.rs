//! Clock source implementations.

use mvtl_common::{ProcessId, Timestamp};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of clock readings for transactions.
///
/// A reading is turned into a [`Timestamp`] by pairing it with the reading
/// process's id, which guarantees uniqueness across processes (§4.1).
pub trait ClockSource: Send + Sync {
    /// Returns the current clock value as seen by `process`.
    fn now(&self, process: ProcessId) -> u64;

    /// Returns the current reading as a full timestamp `(value, process)`.
    fn timestamp(&self, process: ProcessId) -> Timestamp {
        Timestamp::new(self.now(process), process.0)
    }

    /// Advances the clock of `process` to at least `to`, if the source supports
    /// it. Used by the timestamp service: "clients advance their local clocks
    /// to T if they are behind" (§8.1). The default implementation does
    /// nothing.
    fn advance_to(&self, process: ProcessId, to: u64) {
        let _ = (process, to);
    }
}

impl<C: ClockSource + ?Sized> ClockSource for Arc<C> {
    fn now(&self, process: ProcessId) -> u64 {
        (**self).now(process)
    }

    fn advance_to(&self, process: ProcessId, to: u64) {
        (**self).advance_to(process, to);
    }
}

/// The discrete global clock of §2: a shared, strictly monotonic counter.
///
/// Every call to [`ClockSource::now`] returns a larger value than any previous
/// call, across all processes. With this source, MVTO+/MVTL-TO never see the
/// clock anomalies that cause serial aborts.
#[derive(Debug, Default)]
pub struct GlobalClock {
    counter: AtomicU64,
}

impl GlobalClock {
    /// Creates a global clock starting at 1 (0 is reserved for the initial version).
    #[must_use]
    pub fn new() -> Self {
        GlobalClock {
            counter: AtomicU64::new(1),
        }
    }

    /// Creates a global clock starting at `start`.
    #[must_use]
    pub fn starting_at(start: u64) -> Self {
        GlobalClock {
            counter: AtomicU64::new(start),
        }
    }

    /// Peeks at the current value without advancing it.
    #[must_use]
    pub fn peek(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }
}

impl ClockSource for GlobalClock {
    fn now(&self, _process: ProcessId) -> u64 {
        self.counter.fetch_add(1, Ordering::SeqCst)
    }

    fn advance_to(&self, _process: ProcessId, to: u64) {
        self.counter.fetch_max(to, Ordering::SeqCst);
    }
}

/// How many per-process slots a [`BatchedClock`] keeps. Processes hash into
/// slots by id, so more processes than slots simply share blocks (still
/// correct, just less batching).
const BATCH_SLOTS: usize = 64;

/// Largest block size a [`BatchedClock`] accepts: the refill counter lives in
/// the low 16 bits of the packed per-process slot.
pub const MAX_CLOCK_BLOCK: u64 = (1 << 16) - 1;

/// A block-batched clock (§8.1 flavour): processes draw *blocks* of
/// timestamps from a shared counter and then hand them out locally, turning
/// N clock reads into one shared `fetch_add` per N.
///
/// Each process's state packs `(next << 16) | remaining` into one `AtomicU64`
/// slot; drawing a timestamp is a CAS on that slot, and only an empty slot
/// touches the shared counter (`fetch_add(block)`). The counter is always at
/// or beyond the end of every block ever handed out, so refills — including
/// the forced refill after [`BatchedClock::advance_to`] — keep each process's
/// readings strictly increasing.
///
/// **This clock is not globally monotonic**: process A can read a value from
/// an older block after process B read a newer one. That is exactly the
/// skew MVTIL tolerates by construction (§8.1 assumes nothing about clock
/// synchronization) and exactly what breaks MVTL-TO/MVTO+ — the registry
/// therefore only accepts `clock=batched` for the MVTIL engines. Stale blocks
/// are bounded by `block`, so GC watermarks and Δ-window intersection reason
/// about readings at most `block` behind the shared counter; a purge racing a
/// stale reader surfaces as a safe `VersionPurged` abort, never a lost write.
///
/// Timestamp values are capped at 2^48 by the packing; at one block per
/// microsecond that is several years of continuous operation.
#[derive(Debug)]
pub struct BatchedClock {
    /// The shared block allocator: the next value no block has claimed.
    counter: AtomicU64,
    /// Block size drawn on refill (1..=[`MAX_CLOCK_BLOCK`]).
    block: u64,
    /// Per-process `(next << 16) | remaining` slots, indexed by `id % slots`.
    slots: Vec<AtomicU64>,
}

impl BatchedClock {
    /// Creates a batched clock starting at 1, drawing `block` timestamps per
    /// refill. `block` is clamped into `1..=`[`MAX_CLOCK_BLOCK`].
    #[must_use]
    pub fn new(block: u64) -> Self {
        BatchedClock::starting_at(1, block)
    }

    /// Creates a batched clock whose first handed-out value is at least
    /// `start`.
    #[must_use]
    pub fn starting_at(start: u64, block: u64) -> Self {
        BatchedClock {
            counter: AtomicU64::new(start.max(1)),
            block: block.clamp(1, MAX_CLOCK_BLOCK),
            slots: (0..BATCH_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The block size drawn per refill.
    #[must_use]
    pub fn block(&self) -> u64 {
        self.block
    }

    /// The next value the shared allocator would hand out — an upper bound
    /// on every reading any process has observed.
    #[must_use]
    pub fn peek(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    fn slot(&self, process: ProcessId) -> &AtomicU64 {
        &self.slots[process.0 as usize % self.slots.len()]
    }
}

impl ClockSource for BatchedClock {
    fn now(&self, process: ProcessId) -> u64 {
        let slot = self.slot(process);
        loop {
            let packed = slot.load(Ordering::SeqCst);
            let (next, remaining) = (packed >> 16, packed & MAX_CLOCK_BLOCK);
            if remaining > 0 {
                let repacked = ((next + 1) << 16) | (remaining - 1);
                if slot
                    .compare_exchange_weak(packed, repacked, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return next;
                }
                continue;
            }
            // Empty slot: draw a fresh block. Losing the CAS leaks the block
            // (a gap in the timeline) — harmless, timestamps are never reused.
            let base = self.counter.fetch_add(self.block, Ordering::SeqCst);
            let repacked = ((base + 1) << 16) | (self.block - 1);
            if slot
                .compare_exchange(packed, repacked, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return base;
            }
        }
    }

    fn advance_to(&self, process: ProcessId, to: u64) {
        // Raise the shared allocator first, then drop the process's cached
        // block: its next reading refills at a base ≥ `to`, and every other
        // slot keeps monotonicity because the allocator only moved forward.
        self.counter.fetch_max(to, Ordering::SeqCst);
        self.slot(process).store(0, Ordering::SeqCst);
    }
}

/// A per-process view of an underlying clock with a constant signed offset per
/// process.
///
/// This models "modern multicore machines that do not guarantee that clocks
/// across cores are perfectly synchronized" (§5.3): two processes reading the
/// skewed clock back to back can observe decreasing values, which is exactly
/// the anomaly behind serial aborts.
pub struct SkewedClock<C> {
    inner: C,
    offsets: HashMap<u32, i64>,
    advances: Mutex<HashMap<u32, u64>>,
}

impl<C: ClockSource> SkewedClock<C> {
    /// Wraps `inner`, applying `offsets[process] ` to each reading. Processes
    /// without an entry read the inner clock unmodified.
    #[must_use]
    pub fn new(inner: C, offsets: HashMap<u32, i64>) -> Self {
        SkewedClock {
            inner,
            offsets,
            advances: Mutex::named("clock.advances", 74, HashMap::new()),
        }
    }

    /// The skew applied to `process`.
    #[must_use]
    pub fn offset(&self, process: ProcessId) -> i64 {
        self.offsets.get(&process.0).copied().unwrap_or(0)
    }
}

impl<C: ClockSource> ClockSource for SkewedClock<C> {
    fn now(&self, process: ProcessId) -> u64 {
        let base = self.inner.now(process);
        let offset = self.offset(process);
        let skewed = if offset >= 0 {
            base.saturating_add(offset as u64)
        } else {
            base.saturating_sub(offset.unsigned_abs())
        };
        let advances = self.advances.lock();
        let floor = advances.get(&process.0).copied().unwrap_or(0);
        skewed.max(floor)
    }

    fn advance_to(&self, process: ProcessId, to: u64) {
        let mut advances = self.advances.lock();
        let entry = advances.entry(process.0).or_insert(0);
        *entry = (*entry).max(to);
    }
}

/// An ε-synchronized clock: a skewed clock whose per-process offsets are
/// bounded by ε in absolute value (§2, §5.3).
pub struct EpsilonClock<C> {
    inner: SkewedClock<C>,
    epsilon: u64,
}

impl<C: ClockSource> EpsilonClock<C> {
    /// Wraps `inner` with the given per-process offsets, all of which must be
    /// within `[-epsilon, +epsilon]`.
    ///
    /// # Panics
    ///
    /// Panics if any offset exceeds ε in absolute value — that would violate
    /// the algorithm's assumption and silently produce wrong conclusions.
    #[must_use]
    pub fn new(inner: C, epsilon: u64, offsets: HashMap<u32, i64>) -> Self {
        for (p, off) in &offsets {
            assert!(
                off.unsigned_abs() <= epsilon,
                "offset {off} of process {p} exceeds epsilon {epsilon}"
            );
        }
        EpsilonClock {
            inner: SkewedClock::new(inner, offsets),
            epsilon,
        }
    }

    /// The synchronization bound ε.
    #[must_use]
    pub fn epsilon(&self) -> u64 {
        self.epsilon
    }
}

impl<C: ClockSource> ClockSource for EpsilonClock<C> {
    fn now(&self, process: ProcessId) -> u64 {
        self.inner.now(process)
    }

    fn advance_to(&self, process: ProcessId, to: u64) {
        self.inner.advance_to(process, to);
    }
}

/// A scripted clock: each process has a queue of readings to return, after
/// which the last reading repeats. Used by the verifier to pin the timestamps
/// of the paper's schedules ("T1 gets timestamp 1, T2 gets timestamp 2, ...").
#[derive(Debug, Default)]
pub struct ManualClock {
    scripts: Mutex<HashMap<u32, Vec<u64>>>,
    fallback: AtomicU64,
}

impl ManualClock {
    /// Creates a manual clock with no scripted readings; unscripted processes
    /// fall back to a shared monotonic counter.
    #[must_use]
    pub fn new() -> Self {
        ManualClock {
            scripts: Mutex::named("clock.scripts", 76, HashMap::new()),
            fallback: AtomicU64::new(1),
        }
    }

    /// Queues `readings` for `process` (returned in order; the last one repeats).
    pub fn script(&self, process: ProcessId, readings: Vec<u64>) {
        self.scripts.lock().insert(process.0, readings);
    }
}

impl ClockSource for ManualClock {
    fn now(&self, process: ProcessId) -> u64 {
        let mut scripts = self.scripts.lock();
        match scripts.get_mut(&process.0) {
            Some(queue) if !queue.is_empty() => {
                if queue.len() == 1 {
                    queue[0]
                } else {
                    queue.remove(0)
                }
            }
            _ => self.fallback.fetch_add(1, Ordering::SeqCst),
        }
    }
}

/// Wall-clock microseconds since the clock was created. Used by the threaded
/// benchmarks where real elapsed time matters.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl SystemClock {
    /// Creates a wall-clock source anchored at "now".
    #[must_use]
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl ClockSource for SystemClock {
    fn now(&self, _process: ProcessId) -> u64 {
        // +1 so that no transaction ever observes the reserved value 0.
        self.origin.elapsed().as_micros() as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);

    #[test]
    fn global_clock_is_strictly_monotonic() {
        let clock = GlobalClock::new();
        let a = clock.now(P0);
        let b = clock.now(P1);
        let c = clock.now(P0);
        assert!(a < b && b < c);
    }

    #[test]
    fn global_clock_advance() {
        let clock = GlobalClock::new();
        clock.advance_to(P0, 1000);
        assert!(clock.now(P0) >= 1000);
    }

    #[test]
    fn batched_clock_is_monotonic_per_process_across_refills() {
        let clock = BatchedClock::starting_at(10, 4);
        let mut last = 0;
        for _ in 0..20 {
            let v = clock.now(P0);
            assert!(
                v > last,
                "readings must strictly increase (got {v} after {last})"
            );
            last = v;
        }
        assert!(last >= 10 + 19, "20 draws from base 10 reach at least 29");
    }

    #[test]
    fn batched_clock_never_hands_out_the_same_value_twice() {
        let clock = BatchedClock::new(8);
        let mut seen = std::collections::HashSet::new();
        // Interleave three processes (two of which share a slot modulo the
        // slot count would need ids 64 apart; use distinct slots plus a
        // same-slot alias) and check global uniqueness.
        for i in 0..50u32 {
            for p in [0u32, 1, 64] {
                let v = clock.now(ProcessId(p));
                assert!(seen.insert(v), "duplicate reading {v} at round {i}");
            }
        }
    }

    #[test]
    fn batched_clock_advance_forces_a_fresh_block() {
        let clock = BatchedClock::starting_at(1, 16);
        let before = clock.now(P0);
        clock.advance_to(P0, 1_000);
        let after = clock.now(P0);
        assert!(
            after >= 1_000,
            "post-advance reading {after} must be >= 1000"
        );
        assert!(after > before);
        // Other processes refill from the raised allocator too, but readings
        // from blocks they already hold stay valid (and unique).
        let other = clock.now(P1);
        assert!(other != after);
    }

    #[test]
    fn batched_clock_clamps_block_size() {
        let clock = BatchedClock::new(0);
        assert_eq!(clock.block(), 1);
        let huge = BatchedClock::new(u64::MAX);
        assert_eq!(huge.block(), MAX_CLOCK_BLOCK);
        // Block size 1 degenerates to a shared counter: still unique.
        let a = clock.now(P0);
        let b = clock.now(P1);
        assert_ne!(a, b);
    }

    #[test]
    fn batched_clock_peek_bounds_every_reading() {
        let clock = BatchedClock::starting_at(5, 32);
        for i in 0..100u32 {
            let v = clock.now(ProcessId(i % 3));
            assert!(
                v < clock.peek(),
                "reading {v} must stay below the allocator"
            );
        }
    }

    #[test]
    fn timestamps_carry_process_ids() {
        let clock = GlobalClock::new();
        let t = clock.timestamp(ProcessId(7));
        assert_eq!(t.process, 7);
    }

    #[test]
    fn skewed_clock_can_go_backwards_across_processes() {
        let mut offsets = HashMap::new();
        offsets.insert(1u32, -100i64);
        let clock = SkewedClock::new(GlobalClock::starting_at(1000), offsets);
        let fast = clock.now(P0);
        let slow = clock.now(P1);
        assert!(slow < fast, "process 1 should observe an earlier time");
    }

    #[test]
    fn skewed_clock_advance_sets_floor() {
        let mut offsets = HashMap::new();
        offsets.insert(1u32, -100i64);
        let clock = SkewedClock::new(GlobalClock::starting_at(10), offsets);
        clock.advance_to(P1, 500);
        assert!(clock.now(P1) >= 500);
        // Other processes are unaffected.
        assert!(clock.now(P0) < 500);
    }

    #[test]
    fn epsilon_clock_enforces_bound() {
        let mut offsets = HashMap::new();
        offsets.insert(0u32, 3i64);
        offsets.insert(1u32, -4i64);
        let clock = EpsilonClock::new(GlobalClock::new(), 5, offsets);
        assert_eq!(clock.epsilon(), 5);
        let _ = clock.now(P0);
    }

    #[test]
    #[should_panic(expected = "exceeds epsilon")]
    fn epsilon_clock_rejects_large_offsets() {
        let mut offsets = HashMap::new();
        offsets.insert(0u32, 10i64);
        let _ = EpsilonClock::new(GlobalClock::new(), 5, offsets);
    }

    #[test]
    fn manual_clock_returns_script_then_repeats() {
        let clock = ManualClock::new();
        clock.script(P0, vec![5, 9]);
        assert_eq!(clock.now(P0), 5);
        assert_eq!(clock.now(P0), 9);
        assert_eq!(clock.now(P0), 9);
        // Unscripted process uses the fallback counter.
        let a = clock.now(P1);
        let b = clock.now(P1);
        assert!(b > a);
    }

    #[test]
    fn system_clock_is_nondecreasing() {
        let clock = SystemClock::new();
        let a = clock.now(P0);
        let b = clock.now(P0);
        assert!(b >= a);
        assert!(a >= 1);
    }

    #[test]
    fn arc_forwarding() {
        let clock: Arc<GlobalClock> = Arc::new(GlobalClock::new());
        let a = clock.now(P0);
        clock.advance_to(P0, a + 100);
        assert!(ClockSource::now(&clock, P0) >= a + 100);
    }
}
