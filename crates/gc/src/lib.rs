//! # mvtl-gc
//!
//! The watermark-safe background garbage collector for the real (threaded)
//! engines: the in-process analogue of the paper's §6 / §8.1 **timestamp
//! service**.
//!
//! The paper argues MVTL is practical because versions and locks do not have
//! to be kept forever: a service periodically announces a timestamp bound, old
//! state below the bound is purged, and the rare transaction that still needs
//! purged state aborts. The discrete-event simulator (`mvtl-sim`) reproduces
//! that for Figures 6–7; this crate does it for the real engines:
//!
//! * [`GcService`] — owns a background thread that, every
//!   [`GcConfig::interval`], purges a [`SweepTarget`] below
//!   `min(low_watermark, now − gc_lag)`:
//!   * `low_watermark` is the engine's active-transaction watermark — the
//!     smallest timestamp an in-flight transaction may still anchor a read
//!     on. Never purging at or above it means a sweep cannot abort a live
//!     transaction.
//!   * `now − gc_lag` is a *lagged clock sample*: the service remembers
//!     `(wall instant, clock reading)` pairs and purges below the reading
//!     taken at least [`GcConfig::lag`] ago, so the bound stays meaningful
//!     for any [`ClockSource`] (a logical counter has no notion of "50 ms
//!     ago" by itself). The lag keeps freshly committed versions readable by
//!     transactions that begin right after a sweep.
//!
//!   The thread shuts down cleanly when the service is dropped.
//! * [`GcEngine`] — pairs any [`TransactionalKV`] engine with its
//!   `GcService` and delegates the whole transactional surface, so it *is*
//!   an engine (including the object-safe `Engine` layer via the blanket
//!   impl). This is what the `mvtl-registry` crate hands out for specs like
//!   `"mvtil-early?gc_ms=100&gc_lag_ms=50"` (and
//!   `"sharded?shards=8&gc_ms=100"`, where one service sweeps all shards
//!   through the sharded store's aggregated watermark).
//!
//! # Example
//!
//! ```
//! use mvtl_clock::{ClockSource, GlobalClock};
//! use mvtl_common::{EngineExt, Key, ProcessId};
//! use mvtl_core::{policy::ToPolicy, MvtlConfig, MvtlStore};
//! use mvtl_gc::{GcConfig, GcEngine};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let clock = Arc::new(GlobalClock::new());
//! let store = Arc::new(MvtlStore::new(
//!     ToPolicy::new(),
//!     clock.clone() as Arc<dyn ClockSource>,
//!     MvtlConfig::default(),
//! ));
//! let engine = GcEngine::spawn(
//!     store,
//!     clock,
//!     GcConfig::default().with_interval(Duration::from_millis(5)),
//! );
//! let mut tx = EngineExt::begin(&engine, ProcessId(1));
//! tx.write(Key(1), 42u64).unwrap();
//! tx.commit().unwrap();
//! // Dropping `engine` stops the background sweeper.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mvtl_clock::ClockSource;
use mvtl_common::{
    CommitInfo, Engine, Key, ProcessId, StoreStats, Timestamp, TransactionalKV, TxError,
};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The process id GC sweeps read the clock as. Distinct from workload client
/// ids (which count up from 0) so per-process clock sources are unaffected.
const GC_PROCESS: ProcessId = ProcessId(u32::MAX);

/// Configuration of a [`GcService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcConfig {
    /// How often the background thread sweeps.
    pub interval: Duration,
    /// Wall-clock slack kept behind the current clock reading: a sweep purges
    /// below the clock sample taken at least this long ago (further capped by
    /// the engine's low watermark). Larger lags keep more history readable
    /// for transactions that begin between sweeps.
    pub lag: Duration,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            interval: Duration::from_millis(100),
            lag: Duration::from_millis(50),
        }
    }
}

impl GcConfig {
    /// The service configuration an [`MvtlConfig`](mvtl_core::MvtlConfig)
    /// asks for, when it asks for one: `None` when `gc_interval` is unset
    /// (no background GC), otherwise the store's interval and lag. This is
    /// how the store-level knobs become the single source of truth for the
    /// service — the registry derives the spawned service's configuration
    /// from the store config it built.
    #[must_use]
    pub fn from_store_config(config: &mvtl_core::MvtlConfig) -> Option<GcConfig> {
        config.gc_interval.map(|interval| GcConfig {
            interval,
            lag: config.gc_lag,
        })
    }

    /// Returns a configuration with the given sweep interval.
    #[must_use]
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Returns a configuration with the given clock lag.
    #[must_use]
    pub fn with_lag(mut self, lag: Duration) -> Self {
        self.lag = lag;
        self
    }
}

/// A snapshot of a [`GcService`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Sweeps performed (including ones that found nothing to purge).
    pub sweeps: u64,
    /// Sweeps that computed a purge bound and called `purge_below`.
    pub purges: u64,
    /// Total versions removed so far.
    pub versions_purged: u64,
    /// Total lock entries removed so far.
    pub lock_entries_purged: u64,
}

/// What the sweeper needs from an engine: its watermark and its purge hook.
///
/// Blanket-provided for `Arc<dyn Engine<V>>`; [`GcService::spawn_for`] and
/// [`GcEngine::spawn`] adapt any [`TransactionalKV`] store internally.
pub trait SweepTarget: Send + Sync + 'static {
    /// The smallest timestamp any in-flight transaction may still anchor a
    /// read on, or `None` when nothing is active (or untracked).
    fn low_watermark(&self) -> Option<Timestamp>;

    /// Purges versions and lock state older than `bound`. Returns
    /// `(versions_removed, lock_entries_removed)`.
    fn purge_below(&self, bound: Timestamp) -> (usize, usize);
}

impl<V: 'static> SweepTarget for Arc<dyn Engine<V>> {
    fn low_watermark(&self) -> Option<Timestamp> {
        Engine::low_watermark(self.as_ref())
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        Engine::purge_below(self.as_ref(), bound)
    }
}

/// Adapter from a concrete [`TransactionalKV`] store to a [`SweepTarget`].
struct KvTarget<V, S> {
    engine: Arc<S>,
    _values: PhantomData<fn() -> V>,
}

impl<V, S> SweepTarget for KvTarget<V, S>
where
    V: 'static,
    S: TransactionalKV<V> + 'static,
{
    fn low_watermark(&self) -> Option<Timestamp> {
        self.engine.low_watermark()
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        self.engine.purge_below(bound)
    }
}

struct GcShared {
    stop: Mutex<bool>,
    wake: Condvar,
    sweeps: AtomicU64,
    purges: AtomicU64,
    versions_purged: AtomicU64,
    lock_entries_purged: AtomicU64,
}

impl Default for GcShared {
    fn default() -> Self {
        GcShared {
            stop: Mutex::named("gc.stop", 90, false),
            wake: Condvar::new(),
            sweeps: AtomicU64::new(0),
            purges: AtomicU64::new(0),
            versions_purged: AtomicU64::new(0),
            lock_entries_purged: AtomicU64::new(0),
        }
    }
}

/// A background thread that periodically purges an engine below
/// `min(low_watermark, now − lag)`. Stops (and joins the thread) on drop.
pub struct GcService {
    shared: Arc<GcShared>,
    handle: Option<JoinHandle<()>>,
}

impl GcService {
    /// Spawns the sweeper over an explicit [`SweepTarget`], reading purge
    /// bounds from `clock`.
    ///
    /// The target is owned by the thread, so whatever it references stays
    /// alive at least as long as the service; dropping the service stops the
    /// thread before it could observe a half-dropped engine.
    #[must_use]
    pub fn spawn(
        target: Box<dyn SweepTarget>,
        clock: Arc<dyn ClockSource>,
        config: GcConfig,
    ) -> GcService {
        let shared = Arc::new(GcShared::default());
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("mvtl-gc".to_string())
            .spawn(move || Self::run(&thread_shared, target.as_ref(), clock.as_ref(), config))
            .expect("spawn GC thread");
        GcService {
            shared,
            handle: Some(handle),
        }
    }

    /// Spawns the sweeper for a shared [`TransactionalKV`] store (any real
    /// engine: `MvtlStore`, `ShardedStore`, the baselines).
    #[must_use]
    pub fn spawn_for<V, S>(
        engine: Arc<S>,
        clock: Arc<dyn ClockSource>,
        config: GcConfig,
    ) -> GcService
    where
        V: 'static,
        S: TransactionalKV<V> + 'static,
    {
        GcService::spawn(
            Box::new(KvTarget {
                engine,
                _values: PhantomData,
            }),
            clock,
            config,
        )
    }

    fn run(shared: &GcShared, target: &dyn SweepTarget, clock: &dyn ClockSource, config: GcConfig) {
        // (wall instant, clock reading) samples, oldest first. The front is
        // kept as the newest sample that is at least `lag` old, which is the
        // lag-derived part of the purge bound.
        let mut samples: VecDeque<(Instant, Timestamp)> = VecDeque::new();
        loop {
            {
                let mut guard = shared.stop.lock();
                if *guard {
                    return;
                }
                let _ = shared
                    .wake
                    .wait_until(&mut guard, Instant::now() + config.interval);
                if *guard {
                    return;
                }
            }
            shared.sweeps.fetch_add(1, Ordering::Relaxed);
            let now_wall = Instant::now();
            samples.push_back((now_wall, clock.timestamp(GC_PROCESS)));
            while samples.len() >= 2 && now_wall.duration_since(samples[1].0) >= config.lag {
                samples.pop_front();
            }
            let lagged = samples
                .front()
                .filter(|(taken, _)| now_wall.duration_since(*taken) >= config.lag)
                .map(|(_, ts)| *ts);
            let Some(mut bound) = lagged else {
                // The service is younger than the lag: nothing is old enough
                // to purge yet.
                continue;
            };
            if let Some(watermark) = target.low_watermark() {
                bound = bound.min(watermark);
            }
            let (versions, locks) = target.purge_below(bound);
            shared.purges.fetch_add(1, Ordering::Relaxed);
            shared
                .versions_purged
                .fetch_add(versions as u64, Ordering::Relaxed);
            shared
                .lock_entries_purged
                .fetch_add(locks as u64, Ordering::Relaxed);
        }
    }

    /// A snapshot of the service's counters.
    #[must_use]
    pub fn stats(&self) -> GcStats {
        GcStats {
            sweeps: self.shared.sweeps.load(Ordering::Relaxed),
            purges: self.shared.purges.load(Ordering::Relaxed),
            versions_purged: self.shared.versions_purged.load(Ordering::Relaxed),
            lock_entries_purged: self.shared.lock_entries_purged.load(Ordering::Relaxed),
        }
    }

    /// Stops the background thread and waits for it to exit. Called
    /// automatically on drop; explicit calls are idempotent.
    pub fn shutdown(&mut self) {
        {
            *self.shared.stop.lock() = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GcService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for GcService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcService")
            .field("running", &self.handle.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

/// An engine paired with the [`GcService`] that sweeps it: state stays
/// bounded for as long as the wrapper lives, and the sweeper stops when the
/// wrapper is dropped.
///
/// `GcEngine` delegates the whole [`TransactionalKV`] surface to the wrapped
/// store, so the blanket impl in `mvtl-common` gives it the object-safe
/// `Engine` layer for free — `Box<dyn Engine<V>>` works, which is how the
/// registry returns it for specs carrying `gc_ms`.
pub struct GcEngine<V, S> {
    inner: Arc<S>,
    service: GcService,
    _values: PhantomData<fn() -> V>,
}

impl<V, S> GcEngine<V, S>
where
    V: 'static,
    S: TransactionalKV<V> + 'static,
{
    /// Wraps `inner` and spawns its sweeper.
    #[must_use]
    pub fn spawn(inner: Arc<S>, clock: Arc<dyn ClockSource>, config: GcConfig) -> GcEngine<V, S> {
        let service = GcService::spawn_for(Arc::clone(&inner), clock, config);
        GcEngine {
            inner,
            service,
            _values: PhantomData,
        }
    }

    /// The garbage-collection service sweeping this engine.
    #[must_use]
    pub fn service(&self) -> &GcService {
        &self.service
    }

    /// The wrapped engine.
    #[must_use]
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }
}

impl<V, S> TransactionalKV<V> for GcEngine<V, S>
where
    V: 'static,
    S: TransactionalKV<V> + 'static,
{
    type Txn = S::Txn;

    fn begin_at(&self, process: ProcessId, pinned: Option<Timestamp>) -> Self::Txn {
        self.inner.begin_at(process, pinned)
    }

    fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<V>, TxError> {
        self.inner.read(txn, key)
    }

    fn write(&self, txn: &mut Self::Txn, key: Key, value: V) -> Result<(), TxError> {
        self.inner.write(txn, key, value)
    }

    // The batched surface must forward too: the trait defaults loop over
    // `read`/`write`, which would silently strip the inner engine's native
    // batched path from every GC-wrapped spec.
    fn read_many(&self, txn: &mut Self::Txn, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        self.inner.read_many(txn, keys)
    }

    fn write_many(&self, txn: &mut Self::Txn, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        self.inner.write_many(txn, entries)
    }

    fn commit(&self, txn: Self::Txn) -> Result<CommitInfo, TxError> {
        self.inner.commit(txn)
    }

    fn abort(&self, txn: Self::Txn) {
        self.inner.abort(txn);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        self.inner.purge_below(bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        self.inner.low_watermark()
    }

    fn recover_install(
        &self,
        writes: Vec<(Key, V)>,
        commit_ts: Option<Timestamp>,
    ) -> Result<(), TxError> {
        self.inner.recover_install(writes, commit_ts)
    }
}

impl<V, S: TransactionalKV<V>> std::fmt::Debug for GcEngine<V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcEngine")
            .field("engine", &self.inner.name())
            .field("service", &self.service)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_common::{EngineExt, Key};
    use mvtl_core::policy::ToPolicy;
    use mvtl_core::{MvtlConfig, MvtlStore};

    type Store = MvtlStore<u64, ToPolicy>;

    fn store_and_clock() -> (Arc<Store>, Arc<mvtl_clock::GlobalClock>) {
        let clock = Arc::new(mvtl_clock::GlobalClock::new());
        let store = Arc::new(MvtlStore::new(
            ToPolicy::new(),
            clock.clone() as Arc<dyn ClockSource>,
            MvtlConfig::default(),
        ));
        (store, clock)
    }

    fn wait_until(mut predicate: impl FnMut() -> bool) -> bool {
        for _ in 0..500 {
            if predicate() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    fn churn(engine: &dyn Engine<u64>, key: Key, rounds: u64) {
        for round in 0..rounds {
            let mut tx = engine.begin(ProcessId(1));
            tx.write(key, round).unwrap();
            tx.commit().unwrap();
        }
    }

    fn fast_gc() -> GcConfig {
        GcConfig {
            interval: Duration::from_millis(2),
            lag: Duration::ZERO,
        }
    }

    #[test]
    fn gc_engine_forwards_the_batched_surface() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Counts batched calls so a wrapper that falls back to the default
        /// per-key loops is caught.
        struct Probe {
            inner: Store,
            read_many_calls: AtomicUsize,
            write_many_calls: AtomicUsize,
        }

        impl TransactionalKV<u64> for Probe {
            type Txn = <Store as TransactionalKV<u64>>::Txn;

            fn begin_at(&self, process: ProcessId, pinned: Option<Timestamp>) -> Self::Txn {
                self.inner.begin_at(process, pinned)
            }

            fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<u64>, TxError> {
                self.inner.read(txn, key)
            }

            fn write(&self, txn: &mut Self::Txn, key: Key, value: u64) -> Result<(), TxError> {
                self.inner.write(txn, key, value)
            }

            fn read_many(
                &self,
                txn: &mut Self::Txn,
                keys: &[Key],
            ) -> Result<Vec<Option<u64>>, TxError> {
                self.read_many_calls.fetch_add(1, Ordering::Relaxed);
                self.inner.read_many(txn, keys)
            }

            fn write_many(
                &self,
                txn: &mut Self::Txn,
                entries: Vec<(Key, u64)>,
            ) -> Result<(), TxError> {
                self.write_many_calls.fetch_add(1, Ordering::Relaxed);
                self.inner.write_many(txn, entries)
            }

            fn commit(&self, txn: Self::Txn) -> Result<CommitInfo, TxError> {
                self.inner.commit(txn)
            }

            fn abort(&self, txn: Self::Txn) {
                self.inner.abort(txn);
            }

            fn name(&self) -> &'static str {
                "probe"
            }
        }

        let clock = Arc::new(mvtl_clock::GlobalClock::new());
        let probe = Arc::new(Probe {
            inner: MvtlStore::new(
                ToPolicy::new(),
                clock.clone() as Arc<dyn ClockSource>,
                MvtlConfig::default(),
            ),
            read_many_calls: AtomicUsize::new(0),
            write_many_calls: AtomicUsize::new(0),
        });
        let engine = GcEngine::spawn(
            Arc::clone(&probe),
            clock as Arc<dyn ClockSource>,
            GcConfig::default(),
        );
        let engine: &dyn Engine<u64> = &engine;

        let mut tx = engine.begin(ProcessId(1));
        tx.write_many(vec![(Key(1), 1), (Key(2), 2), (Key(3), 3)])
            .unwrap();
        assert_eq!(
            tx.read_many(&[Key(1), Key(2), Key(3)]).unwrap(),
            vec![Some(1), Some(2), Some(3)]
        );
        tx.commit().unwrap();

        // One batched call each reached the wrapped store — the GC wrapper
        // must not degrade batches into per-key loops.
        assert_eq!(probe.write_many_calls.load(Ordering::Relaxed), 1);
        assert_eq!(probe.read_many_calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn service_config_derives_from_the_store_config() {
        assert_eq!(GcConfig::from_store_config(&MvtlConfig::default()), None);
        let config = MvtlConfig::default()
            .with_gc_interval(Some(Duration::from_millis(25)))
            .with_gc_lag(Duration::from_millis(7));
        assert_eq!(
            GcConfig::from_store_config(&config),
            Some(GcConfig {
                interval: Duration::from_millis(25),
                lag: Duration::from_millis(7),
            })
        );
    }

    #[test]
    fn service_purges_old_versions_down_to_one() {
        let (store, clock) = store_and_clock();
        let engine: Arc<dyn Engine<u64>> = store.clone();
        let service = GcService::spawn(
            Box::new(Arc::clone(&engine)),
            clock as Arc<dyn ClockSource>,
            fast_gc(),
        );
        churn(engine.as_ref(), Key(1), 32);
        assert!(
            wait_until(|| engine.stats().versions <= 1),
            "GC must shrink the chain to the latest version, stats: {:?}",
            engine.stats()
        );
        assert!(service.stats().versions_purged >= 31);
        assert!(service.stats().purges > 0);
        // The latest value survives.
        let mut tx = engine.as_ref().begin(ProcessId(2));
        assert_eq!(tx.read(Key(1)).unwrap(), Some(31));
        tx.commit().unwrap();
    }

    #[test]
    fn watermark_protects_versions_needed_by_active_transactions() {
        let (store, clock) = store_and_clock();
        let engine: Arc<dyn Engine<u64>> = store.clone();
        let _service = GcService::spawn(
            Box::new(Arc::clone(&engine)),
            clock as Arc<dyn ClockSource>,
            fast_gc(),
        );
        churn(engine.as_ref(), Key(1), 4);
        // An in-flight reader anchors the watermark before further churn.
        let mut reader = TransactionalKV::begin(store.as_ref(), ProcessId(7));
        assert_eq!(store.read(&mut reader, Key(1)).unwrap(), Some(3));
        churn(engine.as_ref(), Key(1), 8);
        // Sweeps run, but the bound is capped at the reader's pin: the three
        // versions strictly below the reader's anchor are purged, while the
        // anchor itself and everything above it must survive.
        assert!(
            wait_until(|| engine.stats().purged_versions >= 3),
            "stats: {:?}",
            engine.stats()
        );
        assert!(
            engine.stats().versions >= 9,
            "versions the reader may re-read were purged: {:?}",
            engine.stats()
        );
        // A re-read under the same transaction still sees its version.
        assert_eq!(store.read(&mut reader, Key(1)).unwrap(), Some(3));
        store.commit(reader).unwrap();
        // With the pin gone the chain shrinks to the latest version.
        assert!(
            wait_until(|| engine.stats().versions <= 1),
            "stats: {:?}",
            engine.stats()
        );
    }

    #[test]
    fn drop_stops_the_sweeper() {
        let (store, clock) = store_and_clock();
        let engine: Arc<dyn Engine<u64>> = store;
        let service = GcService::spawn(
            Box::new(Arc::clone(&engine)),
            clock as Arc<dyn ClockSource>,
            GcConfig {
                interval: Duration::from_millis(1),
                lag: Duration::ZERO,
            },
        );
        assert!(wait_until(|| service.stats().sweeps > 2));
        drop(service);
        // The thread has joined; no further sweeps can touch the engine.
        churn(engine.as_ref(), Key(1), 8);
        let resident = engine.stats().versions;
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(engine.stats().versions, resident, "sweeper kept running");
    }

    #[test]
    fn lag_defers_purging_of_recent_state() {
        let (store, clock) = store_and_clock();
        let engine: Arc<dyn Engine<u64>> = store;
        let service = GcService::spawn(
            Box::new(Arc::clone(&engine)),
            clock as Arc<dyn ClockSource>,
            GcConfig {
                interval: Duration::from_millis(2),
                lag: Duration::from_secs(3600),
            },
        );
        churn(engine.as_ref(), Key(1), 8);
        assert!(wait_until(|| service.stats().sweeps > 3));
        // With an hour of lag nothing is old enough to purge.
        assert_eq!(engine.stats().versions, 8);
        assert_eq!(service.stats().purges, 0);
    }

    #[test]
    fn gc_engine_delegates_and_sweeps() {
        let (store, clock) = store_and_clock();
        let engine = GcEngine::spawn(store.clone(), clock as Arc<dyn ClockSource>, fast_gc());
        assert_eq!(TransactionalKV::name(&engine), "mvtl-to");
        let dyn_engine: &dyn Engine<u64> = &engine;
        churn(dyn_engine, Key(9), 16);
        // Wait for the steady state (latest version kept, all purgeable lock
        // entries gone) so the stats snapshots below cannot race a sweep.
        assert!(
            wait_until(|| {
                let s = dyn_engine.stats();
                s.versions <= 1 && s.lock_entries == 0
            }),
            "stats: {:?}",
            dyn_engine.stats()
        );
        assert_eq!(
            TransactionalKV::stats(store.as_ref()),
            dyn_engine.stats(),
            "wrapper reports the inner engine's stats"
        );
        assert!(engine.service().stats().versions_purged >= 15);
    }
}
