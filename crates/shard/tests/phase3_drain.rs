//! Phase-3 failure handling of the cross-shard commit coordinator.
//!
//! If a shard rejects the coordinated commit timestamp (a backend bug — the
//! frozen-interval contract says it cannot happen for a correct backend), the
//! coordinator must *drain* the remaining prepared participants by explicitly
//! aborting them, not silently drop them: a backend whose handles do not
//! release state on drop would otherwise leak its locks forever. The
//! instrumented backend below counts explicit decisions versus undecided
//! drops, and the test also asserts the healthy shards' lock tables recover
//! to their pre-transaction state.

use mvtl_clock::GlobalClock;
use mvtl_common::{
    CommitInfo, Key, ProcessId, StoreStats, Timestamp, TransactionalKV, TsSet, TxError,
};
use mvtl_core::policy::MvtilPolicy;
use mvtl_core::MvtlConfig;
use mvtl_shard::{
    IntersectionPick, MvtlBackend, PreparedShardTxn, ShardBackend, ShardTxn, ShardedStore,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared instrumentation: how prepared participants were disposed of.
#[derive(Default)]
struct Probe {
    /// `commit_at` calls that were rejected because `fail` was set.
    rejected_commits: AtomicU64,
    /// Explicit `abort()` calls on prepared participants.
    explicit_aborts: AtomicU64,
    /// Prepared participants dropped without an explicit decision — the lock
    /// leak the coordinator must never cause.
    dropped_undecided: AtomicU64,
    /// When set, `commit_at` on instrumented shards fails.
    fail: AtomicBool,
}

struct ProbedBackend {
    inner: Arc<dyn ShardBackend<u64>>,
    probe: Arc<Probe>,
}

impl ShardBackend<u64> for ProbedBackend {
    fn begin(&self, process: ProcessId, pinned: Option<Timestamp>) -> Box<dyn ShardTxn<u64>> {
        Box::new(ProbedTxn {
            inner: self.inner.begin(process, pinned),
            probe: Arc::clone(&self.probe),
        })
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        self.inner.purge_below(bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        self.inner.low_watermark()
    }
}

struct ProbedTxn {
    inner: Box<dyn ShardTxn<u64>>,
    probe: Arc<Probe>,
}

impl ShardTxn<u64> for ProbedTxn {
    fn read(&mut self, key: Key) -> Result<Option<u64>, TxError> {
        self.inner.read(key)
    }

    fn write(&mut self, key: Key, value: u64) -> Result<(), TxError> {
        self.inner.write(key, value)
    }

    fn commit(self: Box<Self>) -> Result<CommitInfo, TxError> {
        self.inner.commit()
    }

    fn prepare(self: Box<Self>) -> Result<Box<dyn PreparedShardTxn<u64>>, TxError> {
        let this = *self;
        let prepared = this.inner.prepare()?;
        Ok(Box::new(ProbedPrepared {
            inner: Some(prepared),
            probe: this.probe,
        }))
    }

    fn abort(self: Box<Self>) {
        self.inner.abort();
    }
}

struct ProbedPrepared {
    inner: Option<Box<dyn PreparedShardTxn<u64>>>,
    probe: Arc<Probe>,
}

impl PreparedShardTxn<u64> for ProbedPrepared {
    fn interval(&self) -> &TsSet {
        self.inner.as_ref().expect("undecided").interval()
    }

    fn commit_at(mut self: Box<Self>, ts: Timestamp) -> Result<CommitInfo, TxError> {
        let inner = self.inner.take().expect("undecided");
        if self.probe.fail.load(Ordering::Relaxed) {
            self.probe.rejected_commits.fetch_add(1, Ordering::Relaxed);
            inner.abort();
            return Err(TxError::Internal("injected phase-3 rejection".into()));
        }
        inner.commit_at(ts)
    }

    fn abort(mut self: Box<Self>) {
        self.probe.explicit_aborts.fetch_add(1, Ordering::Relaxed);
        self.inner.take().expect("undecided").abort();
    }
}

impl Drop for ProbedPrepared {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            self.probe.dropped_undecided.fetch_add(1, Ordering::Relaxed);
            inner.abort();
        }
    }
}

fn probed_store(shards: usize) -> (ShardedStore<u64>, Arc<Probe>) {
    let clock: Arc<dyn mvtl_clock::ClockSource> = Arc::new(GlobalClock::new());
    let probe = Arc::new(Probe::default());
    let backends: Vec<Arc<dyn ShardBackend<u64>>> = (0..shards)
        .map(|_| {
            Arc::new(ProbedBackend {
                inner: MvtlBackend::build(
                    MvtilPolicy::early(100_000),
                    Arc::clone(&clock),
                    MvtlConfig::default(),
                ),
                probe: Arc::clone(&probe),
            }) as Arc<dyn ShardBackend<u64>>
        })
        .collect();
    (
        ShardedStore::new(backends, clock, IntersectionPick::Min),
        probe,
    )
}

#[test]
fn phase3_failure_drains_remaining_prepared_shards() {
    let (store, probe) = probed_store(3);
    let keys: Vec<Key> = (0..3).map(|s| store.key_on_shard(s, 0)).collect();
    let baseline = store.stats();

    // A cross-shard transaction over all three shards whose phase 3 is
    // sabotaged: the first participant rejects the coordinated timestamp.
    probe.fail.store(true, Ordering::Relaxed);
    let mut txn = store.begin(ProcessId(1));
    for (i, key) in keys.iter().enumerate() {
        store.write(&mut txn, *key, i as u64).unwrap();
    }
    let err = store
        .commit(txn)
        .expect_err("injected rejection must surface");
    assert!(matches!(err, TxError::Internal(_)), "got {err:?}");

    // The coordinator explicitly decided every prepared participant: one
    // rejected commit, the other two drained with abort() — none dropped
    // undecided, which is what would leak locks on backends without
    // drop-cleanup.
    assert_eq!(probe.rejected_commits.load(Ordering::Relaxed), 1);
    assert_eq!(probe.explicit_aborts.load(Ordering::Relaxed), 2);
    assert_eq!(probe.dropped_undecided.load(Ordering::Relaxed), 0);

    // Lock-entry counts recover to the pre-transaction state.
    let after = store.stats();
    assert_eq!(
        after.lock_entries, baseline.lock_entries,
        "locks leaked: {after:?} vs baseline {baseline:?}"
    );
    assert_eq!(after.versions, baseline.versions, "no partial installs");

    // The same keys are writable again once the fault is cleared.
    probe.fail.store(false, Ordering::Relaxed);
    let mut txn = store.begin(ProcessId(2));
    for key in &keys {
        store.write(&mut txn, *key, 99).unwrap();
    }
    let info = store.commit(txn).expect("healthy cross-shard commit");
    assert_eq!(info.writes.len(), 3);
    assert_eq!(probe.dropped_undecided.load(Ordering::Relaxed), 0);
}

#[test]
fn begin_pins_the_gc_watermark_before_the_first_access() {
    // Sub-transactions open lazily, so between begin() and the first
    // read/write no shard-level registry knows about the transaction; the
    // coordinator-level pin must cover that window or a GC sweep could purge
    // state the transaction is about to anchor on.
    let (store, _probe) = probed_store(2);
    assert_eq!(store.low_watermark(), None);
    let txn = store.begin(ProcessId(1));
    let wm = store
        .low_watermark()
        .expect("begin pins the coordinator watermark");
    assert!(wm <= txn.base_timestamp());
    store.abort(txn);
    assert_eq!(store.low_watermark(), None);

    // The pin is released at commit too (sub-transactions then carry their
    // own shard-level pins while the commit coordinates).
    let mut txn = store.begin(ProcessId(2));
    store.write(&mut txn, store.key_on_shard(0, 0), 1).unwrap();
    store.write(&mut txn, store.key_on_shard(1, 0), 2).unwrap();
    store.commit(txn).unwrap();
    assert_eq!(store.low_watermark(), None);
}

#[test]
fn coordinator_abort_releases_every_shard_without_undecided_drops() {
    let (store, probe) = probed_store(2);
    let a = store.key_on_shard(0, 0);
    let b = store.key_on_shard(1, 0);
    let mut txn = store.begin(ProcessId(1));
    store.write(&mut txn, a, 1).unwrap();
    store.write(&mut txn, b, 2).unwrap();
    store.abort(txn);
    assert_eq!(probe.dropped_undecided.load(Ordering::Relaxed), 0);
    assert_eq!(store.stats().lock_entries, 0, "abort released all locks");
}
