//! Deterministic batched-routing tests: a cross-shard `write_many` /
//! `read_many` touching K keys on S shards must open exactly S
//! sub-transactions and issue exactly **one** batched round per shard —
//! never one call per key. Asserted with an instrumented [`ShardBackend`]
//! that counts every participant-protocol call the coordinator makes.

use mvtl_common::{CommitInfo, Key, ProcessId, StoreStats, Timestamp, TransactionalKV, TxError};
use mvtl_core::policy::MvtilPolicy;
use mvtl_core::MvtlConfig;
use mvtl_shard::{
    IntersectionPick, MvtlBackend, PreparedShardTxn, ShardBackend, ShardTxn, ShardedStore,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-shard call counters, shared between the probe backend and the test.
#[derive(Default, Debug)]
struct ShardCounters {
    begins: AtomicUsize,
    single_reads: AtomicUsize,
    single_writes: AtomicUsize,
    read_rounds: AtomicUsize,
    write_rounds: AtomicUsize,
    prepares: AtomicUsize,
}

impl ShardCounters {
    fn get(&self, counter: &AtomicUsize) -> usize {
        counter.load(Ordering::Relaxed)
    }
}

/// A [`ShardBackend`] that forwards to a real MVTL shard while counting the
/// calls the coordinator makes against it.
struct ProbeBackend {
    inner: Arc<dyn ShardBackend<u64>>,
    counters: Arc<ShardCounters>,
}

impl ShardBackend<u64> for ProbeBackend {
    fn begin(&self, process: ProcessId, pinned: Option<Timestamp>) -> Box<dyn ShardTxn<u64>> {
        self.counters.begins.fetch_add(1, Ordering::Relaxed);
        Box::new(ProbeTxn {
            inner: self.inner.begin(process, pinned),
            counters: Arc::clone(&self.counters),
        })
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        self.inner.purge_below(bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        self.inner.low_watermark()
    }
}

struct ProbeTxn {
    inner: Box<dyn ShardTxn<u64>>,
    counters: Arc<ShardCounters>,
}

impl ShardTxn<u64> for ProbeTxn {
    fn read(&mut self, key: Key) -> Result<Option<u64>, TxError> {
        self.counters.single_reads.fetch_add(1, Ordering::Relaxed);
        self.inner.read(key)
    }

    fn write(&mut self, key: Key, value: u64) -> Result<(), TxError> {
        self.counters.single_writes.fetch_add(1, Ordering::Relaxed);
        self.inner.write(key, value)
    }

    fn read_many(&mut self, keys: &[Key]) -> Result<Vec<Option<u64>>, TxError> {
        self.counters.read_rounds.fetch_add(1, Ordering::Relaxed);
        self.inner.read_many(keys)
    }

    fn write_many(&mut self, entries: Vec<(Key, u64)>) -> Result<(), TxError> {
        self.counters.write_rounds.fetch_add(1, Ordering::Relaxed);
        self.inner.write_many(entries)
    }

    fn commit(self: Box<Self>) -> Result<CommitInfo, TxError> {
        self.inner.commit()
    }

    fn prepare(self: Box<Self>) -> Result<Box<dyn PreparedShardTxn<u64>>, TxError> {
        let this = *self;
        this.counters.prepares.fetch_add(1, Ordering::Relaxed);
        this.inner.prepare()
    }

    fn abort(self: Box<Self>) {
        self.inner.abort();
    }
}

const SHARDS: usize = 3;

/// A probed sharded store plus the per-shard counters.
fn probed_store() -> (ShardedStore<u64>, Vec<Arc<ShardCounters>>) {
    let clock = Arc::new(mvtl_clock::GlobalClock::starting_at(1000));
    let counters: Vec<Arc<ShardCounters>> = (0..SHARDS)
        .map(|_| Arc::new(ShardCounters::default()))
        .collect();
    let backends: Vec<Arc<dyn ShardBackend<u64>>> = counters
        .iter()
        .map(|counters| {
            Arc::new(ProbeBackend {
                inner: MvtlBackend::build(
                    MvtilPolicy::early(1000),
                    Arc::clone(&clock) as _,
                    MvtlConfig::default(),
                ),
                counters: Arc::clone(counters),
            }) as Arc<dyn ShardBackend<u64>>
        })
        .collect();
    let store = ShardedStore::new(backends, clock, IntersectionPick::Min);
    (store, counters)
}

/// `per_shard` distinct keys for each of the store's shards, interleaved so a
/// naive per-key routing would ping-pong between shards.
fn keys_across_shards(store: &ShardedStore<u64>, per_shard: usize) -> Vec<Key> {
    let mut keys = Vec::new();
    for round in 0..per_shard {
        let mut start = keys.last().map_or(0, |k: &Key| k.0 + 1);
        for shard in 0..store.shard_count() {
            let key = store.key_on_shard(shard, start);
            start = key.0 + 1;
            keys.push(key);
        }
        let _ = round;
    }
    keys
}

#[test]
fn cross_shard_write_many_opens_one_sub_txn_and_one_round_per_shard() {
    let (store, counters) = probed_store();
    let keys = keys_across_shards(&store, 3); // K = 9 keys on S = 3 shards

    let mut tx = store.begin_at(ProcessId(1), None);
    store
        .write_many(&mut tx, keys.iter().map(|k| (*k, k.0 + 100)).collect())
        .unwrap();
    assert_eq!(
        tx.touched_shards().len(),
        SHARDS,
        "9 keys on 3 shards open exactly 3 sub-transactions"
    );
    for (shard, c) in counters.iter().enumerate() {
        assert_eq!(c.get(&c.begins), 1, "shard {shard}: exactly one sub-txn");
        assert_eq!(
            c.get(&c.write_rounds),
            1,
            "shard {shard}: exactly one write_many round"
        );
        assert_eq!(
            c.get(&c.single_writes),
            0,
            "shard {shard}: no per-key write fallback"
        );
    }

    let info = store.commit(tx).unwrap();
    assert_eq!(info.writes.len(), keys.len());
    assert!(info.commit_ts.is_some());
    for c in &counters {
        assert_eq!(
            c.get(&c.prepares),
            1,
            "cross-shard commit prepares each shard once"
        );
    }
}

#[test]
fn cross_shard_read_many_issues_one_round_per_shard_and_scatters_in_order() {
    let (store, counters) = probed_store();
    let keys = keys_across_shards(&store, 3);
    let mut setup = store.begin_at(ProcessId(1), None);
    store
        .write_many(&mut setup, keys.iter().map(|k| (*k, k.0 + 100)).collect())
        .unwrap();
    store.commit(setup).unwrap();

    let mut tx = store.begin_at(ProcessId(2), None);
    let values = store.read_many(&mut tx, &keys).unwrap();
    assert_eq!(
        values,
        keys.iter().map(|k| Some(k.0 + 100)).collect::<Vec<_>>(),
        "values scatter back into input order"
    );
    assert_eq!(tx.touched_shards().len(), SHARDS);
    for (shard, c) in counters.iter().enumerate() {
        assert_eq!(
            c.get(&c.begins),
            2,
            "shard {shard}: setup + reader sub-txns"
        );
        assert_eq!(
            c.get(&c.read_rounds),
            1,
            "shard {shard}: exactly one read_many round"
        );
        assert_eq!(c.get(&c.single_reads), 0, "shard {shard}: no per-key reads");
    }
    store.commit(tx).unwrap();
}

#[test]
fn single_shard_batches_skip_coordination_entirely() {
    let (store, counters) = probed_store();
    // Three keys, all on shard 0.
    let a = store.key_on_shard(0, 0);
    let b = store.key_on_shard(0, a.0 + 1);
    let c = store.key_on_shard(0, b.0 + 1);

    let mut tx = store.begin_at(ProcessId(1), None);
    store
        .write_many(&mut tx, vec![(a, 1), (b, 2), (c, 3)])
        .unwrap();
    assert_eq!(tx.touched_shards(), vec![0], "one shard, one sub-txn");
    let info = store.commit(tx).unwrap();
    assert!(info.commit_ts.is_some());

    assert_eq!(counters[0].get(&counters[0].begins), 1);
    assert_eq!(counters[0].get(&counters[0].write_rounds), 1);
    // Single-shard fast path: the shard committed alone, no prepare phase.
    for (shard, c) in counters.iter().enumerate() {
        assert_eq!(c.get(&c.prepares), 0, "shard {shard}: no §7 coordination");
    }
    for c in &counters[1..] {
        assert_eq!(c.get(&c.begins), 0, "untouched shards stay closed");
    }
}
