//! Deterministic §7 schedules: the cross-shard commit must use the interval
//! intersection — committing at a common timestamp when one exists, and
//! aborting (with every shard's locks released) when the shards' frozen
//! intervals are disjoint.

use mvtl_clock::GlobalClock;
use mvtl_common::{AbortReason, Key, ProcessId, Timestamp, TransactionalKV, TxError};
use mvtl_core::policy::MvtilPolicy;
use mvtl_core::MvtlConfig;
use mvtl_shard::{IntersectionPick, ShardedStore};
use std::sync::Arc;

const DELTA: u64 = 50;

fn store(pick: IntersectionPick) -> ShardedStore<u64> {
    ShardedStore::with_policy(
        2,
        Arc::new(GlobalClock::starting_at(1000)),
        MvtlConfig::default(),
        pick,
        |_| MvtilPolicy::early(DELTA),
    )
}

/// Keys on shard 0 and shard 1 respectively.
fn keys(s: &ShardedStore<u64>) -> (Key, Key) {
    let a = s.key_on_shard(0, 0);
    let b = s.key_on_shard(1, a.0 + 1);
    (a, b)
}

#[test]
fn cross_shard_commit_happens_at_the_intersection_minimum() {
    let s = store(IntersectionPick::Min);
    let (a, b) = keys(&s);
    // Pinned at 125 with Δ = 50: both shards freeze [125, 175]; the
    // intersection is the full interval and Min picks its bottom.
    let mut tx = s.begin_at(ProcessId(1), Some(Timestamp::at(125)));
    s.write(&mut tx, a, 1).unwrap();
    s.write(&mut tx, b, 2).unwrap();
    let info = s.commit(tx).unwrap();
    assert_eq!(info.commit_ts, Some(Timestamp::new(125, 0)));
}

#[test]
fn cross_shard_commit_happens_at_the_intersection_maximum_with_pick_max() {
    let s = store(IntersectionPick::Max);
    let (a, b) = keys(&s);
    let mut tx = s.begin_at(ProcessId(1), Some(Timestamp::at(125)));
    s.write(&mut tx, a, 1).unwrap();
    s.write(&mut tx, b, 2).unwrap();
    let info = s.commit(tx).unwrap();
    assert_eq!(info.commit_ts, Some(Timestamp::new(125 + DELTA, u32::MAX)));
}

/// The paper-schedule empty-intersection abort: both shards freeze a
/// *non-empty* interval, but the intervals are disjoint, so the coordinator
/// must abort and release every shard's locks.
///
/// Construction (Δ = 50, all clock readings pinned):
///
/// * `W0` (pinned 140) holds write locks `[140, 190]` on `a` (shard 0);
/// * `W1` (pinned 110) holds write locks `[110, 160]` on `b` (shard 1);
/// * `T`  (pinned 125, interval `[125, 175]`) writes both keys. MVTIL's
///   non-waiting lock acquisition shrinks its shard-0 interval to
///   `[125, 139]` and its shard-1 interval to `[161, 175]` — disjoint.
#[test]
fn disjoint_shard_intervals_abort_the_cross_shard_commit() {
    let s = store(IntersectionPick::Min);
    let (a, b) = keys(&s);

    let mut w0 = s.begin_at(ProcessId(1), Some(Timestamp::at(140)));
    s.write(&mut w0, a, 100).unwrap();
    let mut w1 = s.begin_at(ProcessId(2), Some(Timestamp::at(110)));
    s.write(&mut w1, b, 200).unwrap();

    // Lock footprint with only the two blockers in flight.
    let baseline: Vec<_> = s.shard_stats().iter().map(|st| st.lock_entries).collect();

    let mut t = s.begin_at(ProcessId(3), Some(Timestamp::at(125)));
    s.write(&mut t, a, 1).unwrap();
    s.write(&mut t, b, 2).unwrap();
    let err = s.commit(t).unwrap_err();
    assert_eq!(
        err,
        TxError::Aborted(AbortReason::NoCommonTimestamp),
        "disjoint frozen intervals must abort with NoCommonTimestamp"
    );

    // Every participating shard released T's locks: the footprint is back to
    // exactly the blockers'.
    let after: Vec<_> = s.shard_stats().iter().map(|st| st.lock_entries).collect();
    assert_eq!(after, baseline, "abort must release locks on every shard");

    // And T's writes are invisible.
    s.abort(w0);
    s.abort(w1);
    let mut check = s.begin_at(ProcessId(4), Some(Timestamp::at(300)));
    assert_eq!(s.read(&mut check, a).unwrap(), None);
    assert_eq!(s.read(&mut check, b).unwrap(), None);
    s.commit(check).unwrap();
}

/// Same schedule, but with the blockers released before the doomed commit
/// retries: the second attempt finds overlapping intervals and commits —
/// the retry story the paper tells for MVTIL.
#[test]
fn retrying_after_the_blockers_release_commits() {
    let s = store(IntersectionPick::Min);
    let (a, b) = keys(&s);

    let mut w0 = s.begin_at(ProcessId(1), Some(Timestamp::at(140)));
    s.write(&mut w0, a, 100).unwrap();
    let mut w1 = s.begin_at(ProcessId(2), Some(Timestamp::at(110)));
    s.write(&mut w1, b, 200).unwrap();

    let mut t = s.begin_at(ProcessId(3), Some(Timestamp::at(125)));
    s.write(&mut t, a, 1).unwrap();
    s.write(&mut t, b, 2).unwrap();
    assert!(s.commit(t).is_err());

    s.abort(w0);
    s.abort(w1);

    let mut t = s.begin_at(ProcessId(3), Some(Timestamp::at(125)));
    s.write(&mut t, a, 1).unwrap();
    s.write(&mut t, b, 2).unwrap();
    let info = s.commit(t).unwrap();
    assert_eq!(info.commit_ts, Some(Timestamp::new(125, 0)));
}
