//! Multi-threaded cross-shard stress runs. The CI workflow runs these in
//! release mode via `cargo test --release -p mvtl-shard -- stress`.

use mvtl_clock::GlobalClock;
use mvtl_common::{Engine, EngineExt, Key, ProcessId, RetryOptions};
use mvtl_core::policy::MvtilPolicy;
use mvtl_core::MvtlConfig;
use mvtl_shard::{IntersectionPick, ShardedStore};
use mvtl_verify::{check_serializable, replay_concurrent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn store(shards: usize) -> ShardedStore<u64> {
    ShardedStore::with_policy(
        shards,
        Arc::new(GlobalClock::new()),
        MvtlConfig::default(),
        IntersectionPick::Min,
        |_| MvtilPolicy::early(5_000),
    )
}

/// Bank transfers between accounts that live on different shards, from many
/// threads at once: money must be conserved, which fails if a cross-shard
/// commit ever lands its two writes at different timestamps or a partial
/// commit slips through.
#[test]
fn stress_cross_shard_transfers_conserve_total_balance() {
    const ACCOUNTS: u64 = 64;
    const INITIAL: u64 = 1_000;
    const THREADS: usize = 8;
    const TRANSFERS: usize = 200;

    let s = store(8);
    let engine: &dyn Engine<u64> = &s;

    // Seed all accounts in one transaction — itself a cross-shard commit
    // with (almost surely) all 8 shards participating.
    let mut tx = engine.begin(ProcessId(0));
    for account in 0..ACCOUNTS {
        tx.write(Key(account), INITIAL).unwrap();
    }
    tx.commit().expect("seeding commit");

    let committed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let committed = &committed;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(worker as u64);
                let process = ProcessId(worker as u32 + 1);
                let options = RetryOptions::default().with_seed(worker as u64);
                for _ in 0..TRANSFERS {
                    let from = Key(rng.gen_range(0..ACCOUNTS));
                    let to = Key(rng.gen_range(0..ACCOUNTS));
                    if from == to {
                        continue;
                    }
                    let amount = rng.gen_range(1..10u64);
                    let result = engine.run(process, &options, |tx| {
                        let a = tx.read(from)?.unwrap_or(0);
                        let b = tx.read(to)?.unwrap_or(0);
                        if a >= amount {
                            tx.write(from, a - amount)?;
                            tx.write(to, b + amount)?;
                        }
                        Ok(())
                    });
                    if result.is_ok() {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert!(
        committed.load(Ordering::Relaxed) > 0,
        "some transfers must commit under contention"
    );

    let mut tx = engine.begin(ProcessId(99));
    let mut total = 0;
    for account in 0..ACCOUNTS {
        total += tx.read(Key(account)).unwrap().unwrap_or(0);
    }
    tx.commit().unwrap();
    assert_eq!(
        total,
        ACCOUNTS * INITIAL,
        "cross-shard transfers must conserve the total balance"
    );
}

/// Random mixed transactions over a small hot key space from real threads:
/// the committed history must be one-copy serializable (checked through the
/// MVSG of Appendix A).
#[test]
fn stress_concurrent_cross_shard_histories_are_serializable() {
    for shards in [2, 8] {
        let s = store(shards);
        let engine: &dyn Engine<u64> = &s;
        let history = replay_concurrent(engine, 4, 80, |thread, iter, txn| {
            let mut rng = StdRng::seed_from_u64((thread * 7_919 + iter) as u64);
            for _ in 0..rng.gen_range(2..6usize) {
                let key = Key(rng.gen_range(0..12u64));
                if rng.gen_bool(0.5) {
                    txn.read(key)?;
                } else {
                    txn.write(key, rng.gen_range(0..1_000))?;
                }
            }
            Ok(())
        });
        assert!(
            !history.is_empty(),
            "{shards} shards: some transactions must commit"
        );
        if let Err(violation) = check_serializable(&history) {
            panic!("{shards} shards: non-serializable history: {violation}");
        }
    }
}

/// Heavy write skew aimed at a single hot cross-shard pair, checking both
/// progress (commits happen) and isolation (final values come from real
/// committed transactions).
#[test]
fn stress_hot_pair_cross_shard_counter_increments_are_exact() {
    const THREADS: usize = 6;
    const INCREMENTS: usize = 150;

    let s = store(4);
    let hot_a = s.key_on_shard(0, 0);
    let hot_b = s.key_on_shard(1, hot_a.0 + 1);
    let engine: &dyn Engine<u64> = &s;

    let committed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let committed = &committed;
            scope.spawn(move || {
                let process = ProcessId(worker as u32 + 1);
                let options = RetryOptions::default()
                    .with_seed(worker as u64)
                    .with_max_attempts(64);
                for _ in 0..INCREMENTS {
                    let result = engine.run(process, &options, |tx| {
                        let a = tx.read(hot_a)?.unwrap_or(0);
                        let b = tx.read(hot_b)?.unwrap_or(0);
                        tx.write(hot_a, a + 1)?;
                        tx.write(hot_b, b + 1)?;
                        Ok(())
                    });
                    if result.is_ok() {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let commits = committed.load(Ordering::Relaxed);
    assert!(commits > 0, "the hot pair must make progress");

    let mut tx = engine.begin(ProcessId(99));
    let a = tx.read(hot_a).unwrap().unwrap_or(0);
    let b = tx.read(hot_b).unwrap().unwrap_or(0);
    tx.commit().unwrap();
    assert_eq!(
        a, commits,
        "every committed increment is visible exactly once"
    );
    assert_eq!(b, commits, "both halves of the pair advance in lock step");
}
