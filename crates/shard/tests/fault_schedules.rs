//! Seeded fault-schedule regression tests for the cross-shard protocol.
//!
//! Every named schedule of `mvtl-faults` (delay-only, drop-prepare,
//! crash-mid-prepare, stall-timeout, skewed-clock) is replayed through
//! `mvtl-verify`'s MVSG checker over 2 and 8 shards, with the instrumented
//! probe of the phase-3 drain tests sandwiched *outside* the fault layer:
//!
//! ```text
//!   coordinator → ProbedBackend → FaultyBackend → MvtlBackend
//! ```
//!
//! so the probe observes exactly the decisions the coordinator (and its
//! presumed-abort recovery) hands to each prepared sub-transaction. The
//! invariants under every schedule: all committed histories are serializable,
//! no prepared sub-transaction is dropped undecided, and once the system
//! quiesces no shard still pins the GC watermark (no leaked sub-transaction).

use mvtl_clock::GlobalClock;
use mvtl_common::ops::{Op, Workload};
use mvtl_common::{
    AbortReason, CommitInfo, Key, ProcessId, StoreStats, Timestamp, TransactionalKV, TsSet, TxError,
};
use mvtl_core::policy::MvtilPolicy;
use mvtl_core::MvtlConfig;
use mvtl_faults::{named_schedule, named_schedules, FaultKind, FaultPlan, FaultSpec};
use mvtl_shard::{
    FaultyBackend, IntersectionPick, MvtlBackend, PreparedShardTxn, ShardBackend, ShardTxn,
    ShardedStore,
};
use mvtl_verify::{check_serializable, replay};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared instrumentation: how prepared participants were disposed of.
#[derive(Default)]
struct Probe {
    /// Explicit `abort()` calls on prepared participants.
    explicit_aborts: AtomicU64,
    /// Explicit `commit_at` decisions on prepared participants.
    commits: AtomicU64,
    /// Prepared participants dropped without an explicit decision — the lock
    /// leak the coordinator must never cause, under any fault schedule.
    dropped_undecided: AtomicU64,
}

struct ProbedBackend {
    inner: Arc<dyn ShardBackend<u64>>,
    probe: Arc<Probe>,
}

impl ShardBackend<u64> for ProbedBackend {
    fn begin(&self, process: ProcessId, pinned: Option<Timestamp>) -> Box<dyn ShardTxn<u64>> {
        Box::new(ProbedTxn {
            inner: self.inner.begin(process, pinned),
            probe: Arc::clone(&self.probe),
        })
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        self.inner.purge_below(bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        self.inner.low_watermark()
    }
}

struct ProbedTxn {
    inner: Box<dyn ShardTxn<u64>>,
    probe: Arc<Probe>,
}

impl ShardTxn<u64> for ProbedTxn {
    fn read(&mut self, key: Key) -> Result<Option<u64>, TxError> {
        self.inner.read(key)
    }

    fn write(&mut self, key: Key, value: u64) -> Result<(), TxError> {
        self.inner.write(key, value)
    }

    fn commit(self: Box<Self>) -> Result<CommitInfo, TxError> {
        self.inner.commit()
    }

    fn prepare(self: Box<Self>) -> Result<Box<dyn PreparedShardTxn<u64>>, TxError> {
        let this = *self;
        let prepared = this.inner.prepare()?;
        Ok(Box::new(ProbedPrepared {
            inner: Some(prepared),
            probe: this.probe,
        }))
    }

    fn abort(self: Box<Self>) {
        self.inner.abort();
    }
}

struct ProbedPrepared {
    inner: Option<Box<dyn PreparedShardTxn<u64>>>,
    probe: Arc<Probe>,
}

impl PreparedShardTxn<u64> for ProbedPrepared {
    fn interval(&self) -> &TsSet {
        self.inner.as_ref().expect("undecided").interval()
    }

    fn commit_at(mut self: Box<Self>, ts: Timestamp) -> Result<CommitInfo, TxError> {
        self.probe.commits.fetch_add(1, Ordering::Relaxed);
        self.inner.take().expect("undecided").commit_at(ts)
    }

    fn abort(mut self: Box<Self>) {
        self.probe.explicit_aborts.fetch_add(1, Ordering::Relaxed);
        self.inner.take().expect("undecided").abort();
    }
}

impl Drop for ProbedPrepared {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            self.probe.dropped_undecided.fetch_add(1, Ordering::Relaxed);
            inner.abort();
        }
    }
}

/// The probe-outside-fault sandwich over real MVTIL shards.
fn faulty_store(
    shards: usize,
    schedule: &str,
    fault_seed: u64,
    timeout: Option<Duration>,
) -> (ShardedStore<u64>, Arc<Probe>, Arc<FaultPlan>) {
    let clock: Arc<dyn mvtl_clock::ClockSource> = Arc::new(GlobalClock::starting_at(10_000));
    let probe = Arc::new(Probe::default());
    let plan = Arc::new(FaultPlan::new(
        FaultSpec::parse(schedule).expect("schedule parses"),
        fault_seed,
    ));
    let backends: Vec<Arc<dyn ShardBackend<u64>>> = (0..shards)
        .map(|shard| {
            let inner = MvtlBackend::build(
                MvtilPolicy::early(100_000),
                Arc::clone(&clock),
                MvtlConfig::default(),
            );
            Arc::new(ProbedBackend {
                inner: FaultyBackend::wrap(inner, Arc::clone(&plan), shard),
                probe: Arc::clone(&probe),
            }) as Arc<dyn ShardBackend<u64>>
        })
        .collect();
    let mut store = ShardedStore::new(backends, clock, IntersectionPick::Min);
    if let Some(timeout) = timeout {
        store = store.with_commit_timeout(timeout);
    }
    (store, probe, plan)
}

/// A deterministic multi-shard workload: `txns` transactions, each reading and
/// writing keys on (usually) two distinct shards, with the steps of adjacent
/// transaction pairs interleaved so the replay exercises concurrent intervals.
fn cross_shard_workload(store: &ShardedStore<u64>, txns: usize, seed: u64) -> Workload {
    let shards = store.shard_count();
    let keys: Vec<Key> = (0..shards).map(|s| store.key_on_shard(s, 0)).collect();
    let extra: Vec<Key> = (0..shards).map(|s| store.key_on_shard(s, 10_000)).collect();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut per_tx: Vec<Vec<Op>> = Vec::with_capacity(txns);
    for tx in 0..txns {
        let a = (next() % shards as u64) as usize;
        let b = if shards > 1 {
            let mut b = (next() % shards as u64) as usize;
            if b == a {
                b = (b + 1) % shards;
            }
            b
        } else {
            a
        };
        let mut ops = vec![
            Op::Read(keys[a]),
            Op::Write(keys[a], tx as u64),
            Op::Write(extra[b], tx as u64 + 1_000),
        ];
        if next() % 3 == 0 {
            ops.push(Op::Read(extra[a]));
        }
        ops.push(Op::Commit);
        per_tx.push(ops);
    }
    // Interleave the steps of each adjacent pair of transactions.
    let mut workload = Workload::new();
    let mut tx = 0;
    while tx < txns {
        if tx + 1 < txns {
            let left = per_tx[tx].clone();
            let right = per_tx[tx + 1].clone();
            let mut l = left.into_iter();
            let mut r = right.into_iter();
            loop {
                match (l.next(), r.next()) {
                    (None, None) => break,
                    (op_l, op_r) => {
                        if let Some(op) = op_l {
                            workload.push(tx, op);
                        }
                        if let Some(op) = op_r {
                            workload.push(tx + 1, op);
                        }
                    }
                }
            }
            tx += 2;
        } else {
            for op in per_tx[tx].clone() {
                workload.push(tx, op);
            }
            tx += 1;
        }
    }
    workload
}

/// Waits for the store to quiesce: late helper threads (withheld prepare
/// responses, stalls) must resolve by presumed abort, releasing every
/// shard-level GC pin.
fn wait_for_quiesce(store: &ShardedStore<u64>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.low_watermark().is_some() {
        assert!(
            Instant::now() < deadline,
            "store never quiesced: a sub-transaction leaked its pin \
             (low watermark {:?})",
            store.low_watermark()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Which fault counter a named schedule must visibly exercise.
fn primary_kind(name: &str) -> FaultKind {
    match name {
        "delay-only" => FaultKind::Delay,
        "drop-prepare" => FaultKind::DropPrepare,
        "crash-mid-prepare" => FaultKind::CrashMidPrepare,
        "stall-timeout" => FaultKind::Stall,
        "skewed-clock" => FaultKind::Skew,
        other => panic!("unknown schedule {other}"),
    }
}

#[test]
fn named_schedules_stay_serializable_and_leak_free() {
    for (name, schedule) in named_schedules() {
        for shards in [2usize, 8] {
            // Drop/stall holds (30 ms) dwarf the 10 ms coordinator timeout,
            // so those schedules force the presumed-abort path; the delay
            // schedule's ≤200 µs delays never trip it.
            let (store, probe, plan) =
                faulty_store(shards, schedule, 0xFA01, Some(Duration::from_millis(10)));
            let workload = cross_shard_workload(&store, 32, 0xC0FFEE ^ shards as u64);
            let report = replay(&store, &workload, |v| v);

            check_serializable(&report.history).unwrap_or_else(|violation| {
                panic!("{name}/{shards} shards: committed history not serializable: {violation}")
            });
            assert!(
                plan.count(primary_kind(name)) > 0,
                "{name}/{shards} shards: schedule never fired \
                 (injected {:?})",
                plan.trace()
            );
            wait_for_quiesce(&store);
            assert_eq!(
                probe.dropped_undecided.load(Ordering::Relaxed),
                0,
                "{name}/{shards} shards: prepared sub-transaction dropped undecided"
            );
            assert!(
                report.commits() + report.aborts() == 32,
                "{name}/{shards} shards: every transaction got an outcome"
            );
        }
    }
}

#[test]
fn fault_trace_is_byte_identical_across_runs() {
    // Single-threaded replay + per-(shard, seq) decisions ⇒ the fault trace
    // and the commit/abort split are exactly reproducible from the seeds.
    // No commit timeout is armed: that keeps phase 1 on the inline sequential
    // path (helper threads would interleave trace lines at the scheduler's
    // whim), and delay+crash+skew clauses never need presumed abort anyway.
    let run = |fault_seed: u64| {
        let (store, _probe, plan) =
            faulty_store(4, "delay:0.4:120|crash:0.2|skew:64", fault_seed, None);
        let workload = cross_shard_workload(&store, 40, 7);
        let report = replay(&store, &workload, |v| v);
        wait_for_quiesce(&store);
        (plan.trace_string(), report.commits(), report.aborts())
    };
    let (trace_a, commits_a, aborts_a) = run(99);
    let (trace_b, commits_b, aborts_b) = run(99);
    assert_eq!(trace_a, trace_b, "fault trace must be byte-identical");
    assert!(!trace_a.is_empty(), "schedule must inject something");
    assert_eq!(commits_a, commits_b);
    assert_eq!(aborts_a, aborts_b);

    // A different fault seed draws a different schedule.
    let (trace_c, _, _) = run(100);
    assert_ne!(trace_a, trace_c, "fault seed must matter");
}

#[test]
fn stalled_shard_is_resolved_by_coordinator_timeout() {
    // Every prepare stalls 1.5 s; the coordinator's patience is 5 ms. The
    // commit must resolve by presumed abort rather than hanging until the
    // shard answers. The stall is deliberately huge relative to the bound
    // below: the assertion only has to distinguish "timed out" from "waited
    // out the stall", so a loaded CI machine adding tens of milliseconds of
    // scheduling noise cannot flip it.
    let (store, probe, plan) = faulty_store(2, "stall:1.0:1500", 1, Some(Duration::from_millis(5)));
    let a = store.key_on_shard(0, 0);
    let b = store.key_on_shard(1, 0);
    let mut txn = store.begin_at(ProcessId(1), None);
    store.write(&mut txn, a, 1).unwrap();
    store.write(&mut txn, b, 2).unwrap();
    let started = Instant::now();
    let err = store
        .commit(txn)
        .expect_err("stalled prepare cannot commit");
    let elapsed = started.elapsed();
    assert!(
        matches!(
            err.abort_reason(),
            Some(AbortReason::PrepareTimedOut { .. })
        ),
        "got {err:?}"
    );
    assert!(
        elapsed < Duration::from_millis(750),
        "coordinator waited out the stall instead of timing out ({elapsed:?})"
    );
    assert!(plan.count(FaultKind::Stall) > 0);
    // The stalled helpers eventually prepare, find their slots abandoned, and
    // abort themselves: no pins, no undecided drops, no leftover locks.
    wait_for_quiesce(&store);
    assert_eq!(probe.dropped_undecided.load(Ordering::Relaxed), 0);
    assert_eq!(
        store.stats().lock_entries,
        0,
        "abandoned prepares leaked locks"
    );
}

#[test]
fn withheld_prepare_response_resolves_by_presumed_abort() {
    // The shard *does* prepare (frozen locks held!) but withholds the
    // response past the coordinator's patience: the late success must abort
    // itself when it finds its slot abandoned.
    let (store, probe, plan) = faulty_store(2, "drop:1.0:60", 2, Some(Duration::from_millis(5)));
    let a = store.key_on_shard(0, 0);
    let b = store.key_on_shard(1, 0);
    let mut txn = store.begin_at(ProcessId(1), None);
    store.write(&mut txn, a, 1).unwrap();
    store.write(&mut txn, b, 2).unwrap();
    let err = store
        .commit(txn)
        .expect_err("withheld prepares cannot commit");
    assert!(
        matches!(
            err.abort_reason(),
            Some(AbortReason::PrepareTimedOut { .. })
        ),
        "got {err:?}"
    );
    assert!(plan.count(FaultKind::DropPrepare) > 0);
    wait_for_quiesce(&store);
    assert_eq!(probe.dropped_undecided.load(Ordering::Relaxed), 0);
    assert_eq!(
        store.stats().lock_entries,
        0,
        "a withheld-then-abandoned prepare leaked its frozen locks"
    );
    // With the locks released, the same keys commit again through a
    // fault-free store sharing nothing with the failed attempt.
    let (clean, _, _) = faulty_store(2, "", 0, None);
    let mut txn = clean.begin_at(ProcessId(2), None);
    clean.write(&mut txn, a, 10).unwrap();
    clean.write(&mut txn, b, 20).unwrap();
    clean.commit(txn).expect("fault-free cross-shard commit");
}

#[test]
fn crash_mid_prepare_aborts_the_whole_transaction() {
    // A certain crash: the participant loses its volatile lock state between
    // prepare and the decision, the coordinator learns in phase 1, and the
    // whole transaction aborts — atomically, with no partial installs.
    let (store, probe, plan) = faulty_store(2, "crash:1.0", 3, None);
    let a = store.key_on_shard(0, 0);
    let b = store.key_on_shard(1, 0);
    let baseline = store.stats();
    let mut txn = store.begin_at(ProcessId(1), None);
    store.write(&mut txn, a, 1).unwrap();
    store.write(&mut txn, b, 2).unwrap();
    let err = store
        .commit(txn)
        .expect_err("crashed participant cannot commit");
    assert!(
        matches!(
            err.abort_reason(),
            Some(AbortReason::ParticipantCrashed { .. })
        ),
        "got {err:?}"
    );
    assert!(plan.count(FaultKind::CrashMidPrepare) > 0);
    wait_for_quiesce(&store);
    assert_eq!(probe.dropped_undecided.load(Ordering::Relaxed), 0);
    let after = store.stats();
    assert_eq!(after.lock_entries, baseline.lock_entries, "locks leaked");
    assert_eq!(after.versions, baseline.versions, "partial install leaked");
}

#[test]
fn skewed_clocks_still_intersect_to_one_timestamp() {
    // The ε-clock scenario: every shard reads a skewed clock, yet a committed
    // cross-shard transaction still installs one common timestamp everywhere.
    let schedule = named_schedule("skewed-clock").expect("named schedule");
    let (store, _probe, plan) = faulty_store(4, schedule, 5, None);
    let workload = cross_shard_workload(&store, 24, 11);
    let report = replay(&store, &workload, |v| v);
    check_serializable(&report.history).expect("serializable under skew");
    assert!(plan.count(FaultKind::Skew) > 0, "skew must be applied");
    assert!(report.commits() > 0, "skew must not abort everything");
    wait_for_quiesce(&store);
}

#[test]
fn commit_timeout_alone_does_not_disturb_healthy_commits() {
    // Arming the timeout switches phase 1 onto helper threads; on a healthy
    // store that must change nothing observable.
    let (store, probe, plan) = faulty_store(4, "", 0, Some(Duration::from_millis(200)));
    let workload = cross_shard_workload(&store, 24, 13);
    let report = replay(&store, &workload, |v| v);
    check_serializable(&report.history).expect("serializable");
    assert_eq!(plan.total_injected(), 0, "empty schedule injects nothing");
    assert!(report.commits() > 0);
    wait_for_quiesce(&store);
    assert_eq!(probe.dropped_undecided.load(Ordering::Relaxed), 0);
}

#[test]
#[should_panic(expected = "at least 1 shard")]
fn empty_shard_vector_panics() {
    let clock: Arc<dyn mvtl_clock::ClockSource> = Arc::new(GlobalClock::new());
    let _ = ShardedStore::<u64>::new(Vec::new(), clock, IntersectionPick::Min);
}
