//! The partitioned engine and its cross-shard commit coordinator.

use crate::backend::{PreparedShardTxn, ShardBackend, ShardTxn};
use mvtl_clock::ClockSource;
use mvtl_common::{
    AbortReason, ActiveTxnRegistry, CommitInfo, Key, ProcessId, StoreStats, Timestamp,
    TransactionalKV, TsSet, TxError, TxId, TxnPin,
};
use mvtl_core::policy::LockingPolicy;
use mvtl_core::MvtlConfig;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Which timestamp the coordinator picks from the non-empty intersection of
/// the shards' frozen intervals. Mirrors MVTIL-early / MVTIL-late (§8): any
/// element of the intersection is safe, so this is a policy knob, not a
/// correctness one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntersectionPick {
    /// Commit at the smallest common timestamp (the MVTIL-early analogue).
    #[default]
    Min,
    /// Commit at the largest common timestamp (the MVTIL-late analogue).
    Max,
}

/// A real, threaded, partitioned transactional engine: keys are hash-routed
/// to `N` independent shards, and cross-shard transactions commit with the
/// paper's §7 protocol — each participating shard freezes the interval of
/// timestamps it can commit at, the coordinator intersects those `TsSet`s,
/// commits at one timestamp of a non-empty intersection, and aborts every
/// participant when the intersection is empty.
///
/// `ShardedStore` implements [`TransactionalKV`], so the blanket impl in
/// `mvtl-common` gives it the object-safe `Engine` surface, and the
/// `mvtl-registry` crate builds it from specs like
/// `"sharded?shards=8&inner=mvtil-early"`.
///
/// # Why timestamp locks compose
///
/// Object locks give each server only a *yes/no* answer at commit time;
/// timestamp locks give an *interval*, and intervals can be intersected.
/// That is the paper's headline claim ("locking timestamps composes across
/// servers"), executed here with real threads rather than in the
/// discrete-event simulator of `mvtl-sim`.
pub struct ShardedStore<V> {
    shards: Vec<Arc<dyn ShardBackend<V>>>,
    clock: Arc<dyn ClockSource>,
    pick: IntersectionPick,
    /// Coordinator-level registry: a transaction is pinned at its base
    /// timestamp from `begin` until commit/abort, covering the window before
    /// its lazily opened sub-transactions register with the shard-level
    /// registries (and any shard it never touches).
    active: ActiveTxnRegistry,
    /// How long the coordinator waits for all participants' `prepare`
    /// responses before resolving the commit by presumed abort. `None`
    /// (the default) runs prepares inline with no timeout — the friendly-
    /// machine fast path with zero threading overhead.
    commit_timeout: Option<Duration>,
}

/// The coordinator's view of one participant's in-flight `prepare` when a
/// commit timeout is armed: the helper thread and the coordinator race for
/// the slot, and whoever loses the race is responsible for aborting an
/// undecided prepared sub-transaction (the presumed-abort rule).
enum PrepareSlot<V> {
    /// The helper thread has not delivered yet.
    Pending,
    /// The helper delivered its prepare result; the coordinator takes it.
    Delivered(Result<Box<dyn PreparedShardTxn<V>>, TxError>),
    /// The coordinator gave up (timeout or another shard's failure) before
    /// delivery: a late-arriving successful prepare must abort itself.
    Abandoned,
}

impl<V> ShardedStore<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Builds a sharded store from explicit shard backends.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty.
    #[must_use]
    pub fn new(
        shards: Vec<Arc<dyn ShardBackend<V>>>,
        clock: Arc<dyn ClockSource>,
        pick: IntersectionPick,
    ) -> Self {
        assert!(!shards.is_empty(), "a sharded store needs at least 1 shard");
        ShardedStore {
            shards,
            clock,
            pick,
            active: ActiveTxnRegistry::new(),
            commit_timeout: None,
        }
    }

    /// Arms the coordinator's prepare timeout: a cross-shard commit whose
    /// participants have not all answered `prepare` within `timeout` is
    /// resolved by **presumed abort** — every delivered prepared
    /// sub-transaction is aborted, undelivered ones abort themselves on
    /// arrival, and the commit fails with
    /// [`AbortReason::PrepareTimedOut`]. Without a timeout (the default)
    /// prepares run inline and a stalled shard blocks the commit
    /// indefinitely.
    #[must_use]
    pub fn with_commit_timeout(mut self, timeout: Duration) -> Self {
        self.commit_timeout = Some(timeout);
        self
    }

    /// The armed coordinator prepare timeout, if any.
    #[must_use]
    pub fn commit_timeout(&self) -> Option<Duration> {
        self.commit_timeout
    }

    /// Builds a sharded store whose shards are [`MvtlStore`]s sharing one
    /// clock, with per-shard policies produced by `policy` (called with the
    /// shard index).
    ///
    /// [`MvtlStore`]: mvtl_core::MvtlStore
    #[must_use]
    pub fn with_policy<P, F>(
        shard_count: usize,
        clock: Arc<dyn ClockSource>,
        config: MvtlConfig,
        pick: IntersectionPick,
        mut policy: F,
    ) -> Self
    where
        P: LockingPolicy,
        F: FnMut(usize) -> P,
    {
        let shards = (0..shard_count.max(1))
            .map(|i| {
                crate::backend::MvtlBackend::build(policy(i), Arc::clone(&clock), config.clone())
            })
            .collect();
        ShardedStore::new(shards, clock, pick)
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to.
    #[must_use]
    pub fn shard_of(&self, key: Key) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Any key that routes to `shard` — handy for tests and examples that
    /// need keys on specific shards. Scans upward from `start`.
    #[must_use]
    pub fn key_on_shard(&self, shard: usize, start: u64) -> Key {
        (start..)
            .map(Key)
            .find(|k| self.shard_of(*k) == shard % self.shards.len())
            .expect("hash routing reaches every shard")
    }

    /// Aggregate state-size statistics summed across all shards.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.shards
            .iter()
            .map(|s| s.stats())
            .fold(StoreStats::default(), StoreStats::merge)
    }

    /// Per-shard state-size statistics, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Purges versions and lock state older than `bound` on every shard.
    /// Returns the totals `(versions_removed, lock_entries_removed)`.
    pub fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        let mut versions = 0;
        let mut locks = 0;
        for shard in &self.shards {
            let (v, l) = shard.purge_below(bound);
            versions += v;
            locks += l;
        }
        (versions, locks)
    }

    /// The GC low watermark: the minimum over the coordinator-level registry
    /// (every open transaction is pinned at its base timestamp from `begin`
    /// to commit/abort — sub-transactions open *lazily*, so the shard-level
    /// registries alone would leave a begun-but-idle transaction unprotected)
    /// and every shard's own watermark. One sweep below this bound is safe
    /// on every shard.
    #[must_use]
    pub fn low_watermark(&self) -> Option<Timestamp> {
        self.active
            .low_watermark()
            .into_iter()
            .chain(self.shards.iter().filter_map(|s| s.low_watermark()))
            .min()
    }

    /// Phase 1 without a timeout: prepare participants inline, one after the
    /// other. A failing shard has already released its own state; the
    /// coordinator releases everyone else's.
    fn prepare_inline(
        participants: Vec<(usize, Box<dyn ShardTxn<V>>)>,
    ) -> Result<Vec<Box<dyn PreparedShardTxn<V>>>, TxError> {
        let mut prepared: Vec<Box<dyn PreparedShardTxn<V>>> =
            Vec::with_capacity(participants.len());
        let mut participants = participants.into_iter();
        for (_, sub) in participants.by_ref() {
            match sub.prepare() {
                Ok(p) => prepared.push(p),
                Err(err) => {
                    for p in prepared {
                        p.abort();
                    }
                    for (_, sub) in participants {
                        sub.abort();
                    }
                    return Err(err);
                }
            }
        }
        Ok(prepared)
    }

    /// Phase 1 with a timeout: prepares run on helper threads and the
    /// coordinator collects responses until `timeout` elapses. Recovery is
    /// **presumed abort** — on timeout (or any shard's prepare failing) every
    /// delivered prepared sub-transaction is aborted and every undelivered
    /// slot is marked [`PrepareSlot::Abandoned`], so a late-arriving
    /// successful prepare aborts itself instead of stranding frozen locks.
    /// Every prepared sub-transaction therefore receives an *explicit*
    /// decision: nothing is leaked, nothing is dropped undecided.
    fn prepare_with_timeout(
        participants: Vec<(usize, Box<dyn ShardTxn<V>>)>,
        timeout: Duration,
    ) -> Result<Vec<Box<dyn PreparedShardTxn<V>>>, TxError> {
        let count = participants.len();
        let shard_ids: Vec<usize> = participants.iter().map(|(shard, _)| *shard).collect();
        let slots: Vec<Arc<Mutex<PrepareSlot<V>>>> = (0..count)
            .map(|_| Arc::new(Mutex::named("shard.prepare_slot", 40, PrepareSlot::Pending)))
            .collect();
        let (done_tx, done_rx) = mpsc::channel::<usize>();
        for (idx, (_, sub)) in participants.into_iter().enumerate() {
            let slot = Arc::clone(&slots[idx]);
            let done = done_tx.clone();
            thread::spawn(move || {
                let result = sub.prepare();
                let mut state = slot.lock();
                if matches!(*state, PrepareSlot::Abandoned) {
                    // The coordinator already resolved the commit by
                    // presumed abort; release this late prepare's locks.
                    drop(state);
                    if let Ok(p) = result {
                        p.abort();
                    }
                } else {
                    *state = PrepareSlot::Delivered(result);
                    drop(state);
                    let _ = done.send(idx);
                }
            });
        }
        drop(done_tx);

        let deadline = Instant::now() + timeout;
        let mut prepared: Vec<Option<Box<dyn PreparedShardTxn<V>>>> =
            (0..count).map(|_| None).collect();
        let mut remaining = count;
        let mut failure: Option<TxError> = None;
        while remaining > 0 {
            let timed_out = |slots: &[Arc<Mutex<PrepareSlot<V>>>]| {
                // Name a shard that had not answered when the timeout fired.
                let shard = slots
                    .iter()
                    .position(|s| matches!(*s.lock(), PrepareSlot::Pending))
                    .map_or(0, |idx| shard_ids[idx]);
                TxError::aborted(AbortReason::PrepareTimedOut {
                    shard: shard as u32,
                })
            };
            let Some(wait) = deadline.checked_duration_since(Instant::now()) else {
                failure = Some(timed_out(&slots));
                break;
            };
            match done_rx.recv_timeout(wait) {
                Ok(idx) => {
                    let state = std::mem::replace(&mut *slots[idx].lock(), PrepareSlot::Pending);
                    match state {
                        PrepareSlot::Delivered(Ok(p)) => {
                            prepared[idx] = Some(p);
                            remaining -= 1;
                        }
                        PrepareSlot::Delivered(Err(err)) => {
                            failure = Some(err);
                            break;
                        }
                        _ => {
                            failure = Some(TxError::Internal(
                                "prepare slot signalled without a delivery".into(),
                            ));
                            break;
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    failure = Some(timed_out(&slots));
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    failure = Some(TxError::Internal(
                        "prepare worker vanished before delivering".into(),
                    ));
                    break;
                }
            }
        }

        if let Some(err) = failure {
            // Presumed abort: explicitly abort everything delivered, and
            // abandon every other slot so its helper aborts on arrival.
            for p in prepared.iter_mut().filter_map(Option::take) {
                p.abort();
            }
            for slot in &slots {
                let state = std::mem::replace(&mut *slot.lock(), PrepareSlot::Abandoned);
                if let PrepareSlot::Delivered(Ok(p)) = state {
                    p.abort();
                }
            }
            return Err(err);
        }
        Ok(prepared
            .into_iter()
            .map(|p| p.expect("all slots delivered on success"))
            .collect())
    }

    /// The §7 coordinator: prepare every participant, intersect the frozen
    /// intervals, then commit everywhere at one common timestamp — or abort
    /// everywhere when the intersection is empty.
    fn commit_cross_shard(
        &self,
        tx: TxId,
        participants: Vec<(usize, Box<dyn ShardTxn<V>>)>,
    ) -> Result<CommitInfo, TxError> {
        // Phase 1: freeze each participant's interval — inline on the
        // friendly path, with timeout + presumed-abort recovery when armed.
        let prepared = match self.commit_timeout {
            None => Self::prepare_inline(participants)?,
            Some(timeout) => Self::prepare_with_timeout(participants, timeout)?,
        };

        // Phase 2: intersect the frozen intervals.
        let mut intersection: TsSet = prepared[0].interval().clone();
        for p in &prepared[1..] {
            intersection = intersection.intersection(p.interval());
            if intersection.is_empty() {
                break;
            }
        }
        let chosen = match self.pick {
            IntersectionPick::Min => intersection.min(),
            IntersectionPick::Max => intersection.max(),
        };
        let Some(commit_ts) = chosen else {
            // Empty intersection: the paper's line "if ∩ = ∅ then abort".
            for p in prepared {
                p.abort();
            }
            return Err(TxError::aborted(AbortReason::NoCommonTimestamp));
        };

        // Phase 3: commit every shard at the common timestamp. This cannot
        // fail for a correct backend: `commit_ts` lies inside each shard's
        // frozen interval and each participant still holds all the locks
        // backing it. Should a shard reject the timestamp anyway (a backend
        // bug), the remaining prepared participants must still be drained —
        // aborting them releases their locks instead of leaking them — before
        // the internal error is reported.
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut failure: Option<TxError> = None;
        for p in prepared {
            if failure.is_some() {
                p.abort();
                continue;
            }
            match p.commit_at(commit_ts) {
                Ok(info) => {
                    reads.extend(info.reads);
                    writes.extend(info.writes);
                }
                Err(err) => {
                    failure = Some(TxError::Internal(format!(
                        "shard rejected the coordinated commit timestamp {commit_ts}: {err}"
                    )));
                }
            }
        }
        if let Some(err) = failure {
            return Err(err);
        }
        Ok(CommitInfo {
            tx,
            commit_ts: Some(commit_ts),
            reads,
            writes,
        })
    }
}

/// A transaction spanning one or more shards of a [`ShardedStore`].
///
/// Shard sub-transactions open lazily on first access, so a transaction that
/// happens to touch one shard pays no coordination cost and commits through
/// the shard policy's own timestamp pick.
pub struct ShardedTxn<V> {
    id: TxId,
    process: ProcessId,
    /// The clock reading every shard sub-transaction is pinned to, so all
    /// participants of one transaction reason from the same timestamp base.
    base: Timestamp,
    subs: Vec<Option<Box<dyn ShardTxn<V>>>>,
    poisoned: bool,
    /// Ticket in the coordinator's active-transaction registry; taken back
    /// when the transaction is committed or aborted.
    gc_pin: Option<TxnPin>,
}

impl<V> ShardedTxn<V> {
    /// The coordinator-side transaction id (the one reported in
    /// [`CommitInfo`]).
    #[must_use]
    pub fn id(&self) -> TxId {
        self.id
    }

    /// The pinned clock reading shared by every shard sub-transaction.
    #[must_use]
    pub fn base_timestamp(&self) -> Timestamp {
        self.base
    }

    /// The shard indexes this transaction has touched so far.
    #[must_use]
    pub fn touched_shards(&self) -> Vec<usize> {
        self.subs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }

    fn poison(&mut self) {
        self.poisoned = true;
        for sub in &mut self.subs {
            if let Some(sub) = sub.take() {
                sub.abort();
            }
        }
    }
}

impl<V> TransactionalKV<V> for ShardedStore<V>
where
    V: Clone + Send + Sync + 'static,
{
    type Txn = ShardedTxn<V>;

    fn begin_at(&self, process: ProcessId, pinned: Option<Timestamp>) -> Self::Txn {
        // One clock reading per transaction, shared by all its shards: this
        // is the client-side policy state of §7, split across participants
        // (and it is what lets point-timestamp policies like MVTL-TO agree
        // on a commit timestamp across shards).
        let base = pinned.unwrap_or_else(|| self.clock.timestamp(process));
        ShardedTxn {
            id: TxId::fresh(),
            process,
            base,
            subs: (0..self.shards.len()).map(|_| None).collect(),
            poisoned: false,
            gc_pin: Some(self.active.register(base)),
        }
    }

    fn read(&self, txn: &mut Self::Txn, key: Key) -> Result<Option<V>, TxError> {
        if txn.poisoned {
            return Err(TxError::TransactionFinished);
        }
        let shard = self.shard_of(key);
        let sub = txn.subs[shard]
            .get_or_insert_with(|| self.shards[shard].begin(txn.process, Some(txn.base)));
        match sub.read(key) {
            Ok(value) => Ok(value),
            Err(err) => {
                // The failing shard released its own state; release the rest
                // eagerly rather than waiting for the caller's abort.
                txn.poison();
                Err(err)
            }
        }
    }

    fn write(&self, txn: &mut Self::Txn, key: Key, value: V) -> Result<(), TxError> {
        if txn.poisoned {
            return Err(TxError::TransactionFinished);
        }
        let shard = self.shard_of(key);
        let sub = txn.subs[shard]
            .get_or_insert_with(|| self.shards[shard].begin(txn.process, Some(txn.base)));
        match sub.write(key, value) {
            Ok(()) => Ok(()),
            Err(err) => {
                txn.poison();
                Err(err)
            }
        }
    }

    /// The batch-native sharded read: the batch is grouped by shard and each
    /// participating shard serves its whole group in **one**
    /// [`ShardTxn::read_many`] round, so an N-key batch costs O(shards)
    /// coordination instead of O(keys). Sub-transactions still open lazily —
    /// only shards that actually own batch keys are touched.
    fn read_many(&self, txn: &mut Self::Txn, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        if txn.poisoned {
            return Err(TxError::TransactionFinished);
        }
        // Group key positions by shard, preserving input order within each
        // group so results scatter back into place.
        let mut groups: Vec<(Vec<Key>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); self.shards.len()];
        for (pos, key) in keys.iter().enumerate() {
            let (shard_keys, positions) = &mut groups[self.shard_of(*key)];
            shard_keys.push(*key);
            positions.push(pos);
        }
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        for (shard, (shard_keys, positions)) in groups.into_iter().enumerate() {
            if shard_keys.is_empty() {
                continue;
            }
            let sub = txn.subs[shard]
                .get_or_insert_with(|| self.shards[shard].begin(txn.process, Some(txn.base)));
            match sub.read_many(&shard_keys) {
                Ok(values) => {
                    for (pos, value) in positions.into_iter().zip(values) {
                        out[pos] = value;
                    }
                }
                Err(err) => {
                    txn.poison();
                    return Err(err);
                }
            }
        }
        Ok(out)
    }

    /// The batch-native sharded write: one [`ShardTxn::write_many`] round per
    /// participating shard (same O(shards) argument as
    /// [`read_many`](TransactionalKV::read_many); order within a shard group
    /// is preserved, so last-value-wins semantics match sequential writes).
    fn write_many(&self, txn: &mut Self::Txn, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        if txn.poisoned {
            return Err(TxError::TransactionFinished);
        }
        let mut groups: Vec<Vec<(Key, V)>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (key, value) in entries {
            groups[self.shard_of(key)].push((key, value));
        }
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let sub = txn.subs[shard]
                .get_or_insert_with(|| self.shards[shard].begin(txn.process, Some(txn.base)));
            if let Err(err) = sub.write_many(group) {
                txn.poison();
                return Err(err);
            }
        }
        Ok(())
    }

    fn commit(&self, mut txn: Self::Txn) -> Result<CommitInfo, TxError> {
        // The coordinator pin only has to cover the window in which new
        // sub-transactions can still open; from here on every touched shard
        // holds its own (shard-level) pin, so release before coordinating.
        if let Some(pin) = txn.gc_pin.take() {
            self.active.deregister(pin);
        }
        if txn.poisoned {
            return Err(TxError::TransactionFinished);
        }
        let mut participants: Vec<(usize, Box<dyn ShardTxn<V>>)> = txn
            .subs
            .iter_mut()
            .enumerate()
            .filter_map(|(shard, sub)| sub.take().map(|sub| (shard, sub)))
            .collect();
        match participants.len() {
            // A transaction that touched nothing commits trivially.
            0 => Ok(CommitInfo {
                tx: txn.id,
                commit_ts: None,
                reads: Vec::new(),
                writes: Vec::new(),
            }),
            // Single-shard fast path: the shard policy picks the timestamp,
            // exactly as in the non-partitioned engine.
            1 => participants
                .pop()
                .expect("one participant")
                .1
                .commit()
                .map(|mut info| {
                    info.tx = txn.id;
                    info
                }),
            _ => self.commit_cross_shard(txn.id, participants),
        }
    }

    fn abort(&self, mut txn: Self::Txn) {
        if let Some(pin) = txn.gc_pin.take() {
            self.active.deregister(pin);
        }
        for sub in &mut txn.subs {
            if let Some(sub) = sub.take() {
                sub.abort();
            }
        }
    }

    fn name(&self) -> &'static str {
        "sharded"
    }

    fn stats(&self) -> StoreStats {
        ShardedStore::stats(self)
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        ShardedStore::purge_below(self, bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        ShardedStore::low_watermark(self)
    }

    fn recover_install(
        &self,
        writes: Vec<(Key, V)>,
        commit_ts: Option<Timestamp>,
    ) -> Result<(), TxError> {
        // Route each write to its shard and replay there. Sharded specs
        // normally log per shard (each backend wears its own `WalBackend`),
        // but a log written by a non-sharded engine replays fine through the
        // same hash routing.
        let ts = commit_ts.ok_or_else(|| {
            TxError::Internal("sharded recovery requires the original commit timestamp".into())
        })?;
        let mut per_shard: Vec<Vec<(Key, V)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (key, value) in writes {
            per_shard[self.shard_of(key)].push((key, value));
        }
        for (shard, shard_writes) in per_shard.into_iter().enumerate() {
            if !shard_writes.is_empty() {
                self.shards[shard].recover_commit(shard_writes, ts)?;
            }
        }
        Ok(())
    }
}
