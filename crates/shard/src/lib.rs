//! # mvtl-shard
//!
//! A real, threaded, **partitioned** transactional engine that commits
//! cross-shard transactions with the paper's §7 protocol.
//!
//! The paper's headline claim is that locking *timestamps* — unlike locking
//! objects — **composes across servers**: each server can independently
//! freeze the interval of timestamps a transaction may commit at, and a
//! coordinator commits at any timestamp in the intersection of those
//! intervals, or aborts when the intersection is empty. `mvtl-sim` exercises
//! that protocol inside a single-threaded discrete-event simulator; this
//! crate executes it for real:
//!
//! * [`ShardedStore`] hash-routes keys to `N` independent shards, each a full
//!   per-key-latched MVTL engine ([`mvtl_core::MvtlStore`] under any
//!   [`LockingPolicy`](mvtl_core::policy::LockingPolicy)).
//! * A transaction opens shard sub-transactions lazily; one that touches a
//!   single shard commits through the shard policy's own timestamp pick, with
//!   no coordination.
//! * A cross-shard commit runs prepare → intersect → commit-at/abort:
//!   [`ShardTxn::prepare`] freezes the shard's interval
//!   ([`LockingPolicy::prepared_interval`](mvtl_core::policy::LockingPolicy::prepared_interval)
//!   over the Algorithm 1 line 13 candidates), the coordinator intersects the
//!   [`TsSet`](mvtl_common::TsSet)s, and either every shard commits at the
//!   same timestamp ([`PreparedShardTxn::commit_at`]) or every shard aborts.
//!
//! [`ShardedStore`] implements [`TransactionalKV`](mvtl_common::TransactionalKV),
//! so it gets the object-safe `Engine` / RAII `Transaction` surface from the
//! blanket impl, and `mvtl-registry` builds it from string specs:
//!
//! ```
//! use mvtl_common::{EngineExt, Key, ProcessId};
//! use mvtl_shard::{IntersectionPick, ShardedStore};
//! use mvtl_core::policy::MvtilPolicy;
//! use mvtl_core::MvtlConfig;
//! use mvtl_clock::GlobalClock;
//! use std::sync::Arc;
//!
//! let store: ShardedStore<u64> = ShardedStore::with_policy(
//!     8,
//!     Arc::new(GlobalClock::new()),
//!     MvtlConfig::default(),
//!     IntersectionPick::Min,
//!     |_shard| MvtilPolicy::early(1000),
//! );
//! let engine: &dyn mvtl_common::Engine<u64> = &store;
//!
//! let mut tx = engine.begin(ProcessId(1));
//! tx.write(Key(1), 10).unwrap();   // lands on one shard
//! tx.write(Key(2), 20).unwrap();   // usually another
//! let info = tx.commit().unwrap(); // §7: interval intersection
//! assert!(info.commit_ts.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod faults;
mod store;

pub use backend::{MvtlBackend, PreparedShardTxn, ShardBackend, ShardTxn};
pub use faults::FaultyBackend;
pub use store::{IntersectionPick, ShardedStore, ShardedTxn};

#[cfg(test)]
mod tests {
    use super::*;
    use mvtl_clock::GlobalClock;
    use mvtl_common::{AbortReason, Engine, EngineExt, Key, ProcessId, Timestamp, TransactionalKV};
    use mvtl_core::policy::MvtilPolicy;
    use mvtl_core::MvtlConfig;
    use std::sync::Arc;

    fn store(shards: usize) -> ShardedStore<u64> {
        ShardedStore::with_policy(
            shards,
            Arc::new(GlobalClock::starting_at(1000)),
            MvtlConfig::default(),
            IntersectionPick::Min,
            |_| MvtilPolicy::early(100),
        )
    }

    /// Two keys guaranteed to live on different shards.
    fn cross_shard_keys(s: &ShardedStore<u64>) -> (Key, Key) {
        let a = s.key_on_shard(0, 0);
        let b = s.key_on_shard(1, a.0 + 1);
        assert_ne!(s.shard_of(a), s.shard_of(b));
        (a, b)
    }

    #[test]
    fn cross_shard_commit_installs_one_timestamp_everywhere() {
        let s = store(4);
        let (a, b) = cross_shard_keys(&s);
        let mut tx = s.begin_at(ProcessId(1), None);
        s.write(&mut tx, a, 1).unwrap();
        s.write(&mut tx, b, 2).unwrap();
        let info = s.commit(tx).unwrap();
        let ts = info.commit_ts.expect("cross-shard commit has a timestamp");
        // Both versions are visible at (and only from) the common timestamp.
        let mut tx = s.begin_at(ProcessId(2), None);
        assert_eq!(s.read(&mut tx, a).unwrap(), Some(1));
        assert_eq!(s.read(&mut tx, b).unwrap(), Some(2));
        s.commit(tx).unwrap();
        assert!(ts > Timestamp::ZERO);
    }

    #[test]
    fn single_shard_transactions_take_the_fast_path() {
        let s = store(4);
        let a = s.key_on_shard(2, 0);
        let mut tx = s.begin_at(ProcessId(1), None);
        s.write(&mut tx, a, 7).unwrap();
        assert_eq!(tx.touched_shards(), vec![2]);
        let info = s.commit(tx).unwrap();
        assert!(info.commit_ts.is_some());
    }

    #[test]
    fn empty_transactions_commit() {
        let s = store(4);
        let tx = s.begin_at(ProcessId(1), None);
        let info = s.commit(tx).unwrap();
        assert!(info.reads.is_empty() && info.writes.is_empty());
    }

    #[test]
    fn abort_releases_every_shard() {
        let s = store(4);
        let (a, b) = cross_shard_keys(&s);
        let baseline = s.stats().lock_entries;
        let mut tx = s.begin_at(ProcessId(1), None);
        s.write(&mut tx, a, 1).unwrap();
        s.write(&mut tx, b, 2).unwrap();
        assert!(s.stats().lock_entries > baseline);
        s.abort(tx);
        assert_eq!(s.stats().lock_entries, baseline);
    }

    #[test]
    fn engine_layer_drop_aborts_across_shards() {
        let s = store(8);
        let baseline = s.stats().lock_entries;
        {
            let engine: &dyn Engine<u64> = &s;
            let mut tx = engine.begin(ProcessId(1));
            for k in 0..16u64 {
                tx.write(Key(k), k).unwrap();
            }
            // Dropped without commit: RAII must abort every sub-transaction.
        }
        assert_eq!(s.stats().lock_entries, baseline);
    }

    #[test]
    fn retry_loop_works_through_the_dyn_layer() {
        let s = store(2);
        let engine: &dyn Engine<u64> = &s;
        let report = engine
            .run(
                ProcessId(1),
                &mvtl_common::RetryOptions::default().with_seed(3),
                |tx| {
                    let v = tx.read(Key(5))?.unwrap_or(0);
                    tx.write(Key(5), v + 1)?;
                    tx.write(Key(6), v + 2)?;
                    Ok(v)
                },
            )
            .unwrap();
        assert_eq!(report.value, 0);
    }

    #[test]
    fn poisoned_transactions_reject_further_operations() {
        // Exhaust an interval deterministically: a committed reader freezes
        // read locks over a lower writer's whole interval on one shard.
        let s = store(2);
        let key = s.key_on_shard(0, 0);
        let mut reader = s.begin_at(ProcessId(1), Some(Timestamp::at(500)));
        let _ = s.read(&mut reader, key).unwrap();
        s.commit(reader).unwrap();

        let mut writer = s.begin_at(ProcessId(2), Some(Timestamp::at(100)));
        let err = s.write(&mut writer, key, 1).unwrap_err();
        assert_eq!(
            err.abort_reason(),
            Some(&AbortReason::IntervalExhausted { key })
        );
        // Every further operation fails fast, and commit refuses too.
        assert!(s.write(&mut writer, Key(99), 1).is_err());
        assert!(s.commit(writer).is_err());
    }

    #[test]
    fn purge_and_stats_aggregate_across_shards() {
        let s = store(4);
        for k in 0..12u64 {
            let mut tx = s.begin_at(ProcessId(1), None);
            s.write(&mut tx, Key(k), k).unwrap();
            s.commit(tx).unwrap();
            let mut tx = s.begin_at(ProcessId(1), None);
            s.write(&mut tx, Key(k), k + 100).unwrap();
            s.commit(tx).unwrap();
        }
        assert_eq!(s.stats().versions, 24);
        assert_eq!(s.shard_stats().len(), 4);
        let (versions_removed, _) = s.purge_below(Timestamp::MAX);
        assert_eq!(versions_removed, 12, "one version per key survives");
        assert_eq!(s.stats().versions, 12);
    }

    #[test]
    fn shard_count_one_degenerates_to_the_inner_engine() {
        let s = store(1);
        let mut tx = s.begin_at(ProcessId(1), None);
        s.write(&mut tx, Key(1), 1).unwrap();
        s.write(&mut tx, Key(2), 2).unwrap();
        let info = s.commit(tx).unwrap();
        assert!(info.commit_ts.is_some());
        assert_eq!(info.writes.len(), 2);
    }
}
