//! Fault-injecting decorators over the shard participant traits.
//!
//! [`FaultyBackend`] wraps any [`ShardBackend`] and consults a seeded
//! [`FaultPlan`] (`mvtl-faults`) before forwarding each call, injecting the
//! schedule's per-operation delays, dropped/late prepare responses, shard
//! stalls, crashes mid-prepare, and per-shard clock skew. The wrapped shard
//! never knows: every fault is expressed through the ordinary participant
//! interface, so the coordinator's timeout + presumed-abort recovery path is
//! exercised against a *real* engine, not a mock.
//!
//! Fault semantics (one decision per sequence number, drawn from the plan):
//!
//! * **Delay** — sleep a deterministic number of microseconds before serving a
//!   read/write/batch round or a prepared commit.
//! * **Stall** — sleep the schedule's stall time before even serving
//!   `prepare`; with a stall longer than the coordinator's commit timeout this
//!   forces the presumed-abort path.
//! * **Drop** — the prepare *succeeds* and the shard holds its frozen locks,
//!   but the response is withheld for the schedule's hold time. The
//!   coordinator only learns of the prepare by timing out; when the late
//!   response finally lands, the coordinator has already abandoned the slot
//!   and the prepared sub-transaction aborts itself (presumed abort).
//! * **Crash** — the shard "dies" between `prepare` and the decision: its
//!   volatile lock state is released (a restarted shard recovers by presumed
//!   abort) and the coordinator sees the prepare fail with
//!   [`AbortReason::ParticipantCrashed`].
//! * **Skew** — the pinned begin timestamp is offset by a constant per-shard
//!   tick count, the ε-clock scenario of the skewed-clock schedule.

use crate::backend::{PreparedShardTxn, ShardBackend, ShardTxn};
use mvtl_common::{AbortReason, CommitInfo, Key, ProcessId, StoreStats, Timestamp, TsSet, TxError};
use mvtl_faults::{FaultPlan, PrepareFault};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// A [`ShardBackend`] decorator that injects the faults of a seeded
/// [`FaultPlan`] between the cross-shard coordinator and the wrapped shard.
pub struct FaultyBackend<V> {
    inner: Arc<dyn ShardBackend<V>>,
    plan: Arc<FaultPlan>,
    shard: usize,
    /// Per-shard operation sequence: each fault decision consumes one number,
    /// so a single-threaded replay draws an identical fault schedule each run.
    seq: Arc<AtomicU64>,
    /// Separate stream for `begin` skew events, so adding `skew:` to a spec
    /// does not shift the delay/prepare decision sequence.
    begin_seq: AtomicU64,
}

impl<V> FaultyBackend<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Wraps `inner` as shard `shard` of `plan`, type-erased — the form
    /// [`ShardedStore::new`](crate::ShardedStore::new) consumes.
    #[must_use]
    pub fn wrap(
        inner: Arc<dyn ShardBackend<V>>,
        plan: Arc<FaultPlan>,
        shard: usize,
    ) -> Arc<dyn ShardBackend<V>> {
        Arc::new(FaultyBackend {
            inner,
            plan,
            shard,
            seq: Arc::new(AtomicU64::new(0)),
            begin_seq: AtomicU64::new(0),
        })
    }

    /// Wraps every backend of `shards` with one shared plan, preserving shard
    /// indexes.
    #[must_use]
    pub fn wrap_all(
        shards: Vec<Arc<dyn ShardBackend<V>>>,
        plan: &Arc<FaultPlan>,
    ) -> Vec<Arc<dyn ShardBackend<V>>> {
        shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| FaultyBackend::wrap(s, Arc::clone(plan), i))
            .collect()
    }
}

impl<V> ShardBackend<V> for FaultyBackend<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn begin(&self, process: ProcessId, pinned: Option<Timestamp>) -> Box<dyn ShardTxn<V>> {
        let offset = self.plan.shard_skew(self.shard);
        let pinned = match (pinned, offset) {
            (Some(ts), skew) if skew != 0 => {
                let seq = self.begin_seq.fetch_add(1, Ordering::Relaxed);
                self.plan.note_skew(self.shard, seq, skew);
                let value = if skew >= 0 {
                    ts.value.saturating_add(skew.unsigned_abs())
                } else {
                    ts.value.saturating_sub(skew.unsigned_abs())
                };
                Some(Timestamp::new(value.max(1), ts.process))
            }
            (pinned, _) => pinned,
        };
        Box::new(FaultyTxn {
            inner: Some(self.inner.begin(process, pinned)),
            plan: Arc::clone(&self.plan),
            shard: self.shard,
            seq: Arc::clone(&self.seq),
        })
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        self.inner.purge_below(bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        self.inner.low_watermark()
    }

    fn recover_commit(&self, writes: Vec<(Key, V)>, commit_ts: Timestamp) -> Result<(), TxError> {
        // Recovery runs before the workload restarts; faults apply to live
        // traffic only.
        self.inner.recover_commit(writes, commit_ts)
    }

    fn recover_prepared(
        &self,
        writes: Vec<(Key, V)>,
        interval: &TsSet,
    ) -> Result<Box<dyn PreparedShardTxn<V>>, TxError> {
        self.inner.recover_prepared(writes, interval)
    }
}

/// [`ShardTxn`] decorator: delays operations and perturbs `prepare` per the
/// plan's decisions.
struct FaultyTxn<V> {
    inner: Option<Box<dyn ShardTxn<V>>>,
    plan: Arc<FaultPlan>,
    shard: usize,
    seq: Arc<AtomicU64>,
}

impl<V> FaultyTxn<V> {
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn maybe_delay(&self) {
        if let Some(delay) = self.plan.op_delay(self.shard, self.next_seq()) {
            thread::sleep(delay);
        }
    }

    fn inner_mut(&mut self) -> &mut Box<dyn ShardTxn<V>> {
        self.inner
            .as_mut()
            .expect("faulty txn present until finished")
    }
}

impl<V> ShardTxn<V> for FaultyTxn<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn read(&mut self, key: Key) -> Result<Option<V>, TxError> {
        self.maybe_delay();
        self.inner_mut().read(key)
    }

    fn write(&mut self, key: Key, value: V) -> Result<(), TxError> {
        self.maybe_delay();
        self.inner_mut().write(key, value)
    }

    fn read_many(&mut self, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        self.maybe_delay();
        self.inner_mut().read_many(keys)
    }

    fn write_many(&mut self, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        self.maybe_delay();
        self.inner_mut().write_many(entries)
    }

    fn commit(mut self: Box<Self>) -> Result<CommitInfo, TxError> {
        self.maybe_delay();
        self.inner.take().expect("faulty txn present").commit()
    }

    fn prepare(mut self: Box<Self>) -> Result<Box<dyn PreparedShardTxn<V>>, TxError> {
        let seq = self.next_seq();
        let shard = self.shard;
        let fault = self.plan.prepare_fault(shard, seq);
        let plan = Arc::clone(&self.plan);
        let seq_counter = Arc::clone(&self.seq);
        let inner = self.inner.take().expect("faulty txn present");
        match fault {
            Some(PrepareFault::Crash) => {
                // The shard dies between `prepare` and the decision: whatever
                // volatile lock state the prepare built is lost, and the
                // restarted shard recovers by presumed abort. The coordinator
                // observes the prepare failing.
                if let Ok(prepared) = inner.prepare() {
                    prepared.abort();
                }
                Err(TxError::aborted(AbortReason::ParticipantCrashed {
                    shard: shard as u32,
                }))
            }
            Some(PrepareFault::DropResponse(hold)) => {
                // The prepare succeeds and the shard holds its frozen locks,
                // but the response is withheld: the coordinator only learns
                // by timing out, and this late response resolves by presumed
                // abort (the coordinator's slot sweep aborts it on arrival).
                let prepared = inner.prepare()?;
                thread::sleep(hold);
                Ok(Box::new(FaultyPrepared {
                    inner: Some(prepared),
                    plan,
                    shard,
                    seq: seq_counter,
                }))
            }
            Some(PrepareFault::Stall(stall)) => {
                thread::sleep(stall);
                let prepared = inner.prepare()?;
                Ok(Box::new(FaultyPrepared {
                    inner: Some(prepared),
                    plan,
                    shard,
                    seq: seq_counter,
                }))
            }
            None => {
                let prepared = inner.prepare()?;
                Ok(Box::new(FaultyPrepared {
                    inner: Some(prepared),
                    plan,
                    shard,
                    seq: seq_counter,
                }))
            }
        }
    }

    fn abort(mut self: Box<Self>) {
        if let Some(inner) = self.inner.take() {
            inner.abort();
        }
    }
}

/// [`PreparedShardTxn`] decorator: delays the coordinated commit (aborts stay
/// prompt so recovery drains fast).
struct FaultyPrepared<V> {
    inner: Option<Box<dyn PreparedShardTxn<V>>>,
    plan: Arc<FaultPlan>,
    shard: usize,
    seq: Arc<AtomicU64>,
}

impl<V> PreparedShardTxn<V> for FaultyPrepared<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn interval(&self) -> &TsSet {
        self.inner
            .as_ref()
            .expect("faulty prepared present until decided")
            .interval()
    }

    fn commit_at(mut self: Box<Self>, ts: Timestamp) -> Result<CommitInfo, TxError> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Some(delay) = self.plan.op_delay(self.shard, seq) {
            thread::sleep(delay);
        }
        self.inner
            .take()
            .expect("faulty prepared present")
            .commit_at(ts)
    }

    fn abort(mut self: Box<Self>) {
        if let Some(inner) = self.inner.take() {
            inner.abort();
        }
    }
}
