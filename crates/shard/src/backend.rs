//! The object-safe participant interface a shard must offer to the
//! cross-shard commit coordinator, and its implementation over
//! [`MvtlStore`].
//!
//! [`ShardedStore`](crate::ShardedStore) holds its shards as
//! `Arc<dyn ShardBackend<V>>`, so one coordinator drives shards built from
//! *any* MVTL policy. The three traits mirror the participant life cycle of
//! §7: open a transaction, run operations, then either commit alone
//! (single-shard fast path), or **prepare** — freeze the interval of
//! timestamps the shard guarantees the transaction can commit at — and wait
//! for the coordinator's `commit-at` / `abort` decision.

use mvtl_clock::ClockSource;
use mvtl_common::{CommitInfo, Key, ProcessId, Timestamp, TsSet, TxError};
use mvtl_core::policy::LockingPolicy;
use mvtl_core::{MvtlConfig, MvtlStore, MvtlTransaction, PreparedCommit, StoreStats};
use std::sync::Arc;

/// One partition of a [`ShardedStore`](crate::ShardedStore): a full
/// transactional engine that additionally speaks the §7 participant protocol.
pub trait ShardBackend<V>: Send + Sync {
    /// Opens a transaction on this shard. The coordinator always pins the
    /// clock reading, so that every shard of one distributed transaction
    /// reasons from the same timestamp base (the client-side policy state of
    /// §7, split across participants).
    fn begin(&self, process: ProcessId, pinned: Option<Timestamp>) -> Box<dyn ShardTxn<V>>;

    /// Aggregate state-size statistics of the shard (locks, versions), used
    /// by tests and the state-size experiments.
    fn stats(&self) -> StoreStats;

    /// Purges versions and lock state older than `bound` on this shard.
    /// Returns `(versions_removed, lock_entries_removed)`.
    fn purge_below(&self, bound: Timestamp) -> (usize, usize);

    /// The smallest timestamp any in-flight transaction on this shard may
    /// still anchor a read on (the shard's GC low watermark), or `None` when
    /// the shard is idle or does not track one.
    fn low_watermark(&self) -> Option<Timestamp> {
        None
    }

    // --- Recovery surface (durability, `mvtl-wal`) --------------------------

    /// Re-installs one recovered committed transaction's write set at its
    /// original commit timestamp (crash recovery; see
    /// [`TransactionalKV::recover_install`](mvtl_common::TransactionalKV::recover_install)).
    ///
    /// # Errors
    ///
    /// The default returns [`TxError::Internal`]: the backend does not
    /// support recovery.
    fn recover_commit(&self, writes: Vec<(Key, V)>, commit_ts: Timestamp) -> Result<(), TxError> {
        let _ = (writes, commit_ts);
        Err(TxError::Internal(
            "shard backend does not support WAL recovery".into(),
        ))
    }

    /// Rebuilds the prepared state of a sub-transaction whose prepare record
    /// survived a crash but whose coordinator decision did not, so the
    /// presumed-abort rule can give it exactly one decision.
    ///
    /// # Errors
    ///
    /// Returns an abort error when the logged interval can no longer be
    /// frozen; the default returns [`TxError::Internal`] (no recovery
    /// support).
    fn recover_prepared(
        &self,
        writes: Vec<(Key, V)>,
        interval: &TsSet,
    ) -> Result<Box<dyn PreparedShardTxn<V>>, TxError> {
        let _ = (writes, interval);
        Err(TxError::Internal(
            "shard backend does not support WAL recovery".into(),
        ))
    }
}

/// An open transaction on one shard.
pub trait ShardTxn<V>: Send {
    /// Reads `key` within the shard transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when the shard's policy aborts the
    /// transaction; the shard-side state is already released in that case.
    fn read(&mut self, key: Key) -> Result<Option<V>, TxError>;

    /// Writes `value` to `key` within the shard transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when eager lock acquisition fails.
    fn write(&mut self, key: Key, value: V) -> Result<(), TxError>;

    /// Reads every key of `keys` (all routed to this shard) in one round,
    /// returning values in input order. The default loops over
    /// [`ShardTxn::read`]; the [`MvtlStore`] backend forwards to the store's
    /// batch-native path so a sharded batch pays one deduplicated lock pass
    /// per shard, not one negotiation per key.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when the shard's policy aborts the
    /// transaction; the shard-side state is already released in that case.
    fn read_many(&mut self, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        keys.iter().map(|key| self.read(*key)).collect()
    }

    /// Writes every `(key, value)` pair of `entries` (all routed to this
    /// shard) in one round. The default loops over [`ShardTxn::write`]; the
    /// [`MvtlStore`] backend forwards to the store's batch-native path.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when eager lock acquisition fails.
    fn write_many(&mut self, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        for (key, value) in entries {
            self.write(key, value)?;
        }
        Ok(())
    }

    /// Commits directly, letting the shard's own policy pick the timestamp —
    /// the fast path for transactions that touched a single shard.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when no serialization point exists.
    fn commit(self: Box<Self>) -> Result<CommitInfo, TxError>;

    /// Runs the participant side of the §7 commit: acquires commit-time
    /// locks and freezes the interval of timestamps this shard guarantees
    /// the transaction can commit at.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when commit-time locking fails or the
    /// frozen interval is empty; the shard-side state is released.
    fn prepare(self: Box<Self>) -> Result<Box<dyn PreparedShardTxn<V>>, TxError>;

    /// Aborts the shard transaction, releasing its locks.
    fn abort(self: Box<Self>);
}

/// A shard transaction in the prepared state: its frozen interval is
/// immutable (the transaction still holds every backing lock) until the
/// coordinator decides. Dropping a prepared transaction without a decision
/// aborts it.
pub trait PreparedShardTxn<V>: Send {
    /// The frozen interval reported to the coordinator. Never empty.
    fn interval(&self) -> &TsSet;

    /// Commits at the coordinator-chosen timestamp, which must lie inside
    /// [`PreparedShardTxn::interval`].
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Aborted`] when `ts` lies outside the frozen
    /// interval (a coordinator bug); a timestamp inside always succeeds.
    fn commit_at(self: Box<Self>, ts: Timestamp) -> Result<CommitInfo, TxError>;

    /// Aborts the prepared transaction (the coordinator's empty-intersection
    /// decision), releasing its locks.
    fn abort(self: Box<Self>);
}

/// [`ShardBackend`] over an [`MvtlStore`] with any [`LockingPolicy`]: the
/// standard way to build a [`ShardedStore`](crate::ShardedStore).
pub struct MvtlBackend<V, P> {
    store: Arc<MvtlStore<V, P>>,
}

impl<V, P> MvtlBackend<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    /// Wraps an existing store.
    #[must_use]
    pub fn new(store: Arc<MvtlStore<V, P>>) -> Self {
        MvtlBackend { store }
    }

    /// Builds a fresh store for `policy` and wraps it, type-erased — the form
    /// the registry and [`ShardedStore::with_policy`](crate::ShardedStore)
    /// consume.
    #[must_use]
    pub fn build(
        policy: P,
        clock: Arc<dyn ClockSource>,
        config: MvtlConfig,
    ) -> Arc<dyn ShardBackend<V>> {
        Arc::new(MvtlBackend::new(Arc::new(MvtlStore::new(
            policy, clock, config,
        ))))
    }

    /// The wrapped store.
    #[must_use]
    pub fn store(&self) -> &Arc<MvtlStore<V, P>> {
        &self.store
    }
}

impl<V, P> ShardBackend<V> for MvtlBackend<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    fn begin(&self, process: ProcessId, pinned: Option<Timestamp>) -> Box<dyn ShardTxn<V>> {
        Box::new(MvtlShardTxn {
            store: Arc::clone(&self.store),
            txn: Some(self.store.begin_with(process, pinned, false)),
        })
    }

    fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    fn purge_below(&self, bound: Timestamp) -> (usize, usize) {
        self.store.purge_below(bound)
    }

    fn low_watermark(&self) -> Option<Timestamp> {
        self.store.low_watermark()
    }

    fn recover_commit(&self, writes: Vec<(Key, V)>, commit_ts: Timestamp) -> Result<(), TxError> {
        use mvtl_common::TransactionalKV as _;
        self.store.recover_install(writes, Some(commit_ts))
    }

    fn recover_prepared(
        &self,
        writes: Vec<(Key, V)>,
        interval: &TsSet,
    ) -> Result<Box<dyn PreparedShardTxn<V>>, TxError> {
        let prepared = self.store.recover_prepared(writes, interval)?;
        Ok(Box::new(MvtlPreparedShardTxn {
            store: Arc::clone(&self.store),
            prepared: Some(prepared),
        }))
    }
}

/// [`ShardTxn`] over an [`MvtlStore`]. Owns an `Arc` to the store so handles
/// are `'static` and can be held across the coordinator's shard vector. The
/// inner transaction is an `Option` so `Drop` can abort a handle that was
/// neither committed nor explicitly aborted.
struct MvtlShardTxn<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    store: Arc<MvtlStore<V, P>>,
    txn: Option<MvtlTransaction<V>>,
}

impl<V, P> ShardTxn<V> for MvtlShardTxn<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    fn read(&mut self, key: Key) -> Result<Option<V>, TxError> {
        let txn = self.txn.as_mut().expect("shard txn present until finished");
        self.store.read(txn, key)
    }

    fn write(&mut self, key: Key, value: V) -> Result<(), TxError> {
        let txn = self.txn.as_mut().expect("shard txn present until finished");
        self.store.write(txn, key, value)
    }

    fn read_many(&mut self, keys: &[Key]) -> Result<Vec<Option<V>>, TxError> {
        let txn = self.txn.as_mut().expect("shard txn present until finished");
        self.store.read_many(txn, keys)
    }

    fn write_many(&mut self, entries: Vec<(Key, V)>) -> Result<(), TxError> {
        let txn = self.txn.as_mut().expect("shard txn present until finished");
        self.store.write_many(txn, entries)
    }

    fn commit(mut self: Box<Self>) -> Result<CommitInfo, TxError> {
        let txn = self.txn.take().expect("shard txn present until finished");
        self.store.commit(txn)
    }

    fn prepare(mut self: Box<Self>) -> Result<Box<dyn PreparedShardTxn<V>>, TxError> {
        let txn = self.txn.take().expect("shard txn present until finished");
        let store = Arc::clone(&self.store);
        let prepared = store.prepare_commit(txn)?;
        Ok(Box::new(MvtlPreparedShardTxn {
            store,
            prepared: Some(prepared),
        }))
    }

    fn abort(mut self: Box<Self>) {
        if let Some(txn) = self.txn.take() {
            self.store.abort(txn);
        }
    }
}

impl<V, P> Drop for MvtlShardTxn<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    fn drop(&mut self) {
        if let Some(txn) = self.txn.take() {
            self.store.abort(txn);
        }
    }
}

/// [`PreparedShardTxn`] over an [`MvtlStore`].
struct MvtlPreparedShardTxn<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    store: Arc<MvtlStore<V, P>>,
    prepared: Option<PreparedCommit<V>>,
}

impl<V, P> PreparedShardTxn<V> for MvtlPreparedShardTxn<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    fn interval(&self) -> &TsSet {
        self.prepared
            .as_ref()
            .expect("prepared txn present until decided")
            .interval()
    }

    fn commit_at(mut self: Box<Self>, ts: Timestamp) -> Result<CommitInfo, TxError> {
        let prepared = self
            .prepared
            .take()
            .expect("prepared txn present until decided");
        self.store.commit_prepared(prepared, ts)
    }

    fn abort(mut self: Box<Self>) {
        if let Some(prepared) = self.prepared.take() {
            self.store.abort_prepared(prepared);
        }
    }
}

impl<V, P> Drop for MvtlPreparedShardTxn<V, P>
where
    V: Clone + Send + Sync + 'static,
    P: LockingPolicy,
{
    fn drop(&mut self) {
        if let Some(prepared) = self.prepared.take() {
            self.store.abort_prepared(prepared);
        }
    }
}
